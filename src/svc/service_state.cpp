#include "svc/service_state.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/stream_checkpoint.hpp"
#include "zeek/log_io.hpp"

namespace certchain::svc {

namespace {

AppliedAppend to_applied(const std::string& key, const AppendResult& result) {
  AppliedAppend applied;
  applied.key = key;
  applied.wal_seq = result.wal_seq;
  applied.generation = result.generation;
  applied.ssl_added = result.ssl_added;
  applied.x509_added = result.x509_added;
  applied.ssl_malformed = result.ssl_malformed;
  applied.x509_malformed = result.x509_malformed;
  applied.unique_chains = result.unique_chains;
  applied.connections = result.connections;
  return applied;
}

AppendResult to_duplicate_result(const AppliedAppend& applied) {
  AppendResult result;
  result.duplicate = true;
  result.wal_seq = applied.wal_seq;
  result.generation = applied.generation;
  result.ssl_added = static_cast<std::size_t>(applied.ssl_added);
  result.x509_added = static_cast<std::size_t>(applied.x509_added);
  result.ssl_malformed = static_cast<std::size_t>(applied.ssl_malformed);
  result.x509_malformed = static_cast<std::size_t>(applied.x509_malformed);
  result.unique_chains = static_cast<std::size_t>(applied.unique_chains);
  result.connections = applied.connections;
  return result;
}

}  // namespace

void ServiceState::SnapshotTracker::on_publish() {
  const std::int64_t now = live.fetch_add(1, std::memory_order_acq_rel) + 1;
  const std::uint64_t total =
      published.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::lock_guard<std::mutex> lock(mutex);
  if (telemetry != nullptr) {
    telemetry->count("svc.snapshot.published");
    telemetry->set_gauge("svc.snapshot.live", static_cast<double>(now));
  }
  (void)total;
}

void ServiceState::SnapshotTracker::on_release() {
  const std::int64_t now = live.fetch_sub(1, std::memory_order_acq_rel) - 1;
  std::lock_guard<std::mutex> lock(mutex);
  if (telemetry != nullptr) {
    telemetry->set_gauge("svc.snapshot.live", static_cast<double>(now));
  }
}

ServiceState::ServiceState(const truststore::TrustStoreSet& stores,
                           const ct::CtLogSet& ct_logs,
                           const core::VendorDirectory& vendors,
                           const chain::CrossSignRegistry* registry)
    : stores_(&stores),
      ct_logs_(&ct_logs),
      registry_(registry),
      pipeline_(stores, ct_logs, vendors, registry),
      tracker_(std::make_shared<SnapshotTracker>()) {
  joiner_.set_dn_pool(&dn_pool_);
  // Never serve a null snapshot: before load() the state answers as an
  // empty, unanalyzed corpus (load() replaces this with generation 0).
  auto* tracker = tracker_.get();
  auto bootstrap = SnapshotPtr(
      new AnalysisSnapshot(),
      [control = tracker_](const AnalysisSnapshot* snapshot) {
        delete snapshot;
        control->on_release();
      });
  tracker->live.fetch_add(1, std::memory_order_acq_rel);
  snapshot_.store(std::move(bootstrap), std::memory_order_release);
}

ServiceState::~ServiceState() {
  // Releases after this point (our own snapshot below, or a straggling
  // reader that outlives us) must not touch the telemetry object.
  attach_telemetry(nullptr);
}

void ServiceState::attach_telemetry(SyncTelemetry* telemetry) {
  std::lock_guard<std::mutex> lock(tracker_->mutex);
  tracker_->telemetry = telemetry;
  if (telemetry != nullptr) {
    telemetry->set_gauge(
        "svc.snapshot.live",
        static_cast<double>(tracker_->live.load(std::memory_order_acquire)));
  }
}

std::int64_t ServiceState::live_snapshots() const {
  return tracker_->live.load(std::memory_order_acquire);
}

std::uint64_t ServiceState::snapshots_published() const {
  return tracker_->published.load(std::memory_order_acquire);
}

void ServiceState::load(const std::vector<zeek::SslLogRecord>& ssl,
                        const std::vector<zeek::X509LogRecord>& x509) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  joiner_ = zeek::LogJoiner();
  joiner_.set_dn_pool(&dn_pool_);
  for (const zeek::X509LogRecord& record : x509) joiner_.add(record);
  corpus_ = core::CorpusIndex();
  for (const zeek::SslLogRecord& record : ssl) {
    corpus_.add(joiner_, record);
  }
  generation_ = 0;
  appended_x509_rows_.clear();
  applied_.clear();
  applied_order_.clear();
  fleet_epochs_.clear();
  publish_analysis_locked();
}

bool ServiceState::recover_and_arm(const DurabilityOptions& options,
                                   RecoveryStats* stats, std::string* error) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    durable_ = false;
    wal_.close();
    return false;
  };

  RecoveryStats local;
  RecoveryStats& out = stats != nullptr ? *stats : local;
  out = RecoveryStats{};
  applied_ledger_max_ = options.applied_ledger_max;

  // Phase 1: snapshot, if one exists. A missing snapshot just means the WAL
  // carries everything since the base load.
  SvcSnapshot snapshot;  // wal_seq = 0: replay everything
  const std::string snap_path = snapshot_path_for(options.wal_path);
  if (const std::optional<std::string> text = core::read_file_text(snap_path)) {
    std::string decode_error;
    std::optional<SvcSnapshot> decoded =
        decode_svc_snapshot(*text, joiner_, corpus_, &decode_error);
    if (!decoded) return fail("snapshot decode failed: " + decode_error);
    snapshot = *std::move(decoded);
    out.snapshot_loaded = true;
    generation_ = snapshot.generation;
    appended_x509_rows_ = snapshot.appended_x509_rows;
    applied_.clear();
    applied_order_.clear();
    // Feed the ledger back in commit order (wal_seq) so FIFO eviction after
    // recovery drops the same entries it would have dropped live.
    std::vector<AppliedAppend> entries = snapshot.applied;
    std::stable_sort(entries.begin(), entries.end(),
                     [](const AppliedAppend& a, const AppliedAppend& b) {
                       return a.wal_seq < b.wal_seq;
                     });
    for (AppliedAppend& entry : entries) {
      remember_applied_locked(std::move(entry));
    }
  }

  // Phase 2: WAL tail. Damage is expected (that is what a kill -9 leaves);
  // replay reports it and open() truncates it.
  std::string replay_error;
  std::optional<WalReplay> replayed =
      WriteAheadLog::replay(options.wal_path, &replay_error);
  if (!replayed) return fail("wal replay failed: " + replay_error);
  out.torn_bytes = replayed->torn_bytes;
  out.wal_records_seen = replayed->records.size();

  durable_ = true;  // fold_batch_locked tracks appended rows from here on
  snapshot_every_ = options.snapshot_every;
  appends_since_snapshot_ = 0;

  std::uint64_t last_seq = snapshot.wal_seq;
  bool folded = false;
  for (const WalRecord& record : replayed->records) {
    last_seq = std::max(last_seq, record.seq);
    if (record.seq <= snapshot.wal_seq) {
      ++out.wal_records_skipped;  // the snapshot already absorbed it
      continue;
    }
    if (!record.idempotency_key.empty() &&
        applied_.count(record.idempotency_key) != 0) {
      ++out.wal_records_skipped;  // a retry the pre-crash run already folded
      continue;
    }
    // Batch boundaries are preserved: join completeness depends on which
    // X509 records the joiner held when each batch folded.
    AppendResult result =
        fold_batch_locked(record.ssl_rows, record.x509_rows, /*publish=*/false);
    result.wal_seq = record.seq;
    folded = true;
    ++out.wal_records_applied;
    if (!record.idempotency_key.empty()) {
      remember_applied_locked(to_applied(record.idempotency_key, result));
    }
  }
  // One analysis + publication at the end covers every replayed fold; the
  // snapshot alone also needs it (load() analyzed only the base corpus).
  if (out.snapshot_loaded || folded) publish_analysis_locked();

  std::string open_error;
  if (!wal_.open(options.wal_path, replayed->good_bytes, last_seq + 1,
                 &open_error)) {
    return fail("wal open failed: " + open_error);
  }
  out.generation = generation_;
  return true;
}

truststore::IssuerClass ServiceState::classify_issuer(
    const x509::DistinguishedName& issuer) const {
  return stores_->classify_issuer(issuer);
}

ChainVerdict ServiceState::categorize_chain(
    const chain::CertificateChain& submitted) const {
  const SnapshotPtr snapshot = acquire_snapshot();
  ChainVerdict verdict;
  verdict.generation = snapshot->generation;
  verdict.category = chain::categorize_chain(submitted, *stores_,
                                             snapshot->interception_issuers);
  // The matched-path verdict mirrors the batch analyzers' conventions:
  // hybrid chains get the §4.2 leaf-plausibility test, the non-public and
  // interception analyses disable it (§4.3).
  const bool require_leaf = verdict.category == chain::ChainCategory::kHybrid;
  verdict.paths = chain::analyze_paths(submitted, registry_, require_leaf);
  if (verdict.category == chain::ChainCategory::kHybrid) {
    verdict.hybrid = chain::classify_hybrid(submitted, *stores_, registry_);
  }
  chain::LintOptions lint_options;
  lint_options.registry = registry_;
  verdict.lints = chain::lint_chain(submitted, lint_options);
  return verdict;
}

std::string ServiceState::report_section(
    const core::ReportTextOptions& options) const {
  const SnapshotPtr snapshot = acquire_snapshot();
  return core::render_report_text(snapshot->report, options);
}

AppendResult ServiceState::ingest_append(
    const std::vector<std::string>& ssl_rows,
    const std::vector<std::string>& x509_rows,
    const std::string& idempotency_key) {
  std::lock_guard<std::mutex> lock(writer_mutex_);

  if (!idempotency_key.empty()) {
    const auto it = applied_.find(idempotency_key);
    if (it != applied_.end()) return to_duplicate_result(it->second);
  }

  // Durable order is WAL first, fold second: a crash after the commit
  // replays the batch; a crash before it means the client never got an ACK
  // and retries. There is no window where an acknowledged batch can vanish.
  std::uint64_t seq = 0;
  if (durable_) {
    WalRecord record;
    record.idempotency_key = idempotency_key;
    record.ssl_rows = ssl_rows;
    record.x509_rows = x509_rows;
    std::string wal_error;
    if (!wal_.append(record, &wal_error)) {
      throw std::runtime_error("wal append failed: " + wal_error);
    }
    seq = record.seq;
  }

  AppendResult result = fold_batch_locked(ssl_rows, x509_rows, /*publish=*/true);
  result.wal_seq = seq;
  if (!idempotency_key.empty()) {
    remember_applied_locked(to_applied(idempotency_key, result));
  }
  if (durable_) {
    ++appends_since_snapshot_;
    maybe_compact_locked();
  }
  return result;
}

void ServiceState::record_fleet_epoch(core::EpochSummary summary) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  bool replaced = false;
  for (core::EpochSummary& existing : fleet_epochs_) {
    if (existing.index == summary.index) {
      existing = std::move(summary);
      replaced = true;
      break;
    }
  }
  if (!replaced) {
    fleet_epochs_.push_back(std::move(summary));
    std::stable_sort(fleet_epochs_.begin(), fleet_epochs_.end(),
                     [](const core::EpochSummary& a, const core::EpochSummary& b) {
                       return a.index < b.index;
                     });
  }

  // The corpus did not change (the epoch's rows were already folded via
  // ingest_append), so the next snapshot is a copy of the current one with
  // the updated epoch registry — no re-analysis.
  auto next = std::make_unique<AnalysisSnapshot>(*acquire_snapshot());
  next->fleet_epochs = fleet_epochs_;
  SnapshotPtr published(
      next.release(), [control = tracker_](const AnalysisSnapshot* snapshot) {
        delete snapshot;
        control->on_release();
      });
  tracker_->on_publish();
  snapshot_.store(std::move(published), std::memory_order_release);
}

std::vector<std::pair<std::string, ct::TreeHead>> ServiceState::ct_sths() const {
  // The log set is immutable while serving — no corpus snapshot needed.
  std::vector<std::pair<std::string, ct::TreeHead>> heads;
  heads.reserve(ct_logs_->log_count());
  for (std::size_t i = 0; i < ct_logs_->log_count(); ++i) {
    const ct::CtLog& log = ct_logs_->log(i);
    heads.emplace_back(log.log_id(), log.tree_head());
  }
  return heads;
}

std::optional<ServiceState::CtInclusionAnswer> ServiceState::ct_prove_inclusion(
    std::string_view fingerprint, std::string_view log_id) const {
  for (std::size_t i = 0; i < ct_logs_->log_count(); ++i) {
    const ct::CtLog& log = ct_logs_->log(i);
    if (!log_id.empty() && log.log_id() != log_id) continue;
    const auto index = log.entry_index_for(fingerprint);
    if (!index) continue;
    CtInclusionAnswer answer;
    answer.log_id = log.log_id();
    answer.index = *index;
    answer.tree_size = log.size();
    answer.root = log.root_hash();
    answer.proof = log.prove_inclusion_at(*index, log.size());
    return answer;
  }
  return std::nullopt;
}

ct::Monitor& ServiceState::arm_ct_monitor(const ct::MonitorConfig& config,
                                          obs::MetricsRegistry* metrics) {
  if (ct_monitor_ == nullptr) {
    ct_monitor_ = std::make_unique<ct::Monitor>(config, metrics);
    for (std::size_t i = 0; i < ct_logs_->log_count(); ++i) {
      ct_monitor_->watch(std::make_shared<ct::CtLogView>(ct_logs_->log(i)));
    }
  }
  return *ct_monitor_;
}

void ServiceState::publish_analysis_locked() {
  // Build the whole next generation off to the side...
  auto next = std::make_unique<AnalysisSnapshot>();
  next->report = pipeline_.analyze(corpus_, nullptr, &dn_pool_);
  next->interception_issuers = next->report.interception.issuer_set();
  next->generation = generation_;
  next->unique_chains = corpus_.unique_chain_count();
  next->totals = corpus_.totals();
  next->fleet_epochs = fleet_epochs_;

  // ...then publish it with a single atomic store. The deleter routes the
  // eventual release (possibly on a reader thread, possibly after this
  // state died) through the shared tracker, which is what keeps the
  // `svc.snapshot.live` gauge honest.
  SnapshotPtr published(
      next.release(), [control = tracker_](const AnalysisSnapshot* snapshot) {
        delete snapshot;
        control->on_release();
      });
  tracker_->on_publish();
  snapshot_.store(std::move(published), std::memory_order_release);
}

AppendResult ServiceState::fold_batch_locked(
    const std::vector<std::string>& ssl_rows,
    const std::vector<std::string>& x509_rows, bool publish) {
  AppendResult result;
  std::vector<zeek::X509LogRecord> x509;
  std::vector<const std::string*> x509_raw;  // raw row per parsed record
  x509.reserve(x509_rows.size());
  x509_raw.reserve(x509_rows.size());
  for (const std::string& row : x509_rows) {
    if (auto record = zeek::parse_x509_row(row)) {
      x509.push_back(*std::move(record));
      x509_raw.push_back(&row);
    } else {
      ++result.x509_malformed;
    }
  }
  std::vector<zeek::SslLogRecord> ssl;
  ssl.reserve(ssl_rows.size());
  for (const std::string& row : ssl_rows) {
    if (auto record = zeek::parse_ssl_row(row)) {
      ssl.push_back(*std::move(record));
    } else {
      ++result.ssl_malformed;
    }
  }
  result.ssl_added = ssl.size();
  result.x509_added = x509.size();

  // X509 rows index before the SSL rows join, so an append can introduce a
  // chain and its connections together (same contract as the batch fold).
  for (std::size_t i = 0; i < x509.size(); ++i) {
    // Snapshot only rows whose fuid actually inserts: add() is
    // first-observation-wins, so a re-observed fuid contributes nothing a
    // snapshot replay could miss — and retried or overlapping batches stop
    // growing the snapshot.
    if (durable_ && joiner_.certificates().count(x509[i].fuid) == 0) {
      appended_x509_rows_.push_back(*x509_raw[i]);
    }
    joiner_.add(x509[i]);
  }
  for (const zeek::SslLogRecord& record : ssl) {
    corpus_.add(joiner_, record);
  }
  ++generation_;
  if (publish) publish_analysis_locked();
  result.generation = generation_;
  result.unique_chains = corpus_.unique_chain_count();
  result.connections = corpus_.totals().connections;
  return result;
}

void ServiceState::maybe_compact_locked() {
  if (snapshot_every_ == 0 || appends_since_snapshot_ < snapshot_every_) return;

  SvcSnapshot snapshot;
  snapshot.generation = generation_;
  snapshot.wal_seq = wal_.next_seq() - 1;  // last committed seq
  snapshot.appended_x509_rows = appended_x509_rows_;
  snapshot.applied.reserve(applied_order_.size());
  // Commit order, so a restored ledger evicts in the same order this one
  // would have.
  for (const std::string& key : applied_order_) {
    snapshot.applied.push_back(applied_.at(key));
  }

  // Snapshot first, reset second — a crash between the two leaves both the
  // snapshot and a WAL whose records the snapshot already absorbed; replay's
  // seq check skips them. A failed write keeps the old snapshot and the full
  // WAL: recovery just replays more.
  const std::string text = encode_svc_snapshot(snapshot, corpus_);
  if (!core::write_file_atomic(snapshot_path_for(wal_.path()), text)) return;
  std::string reset_error;
  wal_.reset(&reset_error);  // tolerated: see above
  appends_since_snapshot_ = 0;
}

void ServiceState::remember_applied_locked(AppliedAppend applied) {
  applied_order_.push_back(applied.key);
  applied_[applied.key] = std::move(applied);
  while (applied_ledger_max_ != 0 &&
         applied_order_.size() > applied_ledger_max_) {
    applied_.erase(applied_order_.front());
    applied_order_.pop_front();
  }
}

}  // namespace certchain::svc
