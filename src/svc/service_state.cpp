#include "svc/service_state.hpp"

#include <mutex>
#include <utility>

#include "zeek/log_io.hpp"

namespace certchain::svc {

ServiceState::ServiceState(const truststore::TrustStoreSet& stores,
                           const ct::CtLogSet& ct_logs,
                           const core::VendorDirectory& vendors,
                           const chain::CrossSignRegistry* registry)
    : stores_(&stores),
      registry_(registry),
      pipeline_(stores, ct_logs, vendors, registry) {}

void ServiceState::load(const std::vector<zeek::SslLogRecord>& ssl,
                        const std::vector<zeek::X509LogRecord>& x509) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  joiner_ = zeek::LogJoiner(x509);
  corpus_ = core::CorpusIndex();
  for (const zeek::SslLogRecord& record : ssl) {
    corpus_.add(joiner_.join(record));
  }
  generation_ = 0;
  refresh_analysis_locked();
}

truststore::IssuerClass ServiceState::classify_issuer(
    const x509::DistinguishedName& issuer) const {
  return stores_->classify_issuer(issuer);
}

ChainVerdict ServiceState::categorize_chain(
    const chain::CertificateChain& submitted) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  ChainVerdict verdict;
  verdict.generation = generation_;
  verdict.category =
      chain::categorize_chain(submitted, *stores_, interception_issuers_);
  // The matched-path verdict mirrors the batch analyzers' conventions:
  // hybrid chains get the §4.2 leaf-plausibility test, the non-public and
  // interception analyses disable it (§4.3).
  const bool require_leaf = verdict.category == chain::ChainCategory::kHybrid;
  verdict.paths = chain::analyze_paths(submitted, registry_, require_leaf);
  if (verdict.category == chain::ChainCategory::kHybrid) {
    verdict.hybrid = chain::classify_hybrid(submitted, *stores_, registry_);
  }
  chain::LintOptions lint_options;
  lint_options.registry = registry_;
  verdict.lints = chain::lint_chain(submitted, lint_options);
  return verdict;
}

std::string ServiceState::report_section(
    const core::ReportTextOptions& options) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return core::render_report_text(report_, options);
}

AppendResult ServiceState::ingest_append(
    const std::vector<std::string>& ssl_rows,
    const std::vector<std::string>& x509_rows) {
  // Parse outside the exclusive section — only the fold mutates state.
  AppendResult result;
  std::vector<zeek::X509LogRecord> x509;
  x509.reserve(x509_rows.size());
  for (const std::string& row : x509_rows) {
    if (auto record = zeek::parse_x509_row(row)) {
      x509.push_back(*std::move(record));
    } else {
      ++result.x509_malformed;
    }
  }
  std::vector<zeek::SslLogRecord> ssl;
  ssl.reserve(ssl_rows.size());
  for (const std::string& row : ssl_rows) {
    if (auto record = zeek::parse_ssl_row(row)) {
      ssl.push_back(*std::move(record));
    } else {
      ++result.ssl_malformed;
    }
  }
  result.ssl_added = ssl.size();
  result.x509_added = x509.size();

  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (const zeek::X509LogRecord& record : x509) joiner_.add(record);
  for (const zeek::SslLogRecord& record : ssl) {
    corpus_.add(joiner_.join(record));
  }
  ++generation_;
  refresh_analysis_locked();
  result.generation = generation_;
  result.unique_chains = corpus_.unique_chain_count();
  result.connections = corpus_.totals().connections;
  return result;
}

std::uint64_t ServiceState::generation() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return generation_;
}

std::size_t ServiceState::unique_chains() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return corpus_.unique_chain_count();
}

core::CorpusTotals ServiceState::totals() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return corpus_.totals();
}

void ServiceState::refresh_analysis_locked() {
  report_ = pipeline_.analyze(corpus_);
  interception_issuers_ = report_.interception.issuer_set();
}

}  // namespace certchain::svc
