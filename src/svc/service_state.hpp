// The live corpus behind certchain_serve (DESIGN.md §12.3, durability §13).
//
// ServiceState keeps everything a query needs warm between requests: the
// deduplicated CorpusIndex, the joined certificate index (fuid -> cert, so
// later appends can reference earlier certificates), the full StudyReport of
// the current corpus, and the interception issuer set the chain categorizer
// consumes. Queries take a shared lock; ingest_append takes the exclusive
// lock, folds the new rows through the same LogJoiner/CorpusIndex machinery
// the batch pipeline uses, and eagerly re-analyzes — so every answer after an
// append reflects a complete, consistent analysis generation, never a
// half-updated one. The generation counter stamps responses so clients (and
// the concurrency suite) can tell which corpus state answered them.
//
// Durability (opt-in via recover_and_arm): every append is committed to a
// write-ahead log before the fold, a snapshot compacts the log every N
// appends, and a restarted daemon replays snapshot + WAL tail back to a
// state whose report is byte-identical to a never-crashed run. Appends may
// carry an idempotency key; a key seen before (in memory, or replayed from
// the WAL after a crash) short-circuits to the original result, so client
// retries fold exactly once.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "chain/categorizer.hpp"
#include "chain/linter.hpp"
#include "chain/matcher.hpp"
#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "ct/monitor.hpp"
#include "svc/wal.hpp"

namespace certchain::svc {

/// What categorize_chain answers for one submitted chain: the §3.2.2
/// category, the matched-path verdict, the hybrid classification when the
/// category warrants one, and the lint findings.
struct ChainVerdict {
  chain::ChainCategory category = chain::ChainCategory::kNonPublicDbOnly;
  chain::PathAnalysis paths;
  std::optional<chain::HybridClassification> hybrid;
  chain::LintReport lints;
  std::uint64_t generation = 0;  // corpus generation that answered
};

/// Accounting for one ingest_append call.
struct AppendResult {
  std::size_t ssl_added = 0;
  std::size_t x509_added = 0;
  std::size_t ssl_malformed = 0;
  std::size_t x509_malformed = 0;
  std::uint64_t generation = 0;     // generation after the fold
  std::size_t unique_chains = 0;    // corpus state after the fold
  std::uint64_t connections = 0;
  bool duplicate = false;           // idempotency key seen before; not re-folded
  std::uint64_t wal_seq = 0;        // 0 when the state is not durable
};

/// Durability configuration for recover_and_arm.
struct DurabilityOptions {
  std::string wal_path;
  /// Compact (snapshot + WAL reset) after this many appends; 0 = never.
  std::size_t snapshot_every = 0;
  /// Bound on the idempotency ledger: only the most recent N applied keys
  /// are remembered, evicted FIFO in commit order (0 = unbounded). Keeps
  /// ledger memory and snapshot size from growing with the daemon's
  /// lifetime; the trade-off is that a retry arriving after more than N
  /// newer keyed appends re-folds — pick N well above any client's retry
  /// horizon.
  std::size_t applied_ledger_max = 65536;
};

/// What a recovery pass found, for operator logs and telemetry.
struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t wal_records_seen = 0;     // intact records in the WAL
  std::uint64_t wal_records_applied = 0;  // folded during replay
  std::uint64_t wal_records_skipped = 0;  // <= snapshot seq or duplicate key
  std::uint64_t torn_bytes = 0;           // damaged tail truncated from the WAL
  std::uint64_t generation = 0;           // generation after recovery
};

class ServiceState {
 public:
  /// The referenced databases must outlive the state (same contract as
  /// StudyPipeline's).
  ServiceState(const truststore::TrustStoreSet& stores,
               const ct::CtLogSet& ct_logs, const core::VendorDirectory& vendors,
               const chain::CrossSignRegistry* registry = nullptr);

  /// Loads the initial corpus from parsed records, replacing any previous
  /// state, and runs the first analysis. Not thread-safe against concurrent
  /// queries — call before the server starts serving.
  void load(const std::vector<zeek::SslLogRecord>& ssl,
            const std::vector<zeek::X509LogRecord>& x509);

  /// Arms durability: restores any snapshot at snapshot_path_for(wal_path),
  /// replays the WAL tail (preserving original batch boundaries, skipping
  /// records the snapshot already absorbed and idempotency keys already
  /// applied), truncates the torn tail, and opens the WAL for appending.
  /// Call after load() and before serving. On failure the state is not
  /// durable and may hold a partially restored corpus — refuse to serve, or
  /// load() again and serve without durability.
  bool recover_and_arm(const DurabilityOptions& options, RecoveryStats* stats,
                       std::string* error);

  /// §3.2.1 issuer classification. The databases are immutable, so this
  /// needs no corpus lock at all.
  truststore::IssuerClass classify_issuer(
      const x509::DistinguishedName& issuer) const;

  /// Categorizes a submitted chain exactly the way the batch pipeline
  /// categorizes corpus chains — same categorize_chain call against the
  /// live interception issuer set — plus the matched-path analysis, hybrid
  /// classification and lints. Shared lock.
  ChainVerdict categorize_chain(const chain::CertificateChain& chain) const;

  /// Renders the selected report sections from the warm StudyReport.
  /// Shared lock; byte-identical to rendering a batch run over the same
  /// folded records.
  std::string report_section(const core::ReportTextOptions& options) const;

  /// Parses raw Zeek TSV body rows and folds them into the live corpus.
  /// Damaged rows are counted and skipped (the live fold is always lenient:
  /// a server must not die on one bad row). X509 rows are indexed before the
  /// SSL rows join, so an append can introduce a chain and its
  /// connections together; SSL rows referencing fuids never seen remain
  /// incomplete joins, exactly as in batch. Exclusive lock + eager
  /// re-analysis before returning.
  ///
  /// When durability is armed the batch is committed to the WAL before the
  /// fold; a WAL write failure throws std::runtime_error with nothing folded
  /// (the client sees a typed error and may retry). A non-empty
  /// idempotency_key that was applied before returns the original result
  /// with duplicate=true and folds nothing.
  AppendResult ingest_append(const std::vector<std::string>& ssl_rows,
                             const std::vector<std::string>& x509_rows,
                             const std::string& idempotency_key = "");

  // --- snapshot accessors (shared lock) ----------------------------------
  std::uint64_t generation() const;
  std::size_t unique_chains() const;
  core::CorpusTotals totals() const;
  bool durable() const { return durable_; }

  // --- CT subsystem (DESIGN.md §14.5) -------------------------------------
  // The CtLogSet is immutable while serving (issuance happened at world
  // build time), so these need no corpus lock; the monitor carries its own
  // mutex for the background poll thread.

  /// Current signed tree heads of every known log, in log order.
  std::vector<std::pair<std::string, ct::TreeHead>> ct_sths() const;

  /// Inclusion proof for a logged certificate fingerprint. Searches the
  /// named log (by id) or, with an empty log_id, every log in order.
  /// nullopt when no log holds the fingerprint — the handler answers
  /// NOT_FOUND.
  struct CtInclusionAnswer {
    std::string log_id;
    std::size_t index = 0;
    std::size_t tree_size = 0;
    ct::Digest256 root;
    std::vector<ct::Digest256> proof;
  };
  std::optional<CtInclusionAnswer> ct_prove_inclusion(
      std::string_view fingerprint, std::string_view log_id = {}) const;

  /// Arms the continuous monitor over every log in the set. Idempotent;
  /// returns the monitor for the caller's poll loop.
  ct::Monitor& arm_ct_monitor(const ct::MonitorConfig& config = {},
                              obs::MetricsRegistry* metrics = nullptr);
  /// The armed monitor, or nullptr before arm_ct_monitor.
  ct::Monitor* ct_monitor() { return ct_monitor_.get(); }
  const ct::Monitor* ct_monitor() const { return ct_monitor_.get(); }

 private:
  void refresh_analysis_locked();
  /// Parses + folds one batch under the exclusive lock (shared by live
  /// appends and WAL replay, so both produce identical corpus states).
  /// `refresh` defers the re-analysis during replay, where one pass at the
  /// end suffices.
  AppendResult fold_batch_locked(const std::vector<std::string>& ssl_rows,
                                 const std::vector<std::string>& x509_rows,
                                 bool refresh);
  /// Writes the compaction snapshot and resets the WAL. Best-effort: a
  /// failed compaction leaves the WAL intact, so recovery still works — it
  /// just replays more.
  void maybe_compact_locked();
  /// Records one applied keyed append in the idempotency ledger, evicting
  /// the oldest entries past applied_ledger_max_ (FIFO: applied_order_
  /// carries the keys in commit order).
  void remember_applied_locked(AppliedAppend applied);

  const truststore::TrustStoreSet* stores_;
  const ct::CtLogSet* ct_logs_;
  const chain::CrossSignRegistry* registry_;
  core::StudyPipeline pipeline_;
  std::unique_ptr<ct::Monitor> ct_monitor_;

  mutable std::shared_mutex mutex_;
  zeek::LogJoiner joiner_;          // grows across appends
  core::CorpusIndex corpus_;
  core::StudyReport report_;        // warm analysis of corpus_
  chain::InterceptionIssuerSet interception_issuers_;
  std::uint64_t generation_ = 0;    // bumps on every successful append

  // --- durability (all guarded by mutex_ once serving starts) -------------
  WriteAheadLog wal_;
  bool durable_ = false;
  std::size_t snapshot_every_ = 0;
  std::size_t appends_since_snapshot_ = 0;
  /// Raw X509 rows since load() whose fuid was new to the joiner when they
  /// folded — the minimal set that rebuilds the joiner on snapshot restore
  /// (LogJoiner::add is first-observation-wins, so a re-observed fuid
  /// contributes nothing a replay could miss).
  std::vector<std::string> appended_x509_rows_;
  std::map<std::string, AppliedAppend> applied_; // idempotency ledger
  std::deque<std::string> applied_order_;        // ledger keys, commit order
  std::size_t applied_ledger_max_ = 0;
};

}  // namespace certchain::svc
