// The live corpus behind certchain_serve (DESIGN.md §12.3, durability §13,
// lock-free reads §15).
//
// ServiceState keeps everything a query needs warm between requests and
// serves it RCU-style: the entire read-side world — the analyzed StudyReport,
// the interception issuer set the chain categorizer consumes, the corpus
// totals and the generation stamp — lives in one immutable AnalysisSnapshot
// published through an atomic shared_ptr. Readers grab the current snapshot
// with a single atomic load and answer from it with **zero locks**; a reader
// that is mid-request keeps its snapshot alive (and byte-stable) no matter
// how many newer generations the writer publishes, and the snapshot is freed
// the instant its last reader drops it. `svc.snapshot.published` counts
// publications and the `svc.snapshot.live` gauge tracks how many generations
// are currently pinned (1 = only the current one).
//
// Writes stay serialized: ingest_append takes the writer mutex, folds the
// new rows through the same LogJoiner/CorpusIndex machinery the batch
// pipeline uses into writer-private state, re-analyzes eagerly, then builds
// the next snapshot off to the side and publishes it with one atomic store —
// so every answer reflects a complete, consistent analysis generation, never
// a half-updated one. Readers never wait for the (expensive) re-analysis.
//
// Durability (opt-in via recover_and_arm): every append is committed to a
// write-ahead log before the fold, a snapshot compacts the log every N
// appends, and a restarted daemon replays snapshot + WAL tail back to a
// state whose report is byte-identical to a never-crashed run. Appends may
// carry an idempotency key; a key seen before (in memory, or replayed from
// the WAL after a crash) short-circuits to the original result, so client
// retries fold exactly once. The WAL-commit-before-fold order is unchanged:
// the new analysis generation is published only after the WAL commit.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chain/categorizer.hpp"
#include "chain/linter.hpp"
#include "chain/matcher.hpp"
#include "core/dn_pool.hpp"
#include "core/epoch_delta.hpp"
#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "ct/monitor.hpp"
#include "svc/telemetry.hpp"
#include "svc/wal.hpp"

namespace certchain::svc {

/// What categorize_chain answers for one submitted chain: the §3.2.2
/// category, the matched-path verdict, the hybrid classification when the
/// category warrants one, and the lint findings.
struct ChainVerdict {
  chain::ChainCategory category = chain::ChainCategory::kNonPublicDbOnly;
  chain::PathAnalysis paths;
  std::optional<chain::HybridClassification> hybrid;
  chain::LintReport lints;
  std::uint64_t generation = 0;  // corpus generation that answered
};

/// Accounting for one ingest_append call.
struct AppendResult {
  std::size_t ssl_added = 0;
  std::size_t x509_added = 0;
  std::size_t ssl_malformed = 0;
  std::size_t x509_malformed = 0;
  std::uint64_t generation = 0;     // generation after the fold
  std::size_t unique_chains = 0;    // corpus state after the fold
  std::uint64_t connections = 0;
  bool duplicate = false;           // idempotency key seen before; not re-folded
  std::uint64_t wal_seq = 0;        // 0 when the state is not durable
};

/// Durability configuration for recover_and_arm.
struct DurabilityOptions {
  std::string wal_path;
  /// Compact (snapshot + WAL reset) after this many appends; 0 = never.
  std::size_t snapshot_every = 0;
  /// Bound on the idempotency ledger: only the most recent N applied keys
  /// are remembered, evicted FIFO in commit order (0 = unbounded). Keeps
  /// ledger memory and snapshot size from growing with the daemon's
  /// lifetime; the trade-off is that a retry arriving after more than N
  /// newer keyed appends re-folds — pick N well above any client's retry
  /// horizon.
  std::size_t applied_ledger_max = 65536;
};

/// What a recovery pass found, for operator logs and telemetry.
struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t wal_records_seen = 0;     // intact records in the WAL
  std::uint64_t wal_records_applied = 0;  // folded during replay
  std::uint64_t wal_records_skipped = 0;  // <= snapshot seq or duplicate key
  std::uint64_t torn_bytes = 0;           // damaged tail truncated from the WAL
  std::uint64_t generation = 0;           // generation after recovery
};

/// One immutable, fully analyzed view of the corpus. Everything a read-only
/// request needs lives here, so a single atomic shared_ptr load yields a
/// self-consistent answer set: the report text, the interception issuer set,
/// the generation stamp, and the corpus counters all belong to the same
/// analysis pass. Snapshots are never mutated after publication — a reader
/// holding one can render from it for as long as it likes while newer
/// generations come and go.
struct AnalysisSnapshot {
  core::StudyReport report;
  chain::InterceptionIssuerSet interception_issuers;
  std::uint64_t generation = 0;
  std::size_t unique_chains = 0;
  core::CorpusTotals totals;
  /// Completed fleet epochs (index order). The fleet_status / epoch_delta
  /// endpoints and the "fleet" report section answer from this list, so a
  /// reader sees epochs and corpus state from the same publication.
  std::vector<core::EpochSummary> fleet_epochs;
};

class ServiceState {
 public:
  using SnapshotPtr = std::shared_ptr<const AnalysisSnapshot>;

  /// The referenced databases must outlive the state (same contract as
  /// StudyPipeline's).
  ServiceState(const truststore::TrustStoreSet& stores,
               const ct::CtLogSet& ct_logs, const core::VendorDirectory& vendors,
               const chain::CrossSignRegistry* registry = nullptr);
  ~ServiceState();

  /// Loads the initial corpus from parsed records, replacing any previous
  /// state, runs the first analysis, and publishes generation 0.
  void load(const std::vector<zeek::SslLogRecord>& ssl,
            const std::vector<zeek::X509LogRecord>& x509);

  /// Arms durability: restores any snapshot at snapshot_path_for(wal_path),
  /// replays the WAL tail (preserving original batch boundaries, skipping
  /// records the snapshot already absorbed and idempotency keys already
  /// applied), truncates the torn tail, and opens the WAL for appending.
  /// Call after load() and before serving. On failure the state is not
  /// durable and may hold a partially restored corpus — refuse to serve, or
  /// load() again and serve without durability.
  bool recover_and_arm(const DurabilityOptions& options, RecoveryStats* stats,
                       std::string* error);

  /// The current analysis snapshot: one atomic load, no lock. Hold the
  /// returned pointer for the duration of one request so every value you
  /// read belongs to the same generation; drop it promptly so superseded
  /// generations can be freed.
  SnapshotPtr acquire_snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// §3.2.1 issuer classification. The databases are immutable, so this
  /// needs no snapshot at all.
  truststore::IssuerClass classify_issuer(
      const x509::DistinguishedName& issuer) const;

  /// Categorizes a submitted chain exactly the way the batch pipeline
  /// categorizes corpus chains — same categorize_chain call against the
  /// live interception issuer set — plus the matched-path analysis, hybrid
  /// classification and lints. Lock-free: answers from one snapshot.
  ChainVerdict categorize_chain(const chain::CertificateChain& chain) const;

  /// Renders the selected report sections from the warm StudyReport.
  /// Lock-free; byte-identical to rendering a batch run over the same
  /// folded records. (Callers that also need the generation should
  /// acquire_snapshot() once and read both from it.)
  std::string report_section(const core::ReportTextOptions& options) const;

  /// Parses raw Zeek TSV body rows and folds them into the live corpus.
  /// Damaged rows are counted and skipped (the live fold is always lenient:
  /// a server must not die on one bad row). X509 rows are indexed before the
  /// SSL rows join, so an append can introduce a chain and its
  /// connections together; SSL rows referencing fuids never seen remain
  /// incomplete joins, exactly as in batch. Takes the writer mutex, folds
  /// and re-analyzes off to the side, then publishes the new snapshot with
  /// one atomic store — concurrent readers are never blocked and never see
  /// a half-updated corpus.
  ///
  /// When durability is armed the batch is committed to the WAL before the
  /// fold; a WAL write failure throws std::runtime_error with nothing folded
  /// (the client sees a typed error and may retry). A non-empty
  /// idempotency_key that was applied before returns the original result
  /// with duplicate=true and folds nothing.
  AppendResult ingest_append(const std::vector<std::string>& ssl_rows,
                             const std::vector<std::string>& x509_rows,
                             const std::string& idempotency_key = "");

  /// Registers one completed fleet epoch and republishes the snapshot (no
  /// re-analysis: the corpus is unchanged — typically the epoch's rows were
  /// just folded via ingest_append). Idempotent by epoch index: re-feeding
  /// an epoch (client retry, post-recovery re-run) replaces its summary.
  /// The epoch registry is in-memory only; after a crash the fleet re-feeds
  /// it alongside its idempotent row appends (DESIGN.md §17.3).
  void record_fleet_epoch(core::EpochSummary summary);

  // --- snapshot accessors (each one atomic load, no lock) -----------------
  std::uint64_t generation() const { return acquire_snapshot()->generation; }
  std::size_t unique_chains() const {
    return acquire_snapshot()->unique_chains;
  }
  core::CorpusTotals totals() const { return acquire_snapshot()->totals; }
  bool durable() const { return durable_; }

  // --- snapshot lifecycle observability (DESIGN.md §15.2) -----------------

  /// Mirrors snapshot lifecycle events into `telemetry`: the
  /// `svc.snapshot.published` counter and the `svc.snapshot.live` gauge
  /// (updated on every publication and every release, including releases on
  /// reader threads). Pass nullptr to detach; the caller must detach before
  /// the telemetry object is destroyed. The server attaches on start() and
  /// detaches when its teardown completes.
  void attach_telemetry(SyncTelemetry* telemetry);

  /// How many analysis generations are currently alive (the published one
  /// plus any pinned by in-flight readers). Test observability.
  std::int64_t live_snapshots() const;
  /// How many snapshots have ever been published (load + every append).
  std::uint64_t snapshots_published() const;

  // --- CT subsystem (DESIGN.md §14.5) -------------------------------------
  // The CtLogSet is immutable while serving (issuance happened at world
  // build time), so these need no corpus snapshot; the monitor carries its
  // own mutex for the background poll thread.

  /// Current signed tree heads of every known log, in log order.
  std::vector<std::pair<std::string, ct::TreeHead>> ct_sths() const;

  /// Inclusion proof for a logged certificate fingerprint. Searches the
  /// named log (by id) or, with an empty log_id, every log in order.
  /// nullopt when no log holds the fingerprint — the handler answers
  /// NOT_FOUND.
  struct CtInclusionAnswer {
    std::string log_id;
    std::size_t index = 0;
    std::size_t tree_size = 0;
    ct::Digest256 root;
    std::vector<ct::Digest256> proof;
  };
  std::optional<CtInclusionAnswer> ct_prove_inclusion(
      std::string_view fingerprint, std::string_view log_id = {}) const;

  /// Arms the continuous monitor over every log in the set. Idempotent;
  /// returns the monitor for the caller's poll loop.
  ct::Monitor& arm_ct_monitor(const ct::MonitorConfig& config = {},
                              obs::MetricsRegistry* metrics = nullptr);
  /// The armed monitor, or nullptr before arm_ct_monitor.
  ct::Monitor* ct_monitor() { return ct_monitor_.get(); }
  const ct::Monitor* ct_monitor() const { return ct_monitor_.get(); }

 private:
  /// Counts live/published snapshots and mirrors them into the attached
  /// telemetry. Shared by the state and every snapshot's deleter, so a
  /// release on a reader thread (after the state moved on, or even after it
  /// died) still lands: the control block outlives both.
  struct SnapshotTracker {
    std::atomic<std::int64_t> live{0};
    std::atomic<std::uint64_t> published{0};
    std::mutex mutex;                    // guards telemetry (attach/detach)
    SyncTelemetry* telemetry = nullptr;  // nullptr = detached

    void on_publish();
    void on_release();
  };

  /// Builds the analyzed snapshot of the current writer-side corpus and
  /// publishes it (single atomic store). Caller holds writer_mutex_.
  void publish_analysis_locked();
  /// Parses + folds one batch under the writer mutex (shared by live
  /// appends and WAL replay, so both produce identical corpus states).
  /// `publish` defers the re-analysis + publication during replay, where
  /// one pass at the end suffices.
  AppendResult fold_batch_locked(const std::vector<std::string>& ssl_rows,
                                 const std::vector<std::string>& x509_rows,
                                 bool publish);
  /// Writes the compaction snapshot and resets the WAL. Best-effort: a
  /// failed compaction leaves the WAL intact, so recovery still works — it
  /// just replays more.
  void maybe_compact_locked();
  /// Records one applied keyed append in the idempotency ledger, evicting
  /// the oldest entries past applied_ledger_max_ (FIFO: applied_order_
  /// carries the keys in commit order).
  void remember_applied_locked(AppliedAppend applied);

  const truststore::TrustStoreSet* stores_;
  const ct::CtLogSet* ct_logs_;
  const chain::CrossSignRegistry* registry_;
  core::StudyPipeline pipeline_;
  std::unique_ptr<ct::Monitor> ct_monitor_;

  // --- read side: the published snapshot ----------------------------------
  std::atomic<SnapshotPtr> snapshot_;
  std::shared_ptr<SnapshotTracker> tracker_;

  // --- write side (all guarded by writer_mutex_) ---------------------------
  mutable std::mutex writer_mutex_;
  /// The service's DN interning pool (DESIGN.md §16). Declared before
  /// joiner_ so it outlives it; every certificate the joiner builds across
  /// appends carries this pool's ids, and re-analysis classifies issuers by
  /// id. load() resets the corpus but keeps the pool — ids stay stable for
  /// the life of the state, stale entries are just idle memory.
  core::DnPool dn_pool_;
  zeek::LogJoiner joiner_;          // grows across appends
  core::CorpusIndex corpus_;
  std::uint64_t generation_ = 0;    // bumps on every successful append
  std::vector<core::EpochSummary> fleet_epochs_;  // writer-side epoch registry

  // --- durability (guarded by writer_mutex_ once serving starts) -----------
  WriteAheadLog wal_;
  bool durable_ = false;
  std::size_t snapshot_every_ = 0;
  std::size_t appends_since_snapshot_ = 0;
  /// Raw X509 rows since load() whose fuid was new to the joiner when they
  /// folded — the minimal set that rebuilds the joiner on snapshot restore
  /// (LogJoiner::add is first-observation-wins, so a re-observed fuid
  /// contributes nothing a replay could miss).
  std::vector<std::string> appended_x509_rows_;
  std::map<std::string, AppliedAppend> applied_; // idempotency ledger
  std::deque<std::string> applied_order_;        // ledger keys, commit order
  std::size_t applied_ledger_max_ = 0;
};

}  // namespace certchain::svc
