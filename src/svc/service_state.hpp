// The live corpus behind certchain_serve (DESIGN.md §12.3).
//
// ServiceState keeps everything a query needs warm between requests: the
// deduplicated CorpusIndex, the joined certificate index (fuid -> cert, so
// later appends can reference earlier certificates), the full StudyReport of
// the current corpus, and the interception issuer set the chain categorizer
// consumes. Queries take a shared lock; ingest_append takes the exclusive
// lock, folds the new rows through the same LogJoiner/CorpusIndex machinery
// the batch pipeline uses, and eagerly re-analyzes — so every answer after an
// append reflects a complete, consistent analysis generation, never a
// half-updated one. The generation counter stamps responses so clients (and
// the concurrency suite) can tell which corpus state answered them.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "chain/categorizer.hpp"
#include "chain/linter.hpp"
#include "chain/matcher.hpp"
#include "core/pipeline.hpp"
#include "core/report_text.hpp"

namespace certchain::svc {

/// What categorize_chain answers for one submitted chain: the §3.2.2
/// category, the matched-path verdict, the hybrid classification when the
/// category warrants one, and the lint findings.
struct ChainVerdict {
  chain::ChainCategory category = chain::ChainCategory::kNonPublicDbOnly;
  chain::PathAnalysis paths;
  std::optional<chain::HybridClassification> hybrid;
  chain::LintReport lints;
  std::uint64_t generation = 0;  // corpus generation that answered
};

/// Accounting for one ingest_append call.
struct AppendResult {
  std::size_t ssl_added = 0;
  std::size_t x509_added = 0;
  std::size_t ssl_malformed = 0;
  std::size_t x509_malformed = 0;
  std::uint64_t generation = 0;     // generation after the fold
  std::size_t unique_chains = 0;    // corpus state after the fold
  std::uint64_t connections = 0;
};

class ServiceState {
 public:
  /// The referenced databases must outlive the state (same contract as
  /// StudyPipeline's).
  ServiceState(const truststore::TrustStoreSet& stores,
               const ct::CtLogSet& ct_logs, const core::VendorDirectory& vendors,
               const chain::CrossSignRegistry* registry = nullptr);

  /// Loads the initial corpus from parsed records, replacing any previous
  /// state, and runs the first analysis. Not thread-safe against concurrent
  /// queries — call before the server starts serving.
  void load(const std::vector<zeek::SslLogRecord>& ssl,
            const std::vector<zeek::X509LogRecord>& x509);

  /// §3.2.1 issuer classification. The databases are immutable, so this
  /// needs no corpus lock at all.
  truststore::IssuerClass classify_issuer(
      const x509::DistinguishedName& issuer) const;

  /// Categorizes a submitted chain exactly the way the batch pipeline
  /// categorizes corpus chains — same categorize_chain call against the
  /// live interception issuer set — plus the matched-path analysis, hybrid
  /// classification and lints. Shared lock.
  ChainVerdict categorize_chain(const chain::CertificateChain& chain) const;

  /// Renders the selected report sections from the warm StudyReport.
  /// Shared lock; byte-identical to rendering a batch run over the same
  /// folded records.
  std::string report_section(const core::ReportTextOptions& options) const;

  /// Parses raw Zeek TSV body rows and folds them into the live corpus.
  /// Damaged rows are counted and skipped (the live fold is always lenient:
  /// a server must not die on one bad row). X509 rows are indexed before the
  /// SSL rows join, so an append can introduce a chain and its
  /// connections together; SSL rows referencing fuids never seen remain
  /// incomplete joins, exactly as in batch. Exclusive lock + eager
  /// re-analysis before returning.
  AppendResult ingest_append(const std::vector<std::string>& ssl_rows,
                             const std::vector<std::string>& x509_rows);

  // --- snapshot accessors (shared lock) ----------------------------------
  std::uint64_t generation() const;
  std::size_t unique_chains() const;
  core::CorpusTotals totals() const;

 private:
  void refresh_analysis_locked();

  const truststore::TrustStoreSet* stores_;
  const chain::CrossSignRegistry* registry_;
  core::StudyPipeline pipeline_;

  mutable std::shared_mutex mutex_;
  zeek::LogJoiner joiner_;          // grows across appends
  core::CorpusIndex corpus_;
  core::StudyReport report_;        // warm analysis of corpus_
  chain::InterceptionIssuerSet interception_issuers_;
  std::uint64_t generation_ = 0;    // bumps on every successful append
};

}  // namespace certchain::svc
