// Thread-safe telemetry facade for the service layer.
//
// obs::RunContext and MetricsRegistry are deliberately single-threaded (the
// batch pipeline merges shard-local registries at barriers instead of
// locking, DESIGN.md §10). A server has no barriers — the event loop and
// request workers record concurrently — so the svc layer funnels every
// update through this small mutex-guarded wrapper. Request handling is
// milliseconds of work per lock acquisition; the lock is not a bottleneck
// at the queue depths the admission control allows.
//
// Serving metric families recorded through this facade (DESIGN.md §15):
//
//   stage.svc.requests.{in,admitted,dropped}  admission triple (reconciles)
//   svc.endpoint.<name>.{requests,errors,ms}  per-endpoint outcomes/latency
//   svc.connections.{accepted,rejected,closed,stalled_closed,idle_closed}
//   svc.connections.active                    gauge
//   svc.snapshot.published                    RCU generations published
//   svc.snapshot.live                         gauge: snapshots not yet freed
//                                             (1 when quiescent; >1 while
//                                             readers pin old generations)
//   svc.eventloop.wakeups                     poller returns with ready events
//   svc.eventloop.completions                 worker responses routed back
//   svc.eventloop.partial_writes              flushes that left bytes queued
//                                             (peer socket buffer full)
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/export.hpp"
#include "obs/run_context.hpp"

namespace certchain::svc {

class SyncTelemetry {
 public:
  void count(std::string_view name, std::uint64_t delta = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    context_.metrics.count(name, delta);
  }

  void set_gauge(std::string_view name, double value) {
    std::lock_guard<std::mutex> lock(mutex_);
    context_.metrics.set_gauge(name, value);
  }

  void observe_timing(std::string_view name, double ms) {
    std::lock_guard<std::mutex> lock(mutex_);
    context_.metrics.observe_timing(name, ms);
  }

  void set_config(std::string_view key, std::string_view value) {
    std::lock_guard<std::mutex> lock(mutex_);
    context_.set_config(key, value);
  }

  std::uint64_t counter(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return context_.metrics.counter(name);
  }

  double gauge(std::string_view name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return context_.metrics.gauge(name);
  }

  /// The schema-versioned certchain.obs.metrics JSON document (the payload
  /// of the metrics endpoint).
  std::string export_json() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return obs::export_metrics_json(context_);
  }

  /// Runs `fn(const obs::RunContext&)` under the lock — for exporters that
  /// need more than one value coherently (bench tables, manifest checks).
  template <typename Fn>
  auto with_context(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return fn(static_cast<const obs::RunContext&>(context_));
  }

 private:
  mutable std::mutex mutex_;
  obs::RunContext context_;
};

}  // namespace certchain::svc
