#include "svc/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/stream_checkpoint.hpp"
#include "util/hash.hpp"
#include "zeek/log_io.hpp"

namespace certchain::svc {

namespace {

void put_u32_be(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>(value & 0xFF));
}

void put_u64_be(std::string& out, std::uint64_t value) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

std::uint32_t get_u32_be(std::string_view bytes) {
  return (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes[3]));
}

std::uint64_t get_u64_be(std::string_view bytes) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[i]);
  }
  return value;
}

void write_string_array(obs::json::Writer& writer, std::string_view key,
                        const std::vector<std::string>& rows) {
  writer.key(key);
  writer.begin_array();
  for (const std::string& row : rows) writer.value_string(row);
  writer.end_array();
}

bool read_string_array(const obs::json::Value& object, std::string_view key,
                       std::vector<std::string>& out) {
  const obs::json::Value* member = object.find(key);
  if (member == nullptr || !member->is_array()) return false;
  out.reserve(member->array.size());
  for (const obs::json::Value& item : member->array) {
    if (!item.is_string()) return false;
    out.push_back(item.string);
  }
  return true;
}

bool read_uint(const obs::json::Value& object, const char* key,
               std::uint64_t& out) {
  const obs::json::Value* member = object.find(key);
  if (member == nullptr || !member->is_number() || member->num < 0) return false;
  out = static_cast<std::uint64_t>(member->num);
  return true;
}

/// Decodes one record payload; a payload that doesn't carry the expected
/// shape reads as damage (the caller treats it as the torn tail).
std::optional<WalRecord> decode_wal_payload(std::string_view payload) {
  const std::optional<obs::json::Value> root = obs::json::parse(payload);
  if (!root || !root->is_object()) return std::nullopt;
  WalRecord record;
  if (!read_uint(*root, "seq", record.seq) || record.seq == 0) return std::nullopt;
  const obs::json::Value* key = root->find("key");
  if (key == nullptr || !key->is_string()) return std::nullopt;
  record.idempotency_key = key->string;
  if (!read_string_array(*root, "ssl_rows", record.ssl_rows) ||
      !read_string_array(*root, "x509_rows", record.x509_rows)) {
    return std::nullopt;
  }
  return record;
}

bool write_fully(int fd, std::string_view bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string encode_wal_header() {
  std::string header(kWalMagic);
  header.push_back(static_cast<char>(kWalVersion));
  header.append(3, '\0');
  return header;
}

std::string encode_wal_record(const WalRecord& record) {
  obs::json::Writer writer;
  writer.begin_object();
  writer.key("seq");
  writer.value_uint(record.seq);
  writer.key("key");
  writer.value_string(record.idempotency_key);
  write_string_array(writer, "ssl_rows", record.ssl_rows);
  write_string_array(writer, "x509_rows", record.x509_rows);
  writer.end_object();
  const std::string payload = std::move(writer).str();

  std::string framed;
  framed.reserve(kWalRecordHeaderBytes + payload.size());
  put_u32_be(framed, static_cast<std::uint32_t>(payload.size()));
  put_u64_be(framed, util::fnv1a64(payload));
  framed.append(payload);
  return framed;
}

std::optional<WalReplay> WriteAheadLog::replay(const std::string& path,
                                               std::string* error) {
  const auto fail = [error](const std::string& message) -> std::optional<WalReplay> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  WalReplay replay;
  const std::optional<std::string> text = core::read_file_text(path);
  if (!text.has_value()) {
    // Missing file = empty log, ready to be created on open().
    if (::access(path.c_str(), F_OK) == 0) {
      return fail("wal unreadable: " + path);
    }
    replay.header_valid = true;
    return replay;
  }

  if (text->size() < kWalHeaderBytes) {
    // Shorter than the header itself: a crash between open(O_CREAT) and the
    // header fsync on first arming. If what made it to disk is a prefix of
    // our header the file is an empty log awaiting its re-stamp by open();
    // anything else is a foreign file we must not truncate over.
    if (encode_wal_header().compare(0, text->size(), *text) != 0) {
      return fail("wal header is not a " + std::string(kWalMagic) +
                  " prefix: " + path);
    }
    replay.header_valid = true;
    replay.torn_bytes = text->size();
    return replay;
  }
  if (text->compare(0, kWalMagic.size(), kWalMagic) != 0) {
    return fail("wal header is not " + std::string(kWalMagic) + ": " + path);
  }
  const std::uint8_t version =
      static_cast<std::uint8_t>((*text)[kWalMagic.size()]);
  if (version != kWalVersion) {
    return fail("unsupported wal version " + std::to_string(version));
  }
  replay.header_valid = true;
  replay.good_bytes = kWalHeaderBytes;

  std::uint64_t last_seq = 0;
  std::size_t offset = kWalHeaderBytes;
  while (offset < text->size()) {
    // Anything that fails from here on is the torn tail: a partial record
    // header, a declared length past EOF or past the sanity cap, a checksum
    // mismatch, an unparseable payload, or a sequence break.
    if (text->size() - offset < kWalRecordHeaderBytes) break;
    const std::uint64_t length =
        get_u32_be(std::string_view(*text).substr(offset, 4));
    if (length > kMaxWalPayloadBytes) break;
    if (text->size() - offset - kWalRecordHeaderBytes < length) break;
    const std::uint64_t checksum =
        get_u64_be(std::string_view(*text).substr(offset + 4, 8));
    const std::string_view payload =
        std::string_view(*text).substr(offset + kWalRecordHeaderBytes, length);
    if (util::fnv1a64(payload) != checksum) break;
    std::optional<WalRecord> record = decode_wal_payload(payload);
    if (!record.has_value() || record->seq <= last_seq) break;
    last_seq = record->seq;
    offset += kWalRecordHeaderBytes + length;
    replay.good_bytes = offset;
    replay.records.push_back(*std::move(record));
  }
  replay.torn_bytes = text->size() - replay.good_bytes;
  return replay;
}

bool WriteAheadLog::open(const std::string& path, std::uint64_t good_bytes,
                         std::uint64_t next_seq, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    return false;
  };

  close();
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return fail("open(" + path + ")");
  path_ = path;
  next_seq_ = next_seq == 0 ? 1 : next_seq;

  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return fail("lseek(" + path + ")");

  // Anything replay() could not vouch for is dropped: the torn tail of an
  // existing log, or the partial header of a file that died before its
  // first fsync (good_bytes < kWalHeaderBytes reads as "no header").
  if (good_bytes < kWalHeaderBytes) good_bytes = 0;
  if (static_cast<std::uint64_t>(end) > good_bytes) {
    if (::ftruncate(fd_, static_cast<off_t>(good_bytes)) != 0) {
      return fail("ftruncate(" + path + ")");
    }
    if (::fsync(fd_) != 0) return fail("fsync truncate");
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) return fail("lseek end");
  if (good_bytes == 0) {
    // Fresh (or re-stamped) file: write the header.
    if (!write_fully(fd_, encode_wal_header())) return fail("write header");
    if (::fsync(fd_) != 0) return fail("fsync header");
    good_bytes = kWalHeaderBytes;
  }
  bytes_on_disk_ = good_bytes;
  return true;
}

bool WriteAheadLog::append(WalRecord& record, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "wal is not open";
    return false;
  }
  if (poisoned_) {
    if (error != nullptr) {
      *error = "wal is poisoned by an earlier failed append; recover before "
               "appending";
    }
    return false;
  }
  record.seq = next_seq_;
  const std::string framed = encode_wal_record(record);

  std::string io_error;
  bool allow_rollback = true;
  bool committed;
  if (injected_fault_ != InjectedFault::kNone) {
    // Test shim: land half the frame on disk, then report failure — the
    // shape ENOSPC mid-record leaves behind.
    const InjectedFault fault =
        std::exchange(injected_fault_, InjectedFault::kNone);
    write_fully(fd_, std::string_view(framed).substr(0, framed.size() / 2));
    io_error = "wal write: injected fault";
    allow_rollback = fault != InjectedFault::kTornWriteNoRollback;
    committed = false;
  } else if (!write_fully(fd_, framed)) {
    io_error = std::string("wal write: ") + std::strerror(errno);
    committed = false;
  } else if (::fsync(fd_) != 0) {
    io_error = std::string("wal fsync: ") + std::strerror(errno);
    committed = false;
  } else {
    committed = true;
  }

  if (!committed) {
    // A failed write may have landed part of the frame; a failed fsync
    // leaves bytes of unknown durability. Either way the file now holds
    // bytes past the last committed record, and a later successful append
    // written after them would be discarded by replay as the torn tail —
    // losing an acknowledged record. Roll the file back to the committed
    // prefix; if even that fails, poison the log so every further append
    // fails closed until recovery truncates the damage.
    const bool rolled_back =
        allow_rollback &&
        ::ftruncate(fd_, static_cast<off_t>(bytes_on_disk_)) == 0 &&
        ::fsync(fd_) == 0 && ::lseek(fd_, 0, SEEK_END) >= 0;
    if (!rolled_back) poisoned_ = true;
    if (error != nullptr) {
      *error = io_error + (poisoned_ ? "; rollback failed, wal poisoned"
                                     : "; rolled back");
    }
    record.seq = 0;  // not committed; the seq will be reused
    return false;
  }
  ++next_seq_;
  bytes_on_disk_ += framed.size();
  return true;
}

bool WriteAheadLog::reset(std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "wal is not open";
    return false;
  }
  const std::string path = path_;
  const std::uint64_t next_seq = next_seq_;
  if (!core::write_file_atomic(path, encode_wal_header())) {
    if (error != nullptr) *error = "wal reset failed: " + path;
    return false;
  }
  // The open fd still points at the replaced inode; reopen the new file.
  ::close(fd_);
  fd_ = -1;
  return open(path, kWalHeaderBytes, next_seq, error);
}

void WriteAheadLog::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  path_.clear();
  bytes_on_disk_ = 0;
  // Poison belongs to the damaged open file; the next open() re-validates
  // the on-disk state (replay + truncate) before accepting appends again.
  poisoned_ = false;
}

// --- snapshot ---------------------------------------------------------------

std::string encode_svc_snapshot(const SvcSnapshot& snapshot,
                                const core::CorpusIndex& corpus) {
  obs::json::Writer writer;
  writer.begin_object();
  writer.key("schema");
  writer.value_string(kSvcSnapshotSchema);
  writer.key("version");
  writer.value_uint(kSvcSnapshotVersion);
  writer.key("generation");
  writer.value_uint(snapshot.generation);
  writer.key("wal_seq");
  writer.value_uint(snapshot.wal_seq);
  write_string_array(writer, "appended_x509_rows", snapshot.appended_x509_rows);
  writer.key("applied");
  writer.begin_array();
  for (const AppliedAppend& entry : snapshot.applied) {
    writer.begin_object();
    writer.key("key");
    writer.value_string(entry.key);
    writer.key("wal_seq");
    writer.value_uint(entry.wal_seq);
    writer.key("generation");
    writer.value_uint(entry.generation);
    writer.key("ssl_added");
    writer.value_uint(entry.ssl_added);
    writer.key("x509_added");
    writer.value_uint(entry.x509_added);
    writer.key("ssl_malformed");
    writer.value_uint(entry.ssl_malformed);
    writer.key("x509_malformed");
    writer.value_uint(entry.x509_malformed);
    writer.key("unique_chains");
    writer.value_uint(entry.unique_chains);
    writer.key("connections");
    writer.value_uint(entry.connections);
    writer.end_object();
  }
  writer.end_array();
  writer.key("corpus");
  corpus.write_snapshot(writer);
  writer.end_object();
  return std::move(writer).str();
}

std::optional<SvcSnapshot> decode_svc_snapshot(std::string_view text,
                                               zeek::LogJoiner& joiner,
                                               core::CorpusIndex& corpus,
                                               std::string* error) {
  const auto fail = [error](const std::string& message) -> std::optional<SvcSnapshot> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  std::string parse_error;
  const std::optional<obs::json::Value> root =
      obs::json::parse(text, &parse_error);
  if (!root) return fail("snapshot parse failed: " + parse_error);
  if (!root->is_object()) return fail("snapshot is not an object");

  const obs::json::Value* schema = root->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kSvcSnapshotSchema) {
    return fail("snapshot schema mismatch");
  }
  std::uint64_t version = 0;
  if (!read_uint(*root, "version", version) ||
      version != static_cast<std::uint64_t>(kSvcSnapshotVersion)) {
    return fail("unsupported snapshot version");
  }

  SvcSnapshot snapshot;
  if (!read_uint(*root, "generation", snapshot.generation) ||
      !read_uint(*root, "wal_seq", snapshot.wal_seq)) {
    return fail("snapshot frontier fields malformed");
  }
  if (!read_string_array(*root, "appended_x509_rows",
                         snapshot.appended_x509_rows)) {
    return fail("snapshot appended_x509_rows malformed");
  }
  const obs::json::Value* applied = root->find("applied");
  if (applied == nullptr || !applied->is_array()) {
    return fail("snapshot applied ledger malformed");
  }
  for (const obs::json::Value& entry : applied->array) {
    if (!entry.is_object()) return fail("snapshot applied entry malformed");
    AppliedAppend item;
    const obs::json::Value* key = entry.find("key");
    if (key == nullptr || !key->is_string() ||
        !read_uint(entry, "wal_seq", item.wal_seq) ||
        !read_uint(entry, "generation", item.generation) ||
        !read_uint(entry, "ssl_added", item.ssl_added) ||
        !read_uint(entry, "x509_added", item.x509_added) ||
        !read_uint(entry, "ssl_malformed", item.ssl_malformed) ||
        !read_uint(entry, "x509_malformed", item.x509_malformed) ||
        !read_uint(entry, "unique_chains", item.unique_chains) ||
        !read_uint(entry, "connections", item.connections)) {
      return fail("snapshot applied entry malformed");
    }
    item.key = key->string;
    snapshot.applied.push_back(std::move(item));
  }

  // The appended rows restore the joiner to its pre-crash certificate view;
  // the corpus snapshot then resolves its chain fingerprints against it. A
  // row that no longer parses means the snapshot is not ours — reject it.
  for (std::size_t i = 0; i < snapshot.appended_x509_rows.size(); ++i) {
    const auto record = zeek::parse_x509_row(snapshot.appended_x509_rows[i]);
    if (!record.has_value()) {
      return fail("snapshot appended_x509_rows[" + std::to_string(i) +
                  "] does not parse");
    }
    joiner.add(*record);
  }
  std::map<std::string, x509::Certificate> by_fingerprint;
  for (const auto& [fuid, cert] : joiner.certificates()) {
    by_fingerprint.emplace(cert.fingerprint(), cert);
  }

  const obs::json::Value* corpus_block = root->find("corpus");
  std::string corpus_error;
  if (corpus_block == nullptr ||
      !corpus.restore_snapshot(*corpus_block, by_fingerprint, &corpus_error)) {
    return fail("snapshot corpus malformed: " + corpus_error);
  }
  return snapshot;
}

std::string snapshot_path_for(const std::string& wal_path) {
  return wal_path + ".snapshot";
}

}  // namespace certchain::svc
