// The certchain.svc.wal v1 ingest write-ahead log and the
// certchain.svc.snapshot v1 compaction snapshot (DESIGN.md §13).
//
// Every ingest_append batch the serving layer accepts is committed here —
// raw TSV rows plus the client's idempotency key — *before* the in-memory
// fold runs, so a crash at any point between the wire ACK and the next
// startup can lose nothing a client was told succeeded. The file layout:
//
//   bytes 0..3   magic "CWAL"
//   byte  4      format version (kWalVersion)
//   bytes 5..7   reserved, must be zero
//   then records, each:
//     bytes 0..3   payload length, unsigned 32-bit big-endian
//     bytes 4..11  FNV-1a64 of the payload, big-endian
//     bytes 12..   payload: one JSON object
//                  {"seq":n,"key":"...","ssl_rows":[...],"x509_rows":[...]}
//
// following the certchain.stream.checkpoint v1 idiom from DESIGN.md §11:
// schema-versioned, checksummed, and replayed defensively. Replay accepts
// the longest prefix of intact records and reports everything after it as a
// torn tail — the expected end state of a kill -9 mid-write — which the
// recovery path truncates away before re-arming the log for appends. A
// record that fails its checksum mid-file also ends replay there: bytes
// after damage have no trustworthy framing.
//
// The snapshot is the WAL's compaction partner: a JSON document capturing
// the complete post-fold serving state (corpus snapshot, appended X509 rows,
// generation, applied idempotency keys, last absorbed WAL seq). Recovery is
// snapshot + WAL-tail replay; compaction writes a fresh snapshot and resets
// the WAL so replay cost stays bounded no matter how long the daemon lives.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/corpus.hpp"
#include "obs/json.hpp"

namespace certchain::svc {

inline constexpr std::string_view kWalSchemaName = "certchain.svc.wal";
inline constexpr std::uint8_t kWalVersion = 1;
inline constexpr std::string_view kWalMagic = "CWAL";
inline constexpr std::size_t kWalHeaderBytes = 8;
inline constexpr std::size_t kWalRecordHeaderBytes = 12;
/// Upper bound on one record's payload; a declared length beyond this is
/// damage, not an allocation request (same stance as the wire decoder).
inline constexpr std::size_t kMaxWalPayloadBytes = 64 * 1024 * 1024;

inline constexpr std::string_view kSvcSnapshotSchema = "certchain.svc.snapshot";
inline constexpr int kSvcSnapshotVersion = 1;

/// One committed ingest_append batch.
struct WalRecord {
  std::uint64_t seq = 0;            // strictly increasing, 1-based
  std::string idempotency_key;      // empty = none supplied
  std::vector<std::string> ssl_rows;
  std::vector<std::string> x509_rows;
};

/// What replaying a WAL file found.
struct WalReplay {
  std::vector<WalRecord> records;   // the intact prefix, in commit order
  std::uint64_t good_bytes = 0;     // file offset after the last intact record
  std::uint64_t torn_bytes = 0;     // bytes of torn/damaged tail dropped
  bool header_valid = false;        // magic + version checked out
};

/// Append-side handle. One writer at a time (the serving layer holds its
/// exclusive corpus lock across commits, so this needs no locking of its
/// own). Every append is flushed and fsynced before it returns — the fold
/// must never run ahead of the disk.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog() { close(); }

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Replays an existing WAL file. A missing file is a valid empty log
  /// (records empty, header_valid true), and so is a file shorter than the
  /// header whose bytes are a prefix of a valid header — the state a crash
  /// between open(O_CREAT) and the header fsync leaves behind; open()
  /// re-stamps it. Returns nullopt with `error` set only on real I/O
  /// failure or a foreign/unsupported header — damaged record bytes are
  /// never an error, they are the torn tail.
  static std::optional<WalReplay> replay(const std::string& path,
                                         std::string* error);

  /// Opens (creating if needed) the log for appending, truncating any torn
  /// tail found by a prior replay(). `next_seq` seeds the sequence counter
  /// (1 + the last durable seq, from replay/snapshot).
  bool open(const std::string& path, std::uint64_t good_bytes,
            std::uint64_t next_seq, std::string* error);

  /// Commits one record: encode, length+checksum frame, write, fsync.
  /// Assigns and returns the record's seq via `record.seq`. On failure the
  /// file is rolled back (ftruncate) to the last committed record so damage
  /// can never sit beneath a later acknowledged append; if the rollback
  /// itself fails the log is poisoned and every further append refuses
  /// until a restart recovers. Either way the failed record's seq is not
  /// consumed — a retry reuses it.
  bool append(WalRecord& record, std::string* error);

  /// A poisoned log holds unaccounted bytes it could not truncate away; it
  /// accepts no appends (fail closed) until recovery reopens it.
  bool poisoned() const { return poisoned_; }

  /// Test-only fault injection: the next append() writes only half its
  /// frame and then reports failure — the shape ENOSPC leaves — so tests
  /// can exercise the rollback path on a healthy disk. With
  /// `rollback_fails`, the rollback is skipped as if ftruncate failed,
  /// leaving the log poisoned.
  void inject_torn_append_for_test(bool rollback_fails = false) {
    injected_fault_ = rollback_fails ? InjectedFault::kTornWriteNoRollback
                                     : InjectedFault::kTornWrite;
  }

  /// Atomically replaces the log with a fresh, empty one (post-snapshot
  /// compaction). The seq counter keeps counting — seq is global to the
  /// serving state's lifetime, not to one file generation.
  bool reset(std::string* error);

  void close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t bytes_on_disk() const { return bytes_on_disk_; }

 private:
  enum class InjectedFault { kNone, kTornWrite, kTornWriteNoRollback };

  int fd_ = -1;
  std::string path_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t bytes_on_disk_ = 0;
  bool poisoned_ = false;
  InjectedFault injected_fault_ = InjectedFault::kNone;
};

/// Encodes one record's framed bytes (record header + JSON payload) —
/// exposed so tests can construct torn tails byte-precisely.
std::string encode_wal_record(const WalRecord& record);
/// The 8-byte file header.
std::string encode_wal_header();

// --- snapshot ---------------------------------------------------------------

/// One applied append remembered for idempotent replay of client retries.
struct AppliedAppend {
  std::string key;
  std::uint64_t wal_seq = 0;
  std::uint64_t generation = 0;
  std::uint64_t ssl_added = 0;
  std::uint64_t x509_added = 0;
  std::uint64_t ssl_malformed = 0;
  std::uint64_t x509_malformed = 0;
  std::uint64_t unique_chains = 0;
  std::uint64_t connections = 0;
};

/// The complete durable serving state at one generation.
struct SvcSnapshot {
  std::uint64_t generation = 0;
  std::uint64_t wal_seq = 0;        // last WAL seq folded into this snapshot
  std::vector<std::string> appended_x509_rows;  // since the base corpus load
  std::vector<AppliedAppend> applied;           // idempotency ledger
};

/// Serializes snapshot + corpus fold state into the schema-versioned JSON
/// document (the corpus block reuses CorpusIndex::write_snapshot, exactly as
/// stream checkpoints do).
std::string encode_svc_snapshot(const SvcSnapshot& snapshot,
                                const core::CorpusIndex& corpus);

/// Parses a snapshot document, feeds the appended X509 rows back into the
/// base-loaded joiner, and restores the corpus fold state by resolving chain
/// fingerprints against the joiner's certificate view (exactly how stream
/// checkpoints restore, DESIGN.md §11). Returns nullopt with `error` set on
/// schema/version mismatch or malformed content; the joiner and corpus are
/// left in an unspecified state on failure — recovery must start over.
std::optional<SvcSnapshot> decode_svc_snapshot(std::string_view text,
                                               zeek::LogJoiner& joiner,
                                               core::CorpusIndex& corpus,
                                               std::string* error);

/// The snapshot path derived from a WAL path.
std::string snapshot_path_for(const std::string& wal_path);

}  // namespace certchain::svc
