// DnId-memoized issuer classification (DESIGN.md §16).
//
// classify_issuer() is a handful of ordered-map probes per call; the analysis
// stages invoke it once per certificate per chain, and a campus corpus
// repeats the same few hundred issuers millions of times. IssuerClassifier
// memoizes the verdict per interned DnId — a vector indexed by the id — so
// every repeat is one array load. Certificates that never went through a
// pool (no valid issuer_id) fall back to the uncached string path, which
// keeps the classifier safe to use over mixed corpora.
//
// The memo mutates on lookup, so sharded stages use one instance per shard
// (the pool itself is read-only and shared).
#pragma once

#include <cstdint>
#include <vector>

#include "core/dn_pool.hpp"
#include "truststore/trust_store.hpp"
#include "x509/certificate.hpp"

namespace certchain::truststore {

class IssuerClassifier {
 public:
  IssuerClassifier(const TrustStoreSet& stores, const core::DnPool& pool)
      : stores_(&stores), pool_(&pool), memo_(pool.size(), kUnknown) {}

  /// Classification of the interned DN `id`, memoized. `id` must come from
  /// this classifier's pool; an id the pool has never minted (including
  /// kInvalidDnId) classifies as non-public-DB, matching what the string path
  /// returns for a name absent from every database.
  IssuerClass classify(core::DnId id) {
    if (id >= pool_->size()) return IssuerClass::kNonPublicDb;
    if (id >= memo_.size()) memo_.resize(pool_->size(), kUnknown);
    std::uint8_t& slot = memo_[id];
    if (slot == kUnknown) {
      slot = stores_->classify_issuer(pool_->canonical(id)) ==
                     IssuerClass::kPublicDb
                 ? kPublic
                 : kNonPublic;
    }
    return slot == kPublic ? IssuerClass::kPublicDb : IssuerClass::kNonPublicDb;
  }

  IssuerClass classify(core::Dn issuer) {
    return issuer.valid() ? classify(issuer.id())
                          : stores_->classify_issuer(issuer.view());
  }

  /// Classification of a certificate = classification of its issuer; uses
  /// the interned id when the certificate carries one.
  IssuerClass classify(const x509::Certificate& cert) {
    if (cert.issuer_id != core::kInvalidDnId) return classify(cert.issuer_id);
    return stores_->classify_certificate(cert);
  }

  const core::DnPool& pool() const { return *pool_; }

 private:
  static constexpr std::uint8_t kUnknown = 0;
  static constexpr std::uint8_t kPublic = 1;
  static constexpr std::uint8_t kNonPublic = 2;

  const TrustStoreSet* stores_;
  const core::DnPool* pool_;
  std::vector<std::uint8_t> memo_;
};

}  // namespace certchain::truststore
