#include "truststore/trust_store.hpp"

#include <stdexcept>

namespace certchain::truststore {

std::string_view root_program_name(RootProgram program) {
  switch (program) {
    case RootProgram::kMozillaNss: return "Mozilla NSS";
    case RootProgram::kApple: return "Apple";
    case RootProgram::kMicrosoft: return "Microsoft";
  }
  return "unknown";
}

std::string_view issuer_class_name(IssuerClass issuer_class) {
  switch (issuer_class) {
    case IssuerClass::kPublicDb: return "public-DB";
    case IssuerClass::kNonPublicDb: return "non-public-DB";
  }
  return "unknown";
}

TrustStore::TrustStore(RootProgram program) : program_(program) {}

void TrustStore::add(const x509::Certificate& cert) {
  const std::string fingerprint = cert.fingerprint();
  if (by_fingerprint_.contains(fingerprint)) return;  // idempotent
  const std::size_t index = certs_.size();
  certs_.push_back(cert);
  by_fingerprint_.emplace(fingerprint, index);
  by_subject_[cert.subject.canonical()].push_back(index);
}

bool TrustStore::contains_fingerprint(std::string_view fingerprint) const {
  return by_fingerprint_.find(fingerprint) != by_fingerprint_.end();
}

bool TrustStore::contains_subject(std::string_view canonical) const {
  return by_subject_.find(canonical) != by_subject_.end();
}

std::vector<const x509::Certificate*> TrustStore::find_by_subject(
    const x509::DistinguishedName& name) const {
  std::vector<const x509::Certificate*> out;
  const auto it = by_subject_.find(name.canonical());
  if (it == by_subject_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t index : it->second) out.push_back(&certs_[index]);
  return out;
}

void Ccadb::add(CcadbRecord record) {
  const std::size_t index = records_.size();
  const bool eligible = record.eligible();
  const std::string fingerprint = record.certificate.fingerprint();
  const std::string subject = record.certificate.subject.canonical();
  records_.push_back(std::move(record));
  if (eligible) {
    eligible_by_subject_[subject].push_back(index);
    eligible_by_fingerprint_.emplace(fingerprint, index);
  }
}

std::size_t Ccadb::eligible_count() const {
  std::size_t count = 0;
  for (const CcadbRecord& record : records_) {
    if (record.eligible()) ++count;
  }
  return count;
}

bool Ccadb::contains_subject(std::string_view canonical) const {
  return eligible_by_subject_.find(canonical) != eligible_by_subject_.end();
}

bool Ccadb::contains_fingerprint(std::string_view fingerprint) const {
  return eligible_by_fingerprint_.find(fingerprint) !=
         eligible_by_fingerprint_.end();
}

std::vector<const x509::Certificate*> Ccadb::find_by_subject(
    const x509::DistinguishedName& name) const {
  std::vector<const x509::Certificate*> out;
  const auto it = eligible_by_subject_.find(name.canonical());
  if (it == eligible_by_subject_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t index : it->second) {
    out.push_back(&records_[index].certificate);
  }
  return out;
}

TrustStoreSet::TrustStoreSet() {
  stores_.emplace_back(RootProgram::kMozillaNss);
  stores_.emplace_back(RootProgram::kApple);
  stores_.emplace_back(RootProgram::kMicrosoft);
}

TrustStore& TrustStoreSet::store(RootProgram program) {
  for (TrustStore& store : stores_) {
    if (store.program() == program) return store;
  }
  throw std::logic_error("TrustStoreSet: unknown program");
}

const TrustStore& TrustStoreSet::store(RootProgram program) const {
  for (const TrustStore& store : stores_) {
    if (store.program() == program) return store;
  }
  throw std::logic_error("TrustStoreSet: unknown program");
}

void TrustStoreSet::add_to_all_programs(const x509::Certificate& root) {
  for (TrustStore& store : stores_) store.add(root);
}

IssuerClass TrustStoreSet::classify_issuer(
    std::string_view issuer_canonical) const {
  for (const TrustStore& store : stores_) {
    if (store.contains_subject(issuer_canonical)) return IssuerClass::kPublicDb;
  }
  if (ccadb_.contains_subject(issuer_canonical)) return IssuerClass::kPublicDb;
  return IssuerClass::kNonPublicDb;
}

bool TrustStoreSet::is_trust_anchor(const x509::Certificate& cert) const {
  const std::string fingerprint = cert.fingerprint();
  for (const TrustStore& store : stores_) {
    if (store.contains_fingerprint(fingerprint)) return true;
  }
  return false;
}

bool TrustStoreSet::is_known_subject(const x509::DistinguishedName& name) const {
  for (const TrustStore& store : stores_) {
    if (store.contains_subject(name)) return true;
  }
  return ccadb_.contains_subject(name);
}

std::vector<const x509::Certificate*> TrustStoreSet::find_issuer_candidates(
    const x509::DistinguishedName& issuer_name) const {
  std::vector<const x509::Certificate*> out;
  for (const TrustStore& store : stores_) {
    for (const x509::Certificate* cert : store.find_by_subject(issuer_name)) {
      out.push_back(cert);
    }
  }
  for (const x509::Certificate* cert : ccadb_.find_by_subject(issuer_name)) {
    out.push_back(cert);
  }
  return out;
}

}  // namespace certchain::truststore
