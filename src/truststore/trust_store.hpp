// Root stores and the CCADB.
//
// The paper classifies a certificate as "issued by a public-DB issuer" iff
// its issuer is listed in at least one major Web PKI root store (Mozilla NSS,
// Apple, Microsoft) or in the CCADB, and as non-public-DB otherwise (§3.2.1).
// This module models those databases:
//
//   - TrustStore: one root program's store — a set of trusted (root and, for
//     classification purposes, disclosed intermediate) certificates indexed
//     by canonical subject DN and by fingerprint;
//   - Ccadb: the Common CA Database — intermediate records that are included
//     only if they chain to a participating program's root AND are either
//     technically constrained or publicly audited (mirroring the paper's
//     description of CCADB inclusion rules);
//   - TrustStoreSet: the union view used for issuer classification.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dn_pool.hpp"
#include "x509/certificate.hpp"

namespace certchain::truststore {

/// The participating root programs modeled by the study.
enum class RootProgram : std::uint8_t { kMozillaNss, kApple, kMicrosoft };

std::string_view root_program_name(RootProgram program);

/// Issuer classification outcome (§3.2.1).
enum class IssuerClass : std::uint8_t { kPublicDb, kNonPublicDb };

std::string_view issuer_class_name(IssuerClass issuer_class);

/// One root program's store.
class TrustStore {
 public:
  explicit TrustStore(RootProgram program);

  RootProgram program() const { return program_; }

  /// Adds a trusted certificate (typically a self-signed root).
  void add(const x509::Certificate& cert);

  std::size_t size() const { return by_fingerprint_.size(); }

  /// True if a certificate with this exact fingerprint is in the store.
  bool contains_fingerprint(std::string_view fingerprint) const;

  /// True if any stored certificate's subject matches `name`.
  bool contains_subject(const x509::DistinguishedName& name) const {
    return contains_subject(std::string_view(name.canonical()));
  }
  /// Same lookup keyed directly by a canonical DN form (no DN required).
  bool contains_subject(std::string_view canonical) const;

  /// All stored certificates whose subject matches `name` (path building may
  /// need several, e.g. re-keyed roots with the same DN).
  std::vector<const x509::Certificate*> find_by_subject(
      const x509::DistinguishedName& name) const;

  /// All certificates in the store (stable order).
  const std::vector<x509::Certificate>& certificates() const { return certs_; }

 private:
  RootProgram program_;
  std::vector<x509::Certificate> certs_;
  // Transparent comparators: lookups take string_views (interned canonical
  // forms, fingerprint views) without materializing key strings.
  std::map<std::string, std::vector<std::size_t>, std::less<>> by_subject_;
  std::map<std::string, std::size_t, std::less<>> by_fingerprint_;
};

/// One CCADB record: an intermediate (or root) disclosed by a program member.
struct CcadbRecord {
  x509::Certificate certificate;
  bool chains_to_participating_root = false;
  bool technically_constrained = false;
  bool publicly_audited = false;

  /// CCADB inclusion rule per the paper: must chain to a participating
  /// program's trusted root and be constrained or audited.
  bool eligible() const {
    return chains_to_participating_root &&
           (technically_constrained || publicly_audited);
  }
};

/// The Common CA Database. Records are added unconditionally; only eligible
/// records count for issuer classification.
class Ccadb {
 public:
  void add(CcadbRecord record);

  std::size_t record_count() const { return records_.size(); }
  std::size_t eligible_count() const;

  bool contains_subject(const x509::DistinguishedName& name) const {
    return contains_subject(std::string_view(name.canonical()));
  }
  bool contains_subject(std::string_view canonical) const;
  bool contains_fingerprint(std::string_view fingerprint) const;

  std::vector<const x509::Certificate*> find_by_subject(
      const x509::DistinguishedName& name) const;

  const std::vector<CcadbRecord>& records() const { return records_; }

 private:
  std::vector<CcadbRecord> records_;
  std::map<std::string, std::vector<std::size_t>, std::less<>> eligible_by_subject_;
  std::map<std::string, std::size_t, std::less<>> eligible_by_fingerprint_;
};

/// The union view over every public database the study consults.
class TrustStoreSet {
 public:
  TrustStoreSet();

  TrustStore& store(RootProgram program);
  const TrustStore& store(RootProgram program) const;
  Ccadb& ccadb() { return ccadb_; }
  const Ccadb& ccadb() const { return ccadb_; }

  /// Adds a root to every program store (common for the big public CAs).
  void add_to_all_programs(const x509::Certificate& root);

  /// §3.2.1: public-DB iff the issuer name appears in >= 1 root store or in
  /// an eligible CCADB record. The canonical-form overload is the primitive;
  /// the DN and pool-handle overloads delegate to it.
  IssuerClass classify_issuer(std::string_view issuer_canonical) const;
  IssuerClass classify_issuer(const x509::DistinguishedName& issuer_name) const {
    return classify_issuer(std::string_view(issuer_name.canonical()));
  }
  IssuerClass classify_issuer(core::Dn issuer) const {
    return classify_issuer(issuer.view());
  }

  /// Classification of a certificate = classification of its issuer.
  IssuerClass classify_certificate(const x509::Certificate& cert) const {
    return classify_issuer(std::string_view(cert.issuer.canonical()));
  }

  /// True if this exact certificate is a trust anchor in some program store.
  bool is_trust_anchor(const x509::Certificate& cert) const;

  /// True if any store/CCADB lists a certificate with this subject.
  bool is_known_subject(const x509::DistinguishedName& name) const;

  /// Candidate issuer certificates for path building across all databases.
  std::vector<const x509::Certificate*> find_issuer_candidates(
      const x509::DistinguishedName& issuer_name) const;

 private:
  std::vector<TrustStore> stores_;
  Ccadb ccadb_;
};

}  // namespace certchain::truststore
