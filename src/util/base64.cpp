#include "util/base64.hpp"

#include <array>
#include <cctype>

namespace certchain::util {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int, 256> build_reverse_table() {
  std::array<int, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = i;
  }
  return table;
}

const std::array<int, 256>& reverse_table() {
  static const std::array<int, 256> table = build_reverse_table();
  return table;
}

}  // namespace

std::string base64_encode(std::string_view data) {
  std::string out;
  out.reserve(((data.size() + 2) / 3) * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t triple = (static_cast<unsigned char>(data[i]) << 16) |
                                 (static_cast<unsigned char>(data[i + 1]) << 8) |
                                 static_cast<unsigned char>(data[i + 2]);
    out.push_back(kAlphabet[(triple >> 18) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3F]);
    out.push_back(kAlphabet[triple & 0x3F]);
    i += 3;
  }
  const std::size_t remaining = data.size() - i;
  if (remaining == 1) {
    const std::uint32_t triple = static_cast<unsigned char>(data[i]) << 16;
    out.push_back(kAlphabet[(triple >> 18) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3F]);
    out.append("==");
  } else if (remaining == 2) {
    const std::uint32_t triple = (static_cast<unsigned char>(data[i]) << 16) |
                                 (static_cast<unsigned char>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(triple >> 18) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3F]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3F]);
    out.push_back('=');
  }
  return out;
}

std::optional<std::string> base64_decode(std::string_view encoded) {
  std::string out;
  out.reserve((encoded.size() / 4) * 3);
  std::uint32_t buffer = 0;
  int bits = 0;
  int padding = 0;
  for (const char c : encoded) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++padding;
      continue;
    }
    if (padding > 0) return std::nullopt;  // data after padding
    const int value = reverse_table()[static_cast<unsigned char>(c)];
    if (value < 0) return std::nullopt;
    buffer = (buffer << 6) | static_cast<std::uint32_t>(value);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<char>((buffer >> bits) & 0xFF));
    }
  }
  if (padding > 2) return std::nullopt;
  // Leftover bits must be zero-padding only and consistent with '=' count.
  if (bits >= 6) return std::nullopt;
  if ((buffer & ((1u << bits) - 1u)) != 0) return std::nullopt;
  if (padding != 0 && ((bits + padding * 6) % 8) != 0) return std::nullopt;
  return out;
}

}  // namespace certchain::util
