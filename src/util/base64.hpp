// Standard base64 (RFC 4648) encode/decode, used by the PEM-style
// serialization in src/x509 and by the scanner's -showcerts output.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace certchain::util {

/// Encodes bytes to base64 with '=' padding, no line wrapping.
std::string base64_encode(std::string_view data);

/// Decodes base64; whitespace is skipped. Returns nullopt for any other
/// invalid character, bad padding, or truncated input.
std::optional<std::string> base64_decode(std::string_view encoded);

}  // namespace certchain::util
