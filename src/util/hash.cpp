#include "util/hash.hpp"

#include <cstddef>

namespace certchain::util {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  return fnv1a64_continue(0xCBF29CE484222325ULL, data);
}

std::uint64_t fnv1a64_continue(std::uint64_t state, std::string_view data) {
  std::uint64_t hash = state;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string Digest256::to_hex() const {
  std::string out;
  out.reserve(64);
  for (const std::uint64_t word : words) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kHexDigits[(word >> shift) & 0xF]);
    }
  }
  return out;
}

bool Digest256::from_hex(std::string_view hex, Digest256& out) {
  if (hex.size() != 64) return false;
  Digest256 parsed;
  for (std::size_t w = 0; w < 4; ++w) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < 16; ++i) {
      const int v = hex_value(hex[w * 16 + i]);
      if (v < 0) return false;
      word = (word << 4) | static_cast<std::uint64_t>(v);
    }
    parsed.words[w] = word;
  }
  out = parsed;
  return true;
}

Digest256 digest256(std::string_view data) {
  // Four lanes of FNV-1a with distinct offsets, finalized with avalanche
  // mixing and cross-lane diffusion. Fully deterministic; not secure.
  std::uint64_t lanes[4] = {0xCBF29CE484222325ULL, 0x84222325CBF29CE4ULL,
                            0x9E3779B97F4A7C15ULL, 0xC2B2AE3D27D4EB4FULL};
  std::size_t index = 0;
  for (const char c : data) {
    const auto byte = static_cast<unsigned char>(c);
    std::uint64_t& lane = lanes[index & 3];
    lane ^= byte;
    lane *= 0x100000001B3ULL;
    lane ^= (index << 1);
    ++index;
  }
  // Length padding + cross-lane diffusion. Every output word must depend on
  // every lane: fold an all-lane mix into each lane, twice, so inputs that
  // differ only in bytes assigned to one lane still change all four words.
  for (auto& lane : lanes) lane ^= static_cast<std::uint64_t>(data.size()) * 0x9E3779B97F4A7C15ULL;
  Digest256 digest;
  for (std::size_t round = 0; round < 2; ++round) {
    const std::uint64_t all =
        mix64(lanes[0] ^ (lanes[1] << 17 | lanes[1] >> 47) ^
              (lanes[2] << 31 | lanes[2] >> 33) ^ (lanes[3] << 47 | lanes[3] >> 17));
    for (std::size_t i = 0; i < 4; ++i) {
      lanes[i] = mix64(lanes[i] + all + i * 0xD6E8FEB86659FD93ULL + round);
    }
  }
  for (std::size_t i = 0; i < 4; ++i) digest.words[i] = lanes[i];
  return digest;
}

std::string digest256_hex(std::string_view data) { return digest256(data).to_hex(); }

namespace {

// Zeek ids use this alphabet after the leading letter.
constexpr char kIdAlphabet[] = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";

std::string render_id(char prefix, std::uint64_t hi, std::uint64_t lo) {
  std::string out;
  out.reserve(18);
  out.push_back(prefix);
  std::uint64_t bits[2] = {hi, lo};
  for (int i = 0; i < 17; ++i) {
    std::uint64_t& word = bits[i & 1];
    out.push_back(kIdAlphabet[word % 62]);
    word /= 62;
    word ^= bits[(i + 1) & 1] >> 7;
  }
  return out;
}

}  // namespace

std::string zeek_style_fuid(std::string_view content) {
  const Digest256 digest = digest256(content);
  return render_id('F', digest.words[0], digest.words[1]);
}

std::string zeek_style_conn_uid(std::uint64_t counter, std::uint64_t salt) {
  return render_id('C', mix64(counter * 0x9E3779B97F4A7C15ULL + salt),
                   mix64(salt ^ (counter << 17)));
}

}  // namespace certchain::util
