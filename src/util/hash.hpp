// Hashing and digest utilities.
//
// The repository needs stable content digests in two roles:
//   1. identifiers — Zeek-style file ids (fuids) and certificate fingerprints
//      that let SSL.log rows reference X509.log rows;
//   2. the simulated signature scheme in src/crypto, which derives
//      "signatures" from digests instead of real public-key math.
// Digest256 below is a fixed, fully specified 256-bit mixing function. It is
// NOT cryptographically secure and must never be used outside simulation.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace certchain::util {

/// FNV-1a 64-bit hash.
std::uint64_t fnv1a64(std::string_view data);

/// Incremental FNV-1a: folds `data` into a running state. Seeding with
/// fnv1a64("") (the FNV offset basis is what an empty fold returns) and
/// chaining chunks yields exactly fnv1a64 of the concatenation — the
/// streaming engine digests multi-GB sources chunk by chunk this way.
std::uint64_t fnv1a64_continue(std::uint64_t state, std::string_view data);

/// A 256-bit digest value.
struct Digest256 {
  std::array<std::uint64_t, 4> words{};

  bool operator==(const Digest256&) const = default;
  auto operator<=>(const Digest256&) const = default;

  /// Lowercase hex rendering (64 chars).
  std::string to_hex() const;

  /// Parses 64 hex chars; returns false on malformed input.
  static bool from_hex(std::string_view hex, Digest256& out);
};

/// Computes the 256-bit digest of a byte string. Deterministic across
/// platforms and process runs.
Digest256 digest256(std::string_view data);

/// Convenience: digest rendered as hex.
std::string digest256_hex(std::string_view data);

/// Zeek-style file id ("F" + 17 base-36-ish chars) derived from content.
std::string zeek_style_fuid(std::string_view content);

/// Zeek-style connection uid ("C" + 17 chars) derived from a counter + salt.
std::string zeek_style_conn_uid(std::uint64_t counter, std::uint64_t salt);

}  // namespace certchain::util
