#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace certchain::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t salt) {
  // Mix the salt with fresh output so forks with different salts diverge and
  // the parent stream is perturbed only by the two next_u64() draws.
  std::uint64_t mixed = next_u64() ^ (salt * 0x9E3779B97F4A7C15ULL);
  mixed ^= rotl(next_u64(), 23);
  return Rng(mixed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // avoid log(0)
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::exponential(double lambda) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / lambda;
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) return 0;
  // Inverse-CDF over the (small) support; n in this codebase is at most a few
  // thousand, so the O(n) normalization is computed lazily per call only for
  // tiny n; for larger n we use rejection sampling against a bounding curve.
  if (n <= 64) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) total += 1.0 / std::pow(double(r + 1), s);
    double target = uniform() * total;
    for (std::size_t r = 0; r < n; ++r) {
      target -= 1.0 / std::pow(double(r + 1), s);
      if (target <= 0.0) return r;
    }
    return n - 1;
  }
  // Rejection sampling (Devroye) for larger supports; requires s > 1, so
  // clamp (callers wanting flatter tails should use pick_weighted).
  const double exponent = std::max(s, 1.0001);
  const double b = std::pow(2.0, exponent - 1.0);
  for (;;) {
    const double u = uniform();
    const double v = uniform();
    const double x = std::floor(std::pow(u, -1.0 / (exponent - 1.0)));
    const double t = std::pow(1.0 + 1.0 / x, exponent - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      const auto rank = static_cast<std::size_t>(x) - 1;
      if (rank < n) return rank;
    }
  }
}

std::size_t Rng::pick_weighted(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) {
    return weights.empty() ? 0 : static_cast<std::size_t>(next_below(weights.size()));
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::pick_weighted(std::initializer_list<double> weights) {
  return pick_weighted(std::span<const double>(weights.begin(), weights.size()));
}

std::string Rng::alpha_string(std::size_t length) {
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + next_below(26)));
  }
  return out;
}

std::string Rng::alnum_string(std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[next_below(36)]);
  }
  return out;
}

std::string Rng::hex_string(std::size_t length) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kHex[next_below(16)]);
  }
  return out;
}

std::uint64_t stable_salt(std::string_view text) {
  // FNV-1a 64.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace certchain::util
