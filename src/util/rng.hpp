// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (the traffic simulator, the
// synthetic dataset generator, the workload sweeps) draws from Rng so that a
// given seed always reproduces the exact same corpus, logs, and experiment
// tables. We deliberately avoid std::mt19937 + std::uniform_int_distribution
// because the standard distributions are not guaranteed to produce identical
// streams across standard library implementations; the generator and the
// distribution mappings below are fully specified by this file.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace certchain::util {

/// splitmix64 step; used for seeding and as a standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// A small, fast, deterministic PRNG (xoshiro256** core, splitmix64-seeded).
///
/// Not cryptographically secure — it only drives simulation workloads.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent child generator. Streams of a child never
  /// correlate with the parent continuing from the same point, which lets a
  /// simulator hand stable per-entity generators out of one master seed.
  Rng fork(std::uint64_t salt);

  /// Uniform 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound == 0 returns 0. Uses Lemire rejection so
  /// the mapping is unbiased and implementation-independent.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (deterministic branch ordering).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate lambda (> 0).
  double exponential(double lambda);

  /// Zipf-like rank sampler over [0, n): probability of rank r proportional
  /// to 1/(r+1)^s. Used for heavy-tailed client/server popularity.
  std::size_t zipf(std::size_t n, double s);

  /// Picks an index according to the given non-negative weights.
  /// All-zero weights degrade to uniform choice.
  std::size_t pick_weighted(std::span<const double> weights);
  std::size_t pick_weighted(std::initializer_list<double> weights);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Random lowercase ASCII string of the given length (a-z only).
  std::string alpha_string(std::size_t length);

  /// Random lowercase alphanumeric string of the given length.
  std::string alnum_string(std::size_t length);

  /// Random hex string of the given length.
  std::string hex_string(std::size_t length);

 private:
  std::uint64_t s_[4];
  // Box-Muller spare value cache.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// Stable 64-bit hash of a string, for deriving per-entity fork salts
/// (e.g. rng.fork(stable_salt(server_name))).
std::uint64_t stable_salt(std::string_view text);

}  // namespace certchain::util
