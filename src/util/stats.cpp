#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace certchain::util {

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())) - 1.0);
  return samples_[std::min(rank, samples_.size() - 1)];
}

double EmpiricalCdf::min() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  return samples_.back();
}

double EmpiricalCdf::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

std::vector<double> EmpiricalCdf::evaluate(const std::vector<double>& points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const double p : points) out.push_back(at(p));
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
  counts_.assign(bins, 0);
}

void Histogram::add(double value, std::uint64_t count) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto index = static_cast<std::int64_t>(std::floor((value - lo_) / width));
  if (index < 0) index = 0;
  if (index >= static_cast<std::int64_t>(counts_.size())) {
    index = static_cast<std::int64_t>(counts_.size()) - 1;
  }
  counts_[static_cast<std::size_t>(index)] += count;
}

std::uint64_t Histogram::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts_) sum += c;
  return sum;
}

double Histogram::bin_center(std::size_t index) const {
  const auto [lo, hi] = bin_range(index);
  return (lo + hi) / 2.0;
}

std::pair<double, double> Histogram::bin_range(std::size_t index) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return {lo_ + width * static_cast<double>(index),
          lo_ + width * static_cast<double>(index + 1)};
}

void Summary::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

}  // namespace certchain::util
