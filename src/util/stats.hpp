// Descriptive-statistics helpers used by the analysis pipeline and the bench
// harnesses: counters, histograms, and empirical CDFs (the paper reports
// chain-length CDFs in Figure 1 and mismatch-ratio histograms in Figure 6).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace certchain::util {

/// Ordered counter over keys of type K. Ordered so experiment output is
/// deterministic without extra sorting at the call sites.
template <typename K>
class Counter {
 public:
  void add(const K& key, std::uint64_t count = 1) { counts_[key] += count; }

  /// Adds every entry of another counter (sharded-merge support).
  void merge_from(const Counter& other) {
    for (const auto& [key, count] : other.counts_) counts_[key] += count;
  }

  std::uint64_t count(const K& key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [key, count] : counts_) sum += count;
    return sum;
  }

  std::size_t distinct() const { return counts_.size(); }
  bool empty() const { return counts_.empty(); }

  const std::map<K, std::uint64_t>& items() const { return counts_; }

  /// Entries sorted by descending count (ties broken by key order).
  std::vector<std::pair<K, std::uint64_t>> by_count_desc() const {
    std::vector<std::pair<K, std::uint64_t>> entries(counts_.begin(), counts_.end());
    std::stable_sort(entries.begin(), entries.end(),
                     [](const auto& a, const auto& b) { return a.second > b.second; });
    return entries;
  }

 private:
  std::map<K, std::uint64_t> counts_;
};

/// Empirical CDF over double samples.
class EmpiricalCdf {
 public:
  void add(double sample) { samples_.push_back(sample); sorted_ = false; }
  void add_count(double sample, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) samples_.push_back(sample);
    sorted_ = false;
  }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// P(X <= x). 0 for an empty sample set.
  double at(double x) const;

  /// Inverse CDF: smallest sample s with P(X <= s) >= q, q in [0,1].
  double quantile(double q) const;

  double min() const;
  double max() const;
  double mean() const;

  /// Evaluates the CDF at each point, in order.
  std::vector<double> evaluate(const std::vector<double>& points) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bin histogram over [lo, hi] with `bins` equal-width bins. Values
/// outside the range clamp into the first/last bin (the paper's Figure 6 has
/// ratios bounded in (0, 1]).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, std::uint64_t count = 1);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t index) const { return counts_.at(index); }
  std::uint64_t total() const;

  /// Center of bin `index`.
  double bin_center(std::size_t index) const;
  /// Inclusive-exclusive bin bounds.
  std::pair<double, double> bin_range(std::size_t index) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
};

/// Basic running summary (count / mean / min / max / variance).
class Summary {
 public:
  void add(double value);
  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double variance() const;
  double stddev() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace certchain::util
