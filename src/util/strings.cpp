#include "util/strings.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace certchain::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  for (auto& part : split(text, delimiter)) {
    if (!part.empty()) parts.push_back(std::move(part));
  }
  return parts;
}

std::vector<std::string_view> split_views(std::string_view text, char delimiter) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool split_exact(std::string_view text, char delimiter, std::string_view* out,
                 std::size_t count) {
  std::size_t field = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) break;
    if (field >= count) return false;
    out[field++] = text.substr(start, pos - start);
    start = pos + 1;
  }
  if (field + 1 != count) return false;
  out[field] = text.substr(start);
  return true;
}

std::string join(const std::vector<std::string>& parts, std::string_view delimiter) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(delimiter);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string percent(double numerator, double denominator, int decimals) {
  if (denominator == 0.0) return format_double(0.0, decimals);
  return format_double(100.0 * numerator / denominator, decimals);
}

}  // namespace certchain::util
