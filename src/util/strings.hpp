// Small string helpers shared across modules. Nothing here allocates unless
// the return type is std::string/std::vector.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace certchain::util {

/// Splits on a single-character delimiter. Adjacent delimiters yield empty
/// fields; an empty input yields one empty field.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Splits but drops empty fields.
std::vector<std::string> split_nonempty(std::string_view text, char delimiter);

/// Splits into views over `text` — zero copies; same field semantics as
/// split(). The views are only valid while `text`'s backing storage lives.
std::vector<std::string_view> split_views(std::string_view text, char delimiter);

/// Scans `text` into exactly `count` delimiter-separated fields written to
/// `out[0..count)`. Returns false (leaving `out` unspecified) when the field
/// count differs. The allocation-free row scanner for fixed-layout TSV.
bool split_exact(std::string_view text, char delimiter, std::string_view* out,
                 std::size_t count);

/// Joins with a delimiter string.
std::string join(const std::vector<std::string>& parts, std::string_view delimiter);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// True if `text` contains `needle`.
bool contains(std::string_view text, std::string_view needle);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from, std::string_view to);

/// Formats a double with the given number of decimal places ("%.*f").
std::string format_double(double value, int decimals);

/// Formats counts with thousands separators: 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t value);

/// Formats a ratio as a percentage string with two decimals ("97.21").
std::string percent(double numerator, double denominator, int decimals = 2);

}  // namespace certchain::util
