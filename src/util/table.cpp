#include "util/table.hpp"

#include <stdexcept>

namespace certchain::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: need >= 1 column");
  alignments_.assign(headers_.size(), Align::kRight);
  alignments_[0] = Align::kLeft;
}

void TextTable::set_alignments(std::vector<Align> alignments) {
  if (alignments.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: alignment arity mismatch");
  }
  alignments_ = std::move(alignments);
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto pad = [&](const std::string& text, std::size_t width, Align align) {
    std::string out;
    const std::size_t fill = width > text.size() ? width - text.size() : 0;
    if (align == Align::kRight) out.append(fill, ' ');
    out.append(text);
    if (align == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out.append("  ");
      out.append(pad(cells[c], widths[c], alignments_[c]));
    }
    // Trim trailing spaces from left-aligned final columns.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };

  const auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      if (c != 0) out.append("  ");
      out.append(widths[c], '-');
    }
    out.push_back('\n');
  };

  emit_row(headers_);
  emit_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_rule();
    } else {
      emit_row(row.cells);
    }
  }
  return out;
}

std::string render_banner(const std::string& title) {
  std::string out;
  out.append("== ").append(title).append(" ==\n");
  return out;
}

}  // namespace certchain::util
