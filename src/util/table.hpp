// Plain-text table rendering for the bench harnesses. Every reproduced paper
// table/figure is printed through TextTable so the output format is uniform
// and diffable across runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace certchain::util {

/// Column alignment.
enum class Align { kLeft, kRight };

/// A simple aligned-column text table.
///
///   TextTable t({"Port", "%"});
///   t.add_row({"443", "97.21"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Sets per-column alignment; default is left for the first column and
  /// right for the rest (typical "label, numbers..." layout).
  void set_alignments(std::vector<Align> alignments);

  /// Adds a data row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator row.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   Port     %
  ///   -----  -----
  ///   443    97.21
  std::string render() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

/// Prints a titled section banner around a table (used by bench binaries).
std::string render_banner(const std::string& title);

}  // namespace certchain::util
