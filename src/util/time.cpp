#include "util/time.hpp"

#include <cstdio>

namespace certchain::util {

namespace {

// Howard Hinnant's days_from_civil: days since 1970-01-01 for a civil date.
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const int era_base = (y >= 0 ? y : y - 399);
  const std::int64_t era = era_base / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
                       static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

// Inverse: civil date from days since epoch.
void civil_from_days(std::int64_t z, int& y, int& m, int& d) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t year = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  y = static_cast<int>(year + (m <= 2));
}

}  // namespace

SimTime make_time(int year, int month, int day, int hour, int minute, int second) {
  return days_from_civil(year, month, day) * kSecondsPerDay +
         hour * kSecondsPerHour + minute * kSecondsPerMinute + second;
}

CivilTime to_civil(SimTime t) {
  std::int64_t days = t / kSecondsPerDay;
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilTime civil;
  civil_from_days(days, civil.year, civil.month, civil.day);
  civil.hour = static_cast<int>(rem / kSecondsPerHour);
  civil.minute = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  civil.second = static_cast<int>(rem % kSecondsPerMinute);
  return civil;
}

std::string format_iso8601(SimTime t) {
  const CivilTime c = to_civil(t);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02dT%02d:%02d:%02dZ", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buffer;
}

std::string format_date(SimTime t) {
  const CivilTime c = to_civil(t);
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buffer;
}

namespace study {

TimeRange collection_window() {
  return {make_time(2020, 9, 1), make_time(2021, 9, 1)};
}

TimeRange revisit_window() {
  return {make_time(2024, 11, 1), make_time(2024, 12, 1)};
}

}  // namespace study

}  // namespace certchain::util
