// Simulated time.
//
// All timestamps in the corpus are plain UTC seconds since the Unix epoch
// (SimTime). The paper's collection window (2020-09-01 .. 2021-08-31) and the
// revisit epoch (November 2024) are expressed as constants here so every
// module agrees on the study timeline.
#pragma once

#include <cstdint>
#include <string>

namespace certchain::util {

/// UTC seconds since the Unix epoch.
using SimTime = std::int64_t;

inline constexpr SimTime kSecondsPerMinute = 60;
inline constexpr SimTime kSecondsPerHour = 3600;
inline constexpr SimTime kSecondsPerDay = 86400;

/// Converts a civil UTC date/time to SimTime. Months are 1-12, days 1-31.
/// (days_from_civil algorithm; valid for all dates used by the study.)
SimTime make_time(int year, int month, int day, int hour = 0, int minute = 0,
                  int second = 0);

/// Renders "YYYY-MM-DDTHH:MM:SSZ".
std::string format_iso8601(SimTime t);

/// Renders "YYYY-MM-DD".
std::string format_date(SimTime t);

/// Breaks a SimTime back into civil fields.
struct CivilTime {
  int year = 1970;
  int month = 1;
  int day = 1;
  int hour = 0;
  int minute = 0;
  int second = 0;
};
CivilTime to_civil(SimTime t);

/// A half-open interval [begin, end). Used for certificate validity windows
/// and the data-collection window.
struct TimeRange {
  SimTime begin = 0;
  SimTime end = 0;

  bool contains(SimTime t) const { return t >= begin && t < end; }
  bool overlaps(const TimeRange& other) const {
    return begin < other.end && other.begin < end;
  }
  SimTime duration() const { return end - begin; }
  bool operator==(const TimeRange&) const = default;
};

/// Paper study timeline constants.
namespace study {
/// Passive campus collection: 2020-09-01 .. 2021-08-31 (12 months).
TimeRange collection_window();
/// Retrospective active scan epoch: November 2024.
TimeRange revisit_window();
}  // namespace study

}  // namespace certchain::util
