#include "validation/client_validators.hpp"

#include <functional>
#include <set>

namespace certchain::validation {

std::string_view client_verdict_name(ClientVerdict verdict) {
  switch (verdict) {
    case ClientVerdict::kAccepted: return "accepted";
    case ClientVerdict::kNoTrustAnchor: return "no-trust-anchor";
    case ClientVerdict::kBrokenOrder: return "broken-order";
    case ClientVerdict::kExpired: return "expired";
    case ClientVerdict::kBadSignature: return "bad-signature";
    case ClientVerdict::kRevoked: return "revoked";
    case ClientVerdict::kRevocationUnknown: return "revocation-unknown";
    case ClientVerdict::kEmptyChain: return "empty-chain";
  }
  return "unknown";
}

bool ChromeLikeValidator::link_ok(const x509::Certificate& lower,
                                  const x509::Certificate& upper, util::SimTime now,
                                  std::string& detail) const {
  if (options_.check_validity && !upper.valid_at(now)) {
    detail = "issuer certificate outside validity window";
    return false;
  }
  // RFC 5280 name constraints: every dNSName below the constrained CA must
  // fall inside its permitted subtrees and outside its excluded ones.
  if (upper.name_constraints.present) {
    for (const std::string& san : lower.subject_alt_names) {
      if (!upper.name_constraints.allows(san)) {
        detail = "name \"" + san + "\" violates the issuer's name constraints";
        return false;
      }
    }
  }
  if (options_.check_signatures) {
    const auto status = crypto::verify(upper.public_key, lower.tbs_bytes(),
                                       lower.signature, /*accept_all=*/true);
    if (status != crypto::VerifyStatus::kOk) {
      detail = "signature verification failed against candidate issuer";
      return false;
    }
  }
  return true;
}

namespace {

/// Ranks failure verdicts for reporting: the most informative one wins.
int failure_rank(ClientVerdict verdict) {
  switch (verdict) {
    case ClientVerdict::kExpired: return 3;
    case ClientVerdict::kBadSignature: return 2;
    case ClientVerdict::kBrokenOrder: return 1;
    default: return 0;
  }
}

}  // namespace

ClientValidationResult ChromeLikeValidator::validate(
    const chain::CertificateChain& chain, util::SimTime now) const {
  ClientValidationResult result;
  if (chain.empty()) return result;

  const x509::Certificate& leaf = chain.first();
  if (options_.check_validity && !leaf.valid_at(now)) {
    result.verdict = ClientVerdict::kExpired;
    result.detail = "leaf certificate outside validity window";
    return result;
  }

  // Depth-first path building: the presented list is an unordered candidate
  // pool, augmented by every database the client maintains.
  ClientVerdict best_failure = ClientVerdict::kNoTrustAnchor;
  std::string best_detail = "no path to a trusted root";
  std::vector<x509::Certificate> path;
  std::set<std::string> on_path;

  const auto record_failure = [&](ClientVerdict verdict, const std::string& detail) {
    if (failure_rank(verdict) > failure_rank(best_failure)) {
      best_failure = verdict;
      best_detail = detail;
    }
  };

  // Recursive lambda via explicit stack-friendly helper.
  const std::function<bool(const x509::Certificate&)> build =
      [&](const x509::Certificate& current) -> bool {
    if (stores_->is_trust_anchor(current)) return true;
    if (path.size() >= options_.max_depth) return false;

    // Self-issued but untrusted top: no further progress possible on this
    // branch unless another candidate shares the subject.
    std::vector<const x509::Certificate*> candidates;
    for (const x509::Certificate& presented : chain) {
      if (presented.subject.matches(current.issuer)) candidates.push_back(&presented);
    }
    for (const x509::Certificate* store_cert :
         stores_->find_issuer_candidates(current.issuer)) {
      candidates.push_back(store_cert);
    }

    for (const x509::Certificate* candidate : candidates) {
      const std::string fp = candidate->fingerprint();
      if (on_path.contains(fp)) continue;  // no loops
      if (candidate->fingerprint() == current.fingerprint()) continue;
      std::string detail;
      if (!link_ok(current, *candidate, now, detail)) {
        record_failure(detail.find("validity") != std::string::npos
                           ? ClientVerdict::kExpired
                           : ClientVerdict::kBadSignature,
                       detail);
        continue;
      }
      path.push_back(*candidate);
      on_path.insert(fp);
      if (build(*candidate)) return true;
      on_path.erase(fp);
      path.pop_back();
    }
    return false;
  };

  path.push_back(leaf);
  on_path.insert(leaf.fingerprint());
  if (build(leaf)) {
    // Revocation pass over the built path: each certificate is checked
    // against its issuer's CRL, verified with the issuer key above it.
    if (options_.crl_store != nullptr) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto status =
            options_.crl_store->check(path[i], now, &path[i + 1].public_key);
        if (status == x509::RevocationStatus::kRevoked) {
          result.verdict = ClientVerdict::kRevoked;
          result.detail = "certificate at path position " + std::to_string(i) +
                          " is revoked";
          return result;
        }
        if (status != x509::RevocationStatus::kGood &&
            options_.hard_fail_on_unknown) {
          result.verdict = ClientVerdict::kRevocationUnknown;
          result.detail = std::string("revocation status unavailable (") +
                          std::string(x509::revocation_status_name(status)) + ")";
          return result;
        }
      }
    }
    result.verdict = ClientVerdict::kAccepted;
    result.path = path;
    return result;
  }
  result.verdict = best_failure;
  result.detail = best_detail;
  return result;
}

ClientValidationResult OpenSslLikeValidator::validate(
    const chain::CertificateChain& chain, util::SimTime now) const {
  ClientValidationResult result;
  if (chain.empty()) return result;

  // Revocation pass applied to an accepted path (CRL-check flag semantics).
  const auto finish_accept = [&](std::vector<x509::Certificate> path)
      -> ClientValidationResult {
    if (options_.crl_store != nullptr) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto status =
            options_.crl_store->check(path[i], now, &path[i + 1].public_key);
        if (status == x509::RevocationStatus::kRevoked) {
          ClientValidationResult revoked;
          revoked.verdict = ClientVerdict::kRevoked;
          revoked.detail = "certificate revoked at path position " +
                           std::to_string(i);
          return revoked;
        }
        if (status != x509::RevocationStatus::kGood &&
            options_.hard_fail_on_unknown) {
          ClientValidationResult unknown;
          unknown.verdict = ClientVerdict::kRevocationUnknown;
          unknown.detail = std::string("unable to get certificate CRL (") +
                           std::string(x509::revocation_status_name(status)) + ")";
          return unknown;
        }
      }
    }
    ClientValidationResult accepted;
    accepted.verdict = ClientVerdict::kAccepted;
    accepted.path = std::move(path);
    return accepted;
  };

  const auto check_cert = [&](const x509::Certificate& cert) -> bool {
    if (options_.check_validity && !cert.valid_at(now)) {
      result.verdict = ClientVerdict::kExpired;
      result.detail = "certificate has expired";
      return false;
    }
    return true;
  };

  const auto signature_ok = [&](const x509::Certificate& lower,
                                const x509::Certificate& upper) -> bool {
    if (!options_.check_signatures) return true;
    return crypto::verify(upper.public_key, lower.tbs_bytes(), lower.signature,
                          /*accept_all=*/true) == crypto::VerifyStatus::kOk;
  };

  std::vector<x509::Certificate> path;
  std::size_t index = 0;
  const x509::Certificate* current = &chain.first();
  if (!check_cert(*current)) return result;
  path.push_back(*current);

  while (true) {
    // 1. Try the host store for the current certificate's issuer.
    for (const x509::Certificate* anchor :
         host_store_->find_by_subject(current->issuer)) {
      if (!anchor->valid_at(now) && options_.check_validity) continue;
      if (!signature_ok(*current, *anchor)) continue;
      if (anchor->is_self_signed() || options_.partial_chain) {
        path.push_back(*anchor);
        return finish_accept(std::move(path));
      }
    }

    // Trusted self-signed certificate presented directly?
    if (current->is_self_signed()) {
      if (host_store_->contains_fingerprint(current->fingerprint())) {
        return finish_accept(std::move(path));
      }
      result.verdict = ClientVerdict::kNoTrustAnchor;
      result.detail = index == 0 ? "self-signed certificate"
                                 : "self-signed certificate in certificate chain";
      return result;
    }

    // 2. Advance along the presented order: the next certificate must be the
    //    issuer of the current one.
    if (index + 1 >= chain.length() || path.size() >= options_.max_depth) {
      result.verdict = ClientVerdict::kNoTrustAnchor;
      result.detail = "unable to get local issuer certificate";
      return result;
    }
    const x509::Certificate& next = chain.at(index + 1);
    if (!next.subject.matches(current->issuer)) {
      result.verdict = ClientVerdict::kBrokenOrder;
      result.detail = "presented chain order broken at position " +
                      std::to_string(index);
      return result;
    }
    if (!check_cert(next)) return result;
    if (!signature_ok(*current, next)) {
      result.verdict = ClientVerdict::kBadSignature;
      result.detail = "certificate signature failure at position " +
                      std::to_string(index);
      return result;
    }
    path.push_back(next);
    current = &next;
    ++index;
  }
}

}  // namespace certchain::validation
