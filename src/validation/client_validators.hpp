// Client-style validators: the Chrome-like path builder and the OpenSSL-like
// presented-order verifier.
//
// Section 5 of the paper validates the same chains with Chrome and with
// `openssl verify` and gets different answers. The algorithmic reason:
//
//   - Chrome treats the presented list as an unordered pool of candidate
//     certificates, builds a path from the leaf using that pool *plus its own
//     trust store*, and simply ignores presented certificates that don't
//     help. Unnecessary certificates are harmless.
//   - Stock OpenSSL walks the presented order: the certificate after the
//     current one must be its issuer. A foreign certificate spliced into the
//     order (or a missing anchor in the *host's* store, which may differ
//     from Chrome's) fails verification.
//
// Both validators also check validity windows and (simulated) signatures, so
// expired leaves and forged links fail in either model.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "chain/chain.hpp"
#include "truststore/trust_store.hpp"
#include "util/time.hpp"
#include "x509/crl.hpp"

namespace certchain::validation {

enum class ClientVerdict : std::uint8_t {
  kAccepted,
  kNoTrustAnchor,        // no path terminates at a trusted root
  kBrokenOrder,          // presented-order walk hit a non-issuer (OpenSSL-like)
  kExpired,              // a certificate on the path is outside its validity
  kBadSignature,         // a signature on the path failed to verify
  kRevoked,              // a certificate on the path appears on its issuer's CRL
  kRevocationUnknown,    // hard-fail policy and no fresh CRL was available
  kEmptyChain,
};

std::string_view client_verdict_name(ClientVerdict verdict);

struct ClientValidationResult {
  ClientVerdict verdict = ClientVerdict::kEmptyChain;
  /// The certificates of the accepted path, leaf first (path certificates
  /// may come from the trust store, not only the presented chain).
  std::vector<x509::Certificate> path;
  std::string detail;

  bool accepted() const { return verdict == ClientVerdict::kAccepted; }
};

/// Chrome-like: unordered path building against a maintained trust store.
class ChromeLikeValidator {
 public:
  struct Options {
    /// Maximum path length to explore (defensive bound; real clients cap
    /// path depth too).
    std::size_t max_depth = 8;
    /// Verify simulated signatures along the path.
    bool check_signatures = true;
    /// Enforce validity windows at `now`.
    bool check_validity = true;
    /// Revocation checking: consult this CRL cache for every non-root path
    /// certificate. Null disables the check entirely.
    const x509::CrlStore* crl_store = nullptr;
    /// Hard-fail policy: treat "no fresh CRL" as a failure instead of
    /// soft-failing open (the common browser default is soft-fail).
    bool hard_fail_on_unknown = false;
  };

  explicit ChromeLikeValidator(const truststore::TrustStoreSet& stores);
  ChromeLikeValidator(const truststore::TrustStoreSet& stores, Options options)
      : stores_(&stores), options_(options) {}

  ClientValidationResult validate(const chain::CertificateChain& chain,
                                  util::SimTime now) const;

 private:
  bool link_ok(const x509::Certificate& lower, const x509::Certificate& upper,
               util::SimTime now, std::string& detail) const;

  const truststore::TrustStoreSet* stores_;
  Options options_;
};

/// OpenSSL-like: strict presented-order verification against the *host's*
/// root store (often different from a browser's maintained store).
class OpenSslLikeValidator {
 public:
  struct Options {
    /// X509_V_FLAG_PARTIAL_CHAIN equivalent: accept when the walk reaches
    /// any certificate present in the host store, not only a self-signed
    /// root.
    bool partial_chain = false;
    std::size_t max_depth = 100;  // OpenSSL's historical default is large
    bool check_signatures = true;
    bool check_validity = true;
    /// Revocation checking (X509_V_FLAG_CRL_CHECK-style); null disables.
    const x509::CrlStore* crl_store = nullptr;
    bool hard_fail_on_unknown = false;
  };

  explicit OpenSslLikeValidator(const truststore::TrustStore& host_store);
  OpenSslLikeValidator(const truststore::TrustStore& host_store, Options options)
      : host_store_(&host_store), options_(options) {}

  ClientValidationResult validate(const chain::CertificateChain& chain,
                                  util::SimTime now) const;

 private:
  const truststore::TrustStore* host_store_;
  Options options_;
};

inline ChromeLikeValidator::ChromeLikeValidator(const truststore::TrustStoreSet& stores)
    : ChromeLikeValidator(stores, Options{}) {}

inline OpenSslLikeValidator::OpenSslLikeValidator(const truststore::TrustStore& host_store)
    : OpenSslLikeValidator(host_store, Options{}) {}

}  // namespace certchain::validation
