#include "validation/pairwise_validators.hpp"

#include "chain/matcher.hpp"

namespace certchain::validation {

std::string_view chain_verdict_name(ChainVerdict verdict) {
  switch (verdict) {
    case ChainVerdict::kSingleCertificate: return "single-certificate";
    case ChainVerdict::kValid: return "valid";
    case ChainVerdict::kBroken: return "broken";
    case ChainVerdict::kUnrecognizedKey: return "unrecognized-key";
  }
  return "unknown";
}

ChainValidationOutcome IssuerSubjectValidator::validate(
    const chain::CertificateChain& chain) const {
  ChainValidationOutcome outcome;
  if (chain.length() <= 1) {
    outcome.verdict = ChainVerdict::kSingleCertificate;
    return outcome;
  }
  const chain::MatchResult match = chain::match_chain(chain, registry_);
  outcome.failure_positions = match.mismatch_indices();
  if (outcome.failure_positions.empty()) {
    outcome.verdict = ChainVerdict::kValid;
  } else {
    outcome.verdict = ChainVerdict::kBroken;
    outcome.detail = "issuer-subject mismatch at position " +
                     std::to_string(outcome.failure_positions.front());
  }
  return outcome;
}

ChainValidationOutcome KeySignatureValidator::validate(
    const chain::CertificateChain& chain) const {
  ChainValidationOutcome outcome;
  if (chain.length() <= 1) {
    outcome.verdict = ChainVerdict::kSingleCertificate;
    return outcome;
  }

  bool unrecognized_key = false;
  for (std::size_t i = 0; i + 1 < chain.length(); ++i) {
    const x509::Certificate& lower = chain.at(i);
    const x509::Certificate& upper = chain.at(i + 1);

    // Strict parsers reject damaged encodings before any key math happens —
    // the whole pair check fails (the Appendix D ASN.1-error chain).
    if (lower.malformed_encoding || upper.malformed_encoding) {
      outcome.failure_positions.push_back(i);
      outcome.detail = "ASN.1 parse error at position " +
                       std::to_string(lower.malformed_encoding ? i : i + 1);
      continue;
    }

    const crypto::VerifyStatus status = crypto::verify(
        upper.public_key, lower.tbs_bytes(), lower.signature,
        options_.accept_all_algorithms);
    switch (status) {
      case crypto::VerifyStatus::kOk:
        break;
      case crypto::VerifyStatus::kUnrecognizedKey:
        unrecognized_key = true;
        break;
      case crypto::VerifyStatus::kMalformedKey:
      case crypto::VerifyStatus::kBadSignature:
        outcome.failure_positions.push_back(i);
        if (outcome.detail.empty()) {
          outcome.detail = std::string("signature verification failed at position ") +
                           std::to_string(i) + " (" +
                           std::string(crypto::verify_status_name(status)) + ")";
        }
        break;
    }
  }

  if (!outcome.failure_positions.empty()) {
    outcome.verdict = ChainVerdict::kBroken;
  } else if (unrecognized_key) {
    outcome.verdict = ChainVerdict::kUnrecognizedKey;
    outcome.detail = "chain involves a public key not recognized by the verifier";
  } else {
    outcome.verdict = ChainVerdict::kValid;
  }
  return outcome;
}

}  // namespace certchain::validation
