// The two pairwise chain-validation methods compared in Appendix D.
//
// IssuerSubjectValidator is the study's methodology: traverse the chain leaf
// upward checking DN(issuer_i) == DN(subject_{i+1}); it needs only log data.
// KeySignatureValidator is the ground-truth method run on rescanned PEM
// chains: verify signature_i with public_key_{i+1}. The two disagree exactly
// on (a) malformed certificates the strict parser rejects and (b) public key
// algorithms the verifier does not recognize — the corner rows of Table 5.
#pragma once

#include "chain/chain.hpp"
#include "chain/cross_sign_registry.hpp"
#include "validation/verdict.hpp"

namespace certchain::validation {

/// DN-comparison validation (App. D.1).
class IssuerSubjectValidator {
 public:
  /// `registry` suppresses known cross-signing mismatches; may be null.
  explicit IssuerSubjectValidator(const chain::CrossSignRegistry* registry = nullptr)
      : registry_(registry) {}

  ChainValidationOutcome validate(const chain::CertificateChain& chain) const;

 private:
  const chain::CrossSignRegistry* registry_;
};

/// Key–signature validation (App. D.2) modeled on the Python `cryptography`
/// toolchain: strict parsing (malformed encodings abort the pair check) and
/// a fixed set of recognized key algorithms.
class KeySignatureValidator {
 public:
  struct Options {
    /// Accept every key algorithm (models a tolerant verifier); the paper's
    /// toolchain did not, producing the 3 "unrecognized key" chains.
    bool accept_all_algorithms = false;
  };

  KeySignatureValidator();
  explicit KeySignatureValidator(Options options) : options_(options) {}

  ChainValidationOutcome validate(const chain::CertificateChain& chain) const;

 private:
  Options options_;
};

inline KeySignatureValidator::KeySignatureValidator() : options_(Options{}) {}

}  // namespace certchain::validation
