// Shared validation verdict types.
//
// Table 5 compares two chain-validation methodologies over the same corpus;
// both report through ChainValidationOutcome so the comparison harness can
// line the columns up exactly as the paper does (single-certificate chains /
// valid chains / broken chains / chains with unrecognized keys).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace certchain::validation {

enum class ChainVerdict : std::uint8_t {
  kSingleCertificate,  // length-1 chain: neither method applies
  kValid,              // every adjacent check succeeded
  kBroken,             // at least one adjacent check failed
  kUnrecognizedKey,    // a public key the validator cannot process (key-sig only)
};

std::string_view chain_verdict_name(ChainVerdict verdict);

struct ChainValidationOutcome {
  ChainVerdict verdict = ChainVerdict::kValid;
  /// Positions (index of the lower certificate of the failing pair) of each
  /// failed adjacent check; empty unless verdict == kBroken.
  std::vector<std::size_t> failure_positions;
  /// Human-readable note for logging ("ASN.1 parse error at position 2").
  std::string detail;

  bool valid() const { return verdict == ChainVerdict::kValid; }
};

}  // namespace certchain::validation
