#include "x509/builder.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/hash.hpp"

namespace certchain::x509 {

CertificateBuilder::CertificateBuilder() {
  cert_.version = 3;
  cert_.serial = "01";
}

CertificateBuilder& CertificateBuilder::serial(std::string value) {
  cert_.serial = std::move(value);
  return *this;
}

CertificateBuilder& CertificateBuilder::subject(DistinguishedName name) {
  cert_.subject = std::move(name);
  return *this;
}

CertificateBuilder& CertificateBuilder::issuer(DistinguishedName name) {
  cert_.issuer = std::move(name);
  return *this;
}

CertificateBuilder& CertificateBuilder::validity(util::TimeRange range) {
  cert_.validity = range;
  return *this;
}

CertificateBuilder& CertificateBuilder::public_key(crypto::SimPublicKey key) {
  cert_.public_key = std::move(key);
  return *this;
}

CertificateBuilder& CertificateBuilder::ca(bool is_ca, std::optional<int> path_len) {
  cert_.basic_constraints.present = true;
  cert_.basic_constraints.is_ca = is_ca;
  cert_.basic_constraints.path_len_constraint = path_len;
  return *this;
}

CertificateBuilder& CertificateBuilder::no_basic_constraints() {
  cert_.basic_constraints = BasicConstraints{};
  return *this;
}

CertificateBuilder& CertificateBuilder::name_constraints(NameConstraints constraints) {
  cert_.name_constraints = std::move(constraints);
  return *this;
}

CertificateBuilder& CertificateBuilder::key_usage(KeyUsage usage) {
  cert_.key_usage = usage;
  return *this;
}

CertificateBuilder& CertificateBuilder::add_san(std::string dns_name) {
  cert_.subject_alt_names.push_back(std::move(dns_name));
  return *this;
}

CertificateBuilder& CertificateBuilder::add_sct(EmbeddedSct sct) {
  cert_.scts.push_back(std::move(sct));
  return *this;
}

CertificateBuilder& CertificateBuilder::malformed_encoding(bool malformed) {
  cert_.malformed_encoding = malformed;
  return *this;
}

Certificate CertificateBuilder::sign_with(const crypto::SimPrivateKey& signer) const {
  Certificate cert = cert_;
  cert.signature = crypto::sign(signer, cert.tbs_bytes());
  return cert;
}

Certificate CertificateBuilder::self_sign(const crypto::SimPrivateKey& key) {
  cert_.issuer = cert_.subject;
  cert_.public_key = key.public_key;
  return sign_with(key);
}

CertificateAuthority::CertificateAuthority(DistinguishedName name,
                                           std::string_view key_seed,
                                           crypto::KeyAlgorithm algorithm)
    : name_(std::move(name)) {
  std::string seed = name_.canonical();
  seed.push_back('/');
  seed.append(key_seed);
  keypair_ = crypto::generate_keypair(algorithm, seed);
  serial_space_ = util::fnv1a64(seed) & 0xFFFFFF000000ULL;
}

std::string CertificateAuthority::next_serial() {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%012llx",
                static_cast<unsigned long long>(serial_space_ | serial_counter_++));
  return buffer;
}

Certificate CertificateAuthority::make_root(util::TimeRange validity) const {
  KeyUsage usage;
  usage.present = true;
  usage.key_cert_sign = true;
  usage.crl_sign = true;
  // Root serials are fixed per CA (roots are long-lived singletons).
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "00%010llx",
                static_cast<unsigned long long>(serial_space_ >> 24));
  return CertificateBuilder()
      .serial(buffer)
      .subject(name_)
      .validity(validity)
      .ca(true)
      .key_usage(usage)
      .self_sign(keypair_.private_key);
}

Certificate CertificateAuthority::issue_intermediate(
    const CertificateAuthority& subject_ca, util::TimeRange validity,
    std::optional<int> path_len) {
  KeyUsage usage;
  usage.present = true;
  usage.key_cert_sign = true;
  usage.crl_sign = true;
  return CertificateBuilder()
      .serial(next_serial())
      .subject(subject_ca.name())
      .issuer(name_)
      .validity(validity)
      .public_key(subject_ca.public_key())
      .ca(true, path_len)
      .key_usage(usage)
      .sign_with(keypair_.private_key);
}

Certificate CertificateAuthority::issue_leaf(const DistinguishedName& subject,
                                             std::string domain,
                                             util::TimeRange validity,
                                             const std::vector<EmbeddedSct>& scts) {
  KeyUsage usage;
  usage.present = true;
  usage.digital_signature = true;
  std::string leaf_seed = "leaf/" + subject.canonical() + "/" + domain;
  const auto leaf_keys =
      crypto::generate_keypair(crypto::KeyAlgorithm::kEcdsaP256, leaf_seed);
  CertificateBuilder builder;
  builder.serial(next_serial())
      .subject(subject)
      .issuer(name_)
      .validity(validity)
      .public_key(leaf_keys.public_key)
      .ca(false)
      .key_usage(usage)
      .add_san(std::move(domain));
  for (const EmbeddedSct& sct : scts) builder.add_sct(sct);
  return builder.sign_with(keypair_.private_key);
}

Certificate CertificateAuthority::issue_leaf_no_bc(const DistinguishedName& subject,
                                                   std::string domain,
                                                   util::TimeRange validity) {
  std::string leaf_seed = "leafnobc/" + subject.canonical() + "/" + domain;
  const auto leaf_keys =
      crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, leaf_seed);
  return CertificateBuilder()
      .serial(next_serial())
      .subject(subject)
      .issuer(name_)
      .validity(validity)
      .public_key(leaf_keys.public_key)
      .no_basic_constraints()
      .add_san(std::move(domain))
      .sign_with(keypair_.private_key);
}

Certificate CertificateAuthority::cross_sign(const CertificateAuthority& subject_ca,
                                             util::TimeRange validity) {
  KeyUsage usage;
  usage.present = true;
  usage.key_cert_sign = true;
  return CertificateBuilder()
      .serial(next_serial())
      .subject(subject_ca.name())
      .issuer(name_)
      .validity(validity)
      .public_key(subject_ca.public_key())
      .ca(true)
      .key_usage(usage)
      .sign_with(keypair_.private_key);
}

}  // namespace certchain::x509
