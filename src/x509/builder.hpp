// Certificate construction.
//
// CertificateBuilder is the one place certificates are assembled; it keeps
// field defaults (version 3, one-year validity) and signing in one spot.
// CertificateAuthority wraps a DN + keypair + serial counter and issues
// leaf/intermediate/root certificates the way the simulated CAs in netsim
// and datagen need them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sim_crypto.hpp"
#include "x509/certificate.hpp"

namespace certchain::x509 {

/// Fluent certificate builder. All setters return *this.
class CertificateBuilder {
 public:
  CertificateBuilder();

  CertificateBuilder& serial(std::string value);
  CertificateBuilder& subject(DistinguishedName name);
  CertificateBuilder& issuer(DistinguishedName name);
  CertificateBuilder& validity(util::TimeRange range);
  CertificateBuilder& public_key(crypto::SimPublicKey key);
  CertificateBuilder& ca(bool is_ca, std::optional<int> path_len = std::nullopt);
  /// Omits basicConstraints entirely (the common non-public-DB issuer case).
  CertificateBuilder& no_basic_constraints();
  CertificateBuilder& key_usage(KeyUsage usage);
  /// Adds a nameConstraints extension (technically constrained sub-CAs).
  CertificateBuilder& name_constraints(NameConstraints constraints);
  CertificateBuilder& add_san(std::string dns_name);
  CertificateBuilder& add_sct(EmbeddedSct sct);
  CertificateBuilder& malformed_encoding(bool malformed);

  /// Signs with `signer` (sets issuer to `issuer_name` if provided, else the
  /// already-set issuer) and returns the finished certificate.
  Certificate sign_with(const crypto::SimPrivateKey& signer) const;

  /// Self-signs: issuer := subject, signed by `key` which must match the
  /// builder's public key.
  Certificate self_sign(const crypto::SimPrivateKey& key);

 private:
  Certificate cert_;
};

/// A simulated certificate authority: identity + keypair + serial counter.
class CertificateAuthority {
 public:
  /// Creates a CA with a deterministic keypair derived from the DN + seed.
  CertificateAuthority(DistinguishedName name, std::string_view key_seed,
                       crypto::KeyAlgorithm algorithm = crypto::KeyAlgorithm::kRsa2048);

  const DistinguishedName& name() const { return name_; }
  const crypto::SimPublicKey& public_key() const { return keypair_.public_key; }
  const crypto::SimPrivateKey& private_key() const { return keypair_.private_key; }

  /// Self-signed root certificate for this CA.
  Certificate make_root(util::TimeRange validity) const;

  /// Issues an intermediate CA certificate to `subject_ca`.
  Certificate issue_intermediate(const CertificateAuthority& subject_ca,
                                 util::TimeRange validity,
                                 std::optional<int> path_len = std::nullopt);

  /// Issues a leaf certificate for `domain` (CN + SAN).
  Certificate issue_leaf(const DistinguishedName& subject, std::string domain,
                         util::TimeRange validity,
                         const std::vector<EmbeddedSct>& scts = {});

  /// Issues a leaf with explicit basicConstraints omission, as most
  /// non-public-DB issuers do (§4.3).
  Certificate issue_leaf_no_bc(const DistinguishedName& subject, std::string domain,
                               util::TimeRange validity);

  /// Cross-signs another CA: produces a certificate whose subject is
  /// `subject_ca`'s name and whose key is `subject_ca`'s key, issued and
  /// signed by this CA. The resulting cert plus the subject CA's original
  /// root give the classic cross-signing pair.
  Certificate cross_sign(const CertificateAuthority& subject_ca,
                         util::TimeRange validity);

  /// Next unique serial (hex).
  std::string next_serial();

 private:
  DistinguishedName name_;
  crypto::SimKeyPair keypair_;
  std::uint64_t serial_counter_ = 1;
  std::uint64_t serial_space_;  // per-CA offset so serials differ across CAs
};

}  // namespace certchain::x509
