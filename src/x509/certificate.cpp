#include "x509/certificate.hpp"

#include "util/hash.hpp"
#include "util/strings.hpp"

namespace certchain::x509 {

bool dns_in_subtree(std::string_view dns_name, std::string_view base) {
  const std::string name = util::to_lower(dns_name);
  const std::string suffix = util::to_lower(base);
  if (name == suffix) return true;
  return name.size() > suffix.size() && util::ends_with(name, suffix) &&
         name[name.size() - suffix.size() - 1] == '.';
}

bool NameConstraints::allows(std::string_view dns_name) const {
  if (!present) return true;
  for (const std::string& base : excluded_dns) {
    if (dns_in_subtree(dns_name, base)) return false;
  }
  if (permitted_dns.empty()) return true;
  for (const std::string& base : permitted_dns) {
    if (dns_in_subtree(dns_name, base)) return true;
  }
  return false;
}

std::string Certificate::tbs_bytes() const {
  // A canonical, field-tagged serialization; unambiguous because every field
  // is length-independent and separated by record markers.
  std::string out;
  out.reserve(512);
  out.append("v=").append(std::to_string(version)).push_back('\x1e');
  out.append("serial=").append(serial).push_back('\x1e');
  out.append("issuer=").append(issuer.to_string()).push_back('\x1e');
  out.append("subject=").append(subject.to_string()).push_back('\x1e');
  out.append("nb=").append(std::to_string(validity.begin)).push_back('\x1e');
  out.append("na=").append(std::to_string(validity.end)).push_back('\x1e');
  out.append("keyalg=")
      .append(crypto::key_algorithm_name(public_key.algorithm))
      .push_back('\x1e');
  out.append("key=").append(public_key.material).push_back('\x1e');
  out.append("bc=");
  if (basic_constraints.present) {
    out.append(basic_constraints.is_ca ? "CA:TRUE" : "CA:FALSE");
    if (basic_constraints.path_len_constraint) {
      out.append(",pathlen:")
          .append(std::to_string(*basic_constraints.path_len_constraint));
    }
  } else {
    out.append("absent");
  }
  out.push_back('\x1e');
  out.append("nc=");
  if (name_constraints.present) {
    out.push_back('p');
    for (const std::string& base : name_constraints.permitted_dns) {
      out.append(base).push_back(';');
    }
    out.push_back('x');
    for (const std::string& base : name_constraints.excluded_dns) {
      out.append(base).push_back(';');
    }
  }
  out.push_back('\x1e');
  out.append("ku=");
  if (key_usage.present) {
    if (key_usage.digital_signature) out.append("ds,");
    if (key_usage.key_cert_sign) out.append("kcs,");
    if (key_usage.crl_sign) out.append("crl,");
  }
  out.push_back('\x1e');
  out.append("san=");
  for (const std::string& name : subject_alt_names) {
    out.append(name).push_back(';');
  }
  out.push_back('\x1e');
  // Note: the SCT list is deliberately NOT part of the to-be-signed bytes.
  // This mirrors RFC 6962 precertificate semantics: the CA signs the
  // certificate before logs return their SCTs, so embedding SCTs afterwards
  // must not invalidate the signature.
  return out;
}

std::string Certificate::fingerprint() const {
  if (!fingerprint_memo.empty()) return fingerprint_memo;
  std::string bytes = tbs_bytes();
  // The fingerprint is the identity of the certificate *as delivered*, so it
  // does cover the embedded SCT list (unlike the signature).
  bytes.append("scts=");
  for (const EmbeddedSct& sct : scts) {
    bytes.append(sct.log_id).push_back('@');
    bytes.append(std::to_string(sct.timestamp)).push_back(';');
  }
  bytes.push_back('\x1e');
  bytes.append("sigalg=")
      .append(crypto::signature_algorithm_name(signature.algorithm))
      .push_back('\x1e');
  bytes.append("sig=").append(signature.value).push_back('\x1e');
  return util::digest256_hex(bytes);
}

void Certificate::seal_fingerprint() {
  fingerprint_memo.clear();
  fingerprint_memo = fingerprint();
}

bool wildcard_matches(std::string_view pattern, std::string_view domain) {
  const std::string p = util::to_lower(pattern);
  const std::string d = util::to_lower(domain);
  if (!util::starts_with(p, "*.")) return p == d;
  // "*.example.com" matches exactly one extra left label.
  const std::string_view suffix = std::string_view(p).substr(1);  // ".example.com"
  if (!util::ends_with(d, suffix)) return false;
  const std::string_view label = std::string_view(d).substr(0, d.size() - suffix.size());
  return !label.empty() && label.find('.') == std::string_view::npos;
}

bool Certificate::covers_domain(std::string_view domain) const {
  for (const std::string& san : subject_alt_names) {
    if (wildcard_matches(san, domain)) return true;
  }
  // Fallback to CN when no SAN is present (legacy behaviour common among
  // non-public-DB issuers).
  if (subject_alt_names.empty()) {
    if (const auto cn = subject.common_name()) return wildcard_matches(*cn, domain);
  }
  return false;
}

}  // namespace certchain::x509
