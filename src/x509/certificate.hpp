// The certificate model.
//
// Certificate mirrors the fields the study observes (issuer, subject, serial,
// validity, basicConstraints, SAN, key/signature metadata) plus the simulated
// key material needed for key–signature validation (Appendix D). Zeek's
// X509.log view of a certificate is a projection of this struct (src/zeek).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dn_id.hpp"
#include "crypto/sim_crypto.hpp"
#include "util/time.hpp"
#include "x509/distinguished_name.hpp"

namespace certchain::x509 {

/// RFC 5280 basicConstraints. The paper leans on this extension being
/// *omitted* by most non-public-DB issuers (55.31% of first-position and
/// 78.32% of later-position certificates, §4.3), so presence is modeled
/// explicitly rather than defaulting.
struct BasicConstraints {
  bool present = false;
  bool is_ca = false;
  std::optional<int> path_len_constraint;

  bool operator==(const BasicConstraints&) const = default;
};

/// RFC 5280 nameConstraints (dNSName subtrees only — the form CCADB's
/// "technically constrained" criterion cares about). An issued dNSName falls
/// within a subtree when it equals the base or is a subdomain of it.
struct NameConstraints {
  bool present = false;
  std::vector<std::string> permitted_dns;
  std::vector<std::string> excluded_dns;

  bool operator==(const NameConstraints&) const = default;

  /// True if `dns_name` is allowed under these constraints.
  bool allows(std::string_view dns_name) const;
};

/// True if `dns_name` equals `base` or is a subdomain of it (RFC 5280
/// §4.2.1.10 dNSName subtree matching), case-insensitively.
bool dns_in_subtree(std::string_view dns_name, std::string_view base);

/// RFC 5280 keyUsage bits (the subset the analysis references).
struct KeyUsage {
  bool present = false;
  bool digital_signature = false;
  bool key_cert_sign = false;
  bool crl_sign = false;

  bool operator==(const KeyUsage&) const = default;
};

/// An embedded SCT: evidence that the certificate was submitted to a CT log.
struct EmbeddedSct {
  std::string log_id;            // digest of the log's public identity
  util::SimTime timestamp = 0;   // when the log issued the SCT

  bool operator==(const EmbeddedSct&) const = default;
};

/// A certificate. Value type; copies are cheap enough for the corpus sizes
/// used here and keep the analysis pipeline free of ownership concerns.
struct Certificate {
  int version = 3;
  std::string serial;  // hex, unique per issuer in well-formed corpora

  DistinguishedName issuer;
  DistinguishedName subject;
  util::TimeRange validity;  // [not_before, not_after)

  crypto::SimPublicKey public_key;
  crypto::SimSignature signature;

  BasicConstraints basic_constraints;
  NameConstraints name_constraints;
  KeyUsage key_usage;
  std::vector<std::string> subject_alt_names;  // DNS names
  std::vector<EmbeddedSct> scts;

  /// Injected ASN.1-level damage: a parser that inspects the full encoding
  /// fails on this certificate even though the text fields look fine
  /// (reproduces the Appendix D parse-error chain).
  bool malformed_encoding = false;

  /// Interned issuer/subject ids when this certificate was built through a
  /// core::DnPool (the joiner's ingest path), kInvalidDnId otherwise. Ids are
  /// pool-local derived state — excluded from equality, remapped on shard
  /// merges (DESIGN.md §16).
  core::DnId issuer_id = core::kInvalidDnId;
  core::DnId subject_id = core::kInvalidDnId;

  /// Cached fingerprint, filled by seal_fingerprint(). Derived state like the
  /// ids: excluded from equality, empty on hand-built certificates.
  std::string fingerprint_memo;

  /// Issuer and subject canonically equal (the study's self-signed test —
  /// "issuer and subject are identical", §4.3).
  bool is_self_signed() const {
    if (issuer_id != core::kInvalidDnId && subject_id != core::kInvalidDnId) {
      return issuer_id == subject_id;
    }
    return issuer.matches(subject);
  }

  /// True if basicConstraints marks this certificate as a CA.
  bool is_ca() const { return basic_constraints.present && basic_constraints.is_ca; }

  /// Valid at a point in time (validity window check only).
  bool valid_at(util::SimTime t) const { return validity.contains(t); }

  /// True if expired as of `t`.
  bool expired_at(util::SimTime t) const { return t >= validity.end; }

  /// Canonical to-be-signed serialization. Every field that a signer commits
  /// to is folded in; signatures are computed over these bytes.
  std::string tbs_bytes() const;

  /// Content fingerprint (digest of tbs + signature), hex. Used as the
  /// certificate identity throughout the pipeline, like a SHA-256
  /// fingerprint would be in practice. Answers from fingerprint_memo when
  /// sealed; recomputes otherwise (tests mutate certificates and expect the
  /// fingerprint to follow, so there is no implicit memoization).
  std::string fingerprint() const;

  /// Computes and caches the fingerprint. Call once the certificate is
  /// final — the joiner seals every cert it constructs so per-connection
  /// corpus folds stop re-digesting identical certificates.
  void seal_fingerprint();

  /// Matches SAN entries (exact or single-label wildcard "*.example.com").
  bool covers_domain(std::string_view domain) const;

  /// Semantic equality: every signed/observed field, but not the derived
  /// pool ids or the fingerprint memo.
  bool operator==(const Certificate& other) const {
    return version == other.version && serial == other.serial &&
           issuer == other.issuer && subject == other.subject &&
           validity == other.validity && public_key == other.public_key &&
           signature == other.signature &&
           basic_constraints == other.basic_constraints &&
           name_constraints == other.name_constraints &&
           key_usage == other.key_usage &&
           subject_alt_names == other.subject_alt_names &&
           scts == other.scts &&
           malformed_encoding == other.malformed_encoding;
  }
};

/// True if `pattern` (exact name or "*.x.y") matches `domain` per RFC 6125
/// single-left-label wildcard rules.
bool wildcard_matches(std::string_view pattern, std::string_view domain);

}  // namespace certchain::x509
