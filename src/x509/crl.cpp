#include "x509/crl.hpp"

namespace certchain::x509 {

std::string_view revocation_reason_name(RevocationReason reason) {
  switch (reason) {
    case RevocationReason::kUnspecified: return "unspecified";
    case RevocationReason::kKeyCompromise: return "keyCompromise";
    case RevocationReason::kCaCompromise: return "cACompromise";
    case RevocationReason::kSuperseded: return "superseded";
    case RevocationReason::kCessationOfOperation: return "cessationOfOperation";
  }
  return "unknown";
}

std::string_view revocation_status_name(RevocationStatus status) {
  switch (status) {
    case RevocationStatus::kGood: return "good";
    case RevocationStatus::kRevoked: return "revoked";
    case RevocationStatus::kUnknown: return "unknown";
    case RevocationStatus::kStale: return "stale";
    case RevocationStatus::kBadSignature: return "bad-signature";
  }
  return "unknown";
}

std::string Crl::tbs_bytes() const {
  std::string out;
  out.append("crl-issuer=").append(issuer.to_string()).push_back('\x1e');
  out.append("this=").append(std::to_string(this_update)).push_back('\x1e');
  out.append("next=").append(std::to_string(next_update)).push_back('\x1e');
  for (const RevokedEntry& entry : entries) {
    out.append(entry.serial).push_back('@');
    out.append(std::to_string(entry.revoked_at)).push_back('/');
    out.append(revocation_reason_name(entry.reason)).push_back(';');
  }
  return out;
}

const RevokedEntry* Crl::find(std::string_view serial) const {
  for (const RevokedEntry& entry : entries) {
    if (entry.serial == serial) return &entry;
  }
  return nullptr;
}

CrlBuilder& CrlBuilder::revoke(std::string serial, util::SimTime when,
                               RevocationReason reason) {
  entries_.push_back(RevokedEntry{std::move(serial), when, reason});
  return *this;
}

CrlBuilder& CrlBuilder::updates(util::SimTime this_update, util::SimTime next_update) {
  this_update_ = this_update;
  next_update_ = next_update;
  return *this;
}

Crl CrlBuilder::sign_with(const crypto::SimPrivateKey& key) const {
  Crl crl;
  crl.issuer = issuer_;
  crl.this_update = this_update_;
  crl.next_update = next_update_;
  crl.entries = entries_;
  crl.signature = crypto::sign(key, crl.tbs_bytes());
  return crl;
}

void CrlStore::add(Crl crl) {
  const std::string key = crl.issuer.canonical();
  by_issuer_.insert_or_assign(key, std::move(crl));
}

const Crl* CrlStore::find_for_issuer(const DistinguishedName& issuer) const {
  const auto it = by_issuer_.find(issuer.canonical());
  return it == by_issuer_.end() ? nullptr : &it->second;
}

RevocationStatus CrlStore::check(const Certificate& cert, util::SimTime now,
                                 const crypto::SimPublicKey* issuer_key) const {
  const Crl* crl = find_for_issuer(cert.issuer);
  if (crl == nullptr) return RevocationStatus::kUnknown;
  if (issuer_key != nullptr) {
    const auto status =
        crypto::verify(*issuer_key, crl->tbs_bytes(), crl->signature,
                       /*accept_all=*/true);
    if (status != crypto::VerifyStatus::kOk) return RevocationStatus::kBadSignature;
  }
  if (crl->stale_at(now)) return RevocationStatus::kStale;
  return crl->find(cert.serial) != nullptr ? RevocationStatus::kRevoked
                                           : RevocationStatus::kGood;
}

}  // namespace certchain::x509
