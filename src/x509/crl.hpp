// Certificate revocation lists.
//
// Chain validation "involves checking issuer-subject name matches, verifying
// digital signatures ... and ensuring revocation status and validity
// periods" (paper §2). This module supplies the revocation leg: a CRL is a
// signed, dated list of revoked serials published by an issuing CA, and a
// CrlStore lets validators resolve "is this certificate revoked?" the way
// RFC 5280 §6.3 does — including the operational failure modes (no CRL
// available, stale CRL) that real deployments must decide on via hard-fail /
// soft-fail policy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sim_crypto.hpp"
#include "util/time.hpp"
#include "x509/certificate.hpp"

namespace certchain::x509 {

/// RFC 5280 revocation reasons (the subset worth modeling).
enum class RevocationReason : std::uint8_t {
  kUnspecified,
  kKeyCompromise,
  kCaCompromise,
  kSuperseded,
  kCessationOfOperation,
};

std::string_view revocation_reason_name(RevocationReason reason);

struct RevokedEntry {
  std::string serial;
  util::SimTime revoked_at = 0;
  RevocationReason reason = RevocationReason::kUnspecified;

  bool operator==(const RevokedEntry&) const = default;
};

/// One CRL as published by an issuer.
struct Crl {
  DistinguishedName issuer;
  util::SimTime this_update = 0;
  util::SimTime next_update = 0;  // staleness horizon
  std::vector<RevokedEntry> entries;
  crypto::SimSignature signature;

  /// Canonical signed bytes (issuer + dates + entries).
  std::string tbs_bytes() const;

  /// Entry lookup by serial.
  const RevokedEntry* find(std::string_view serial) const;

  bool stale_at(util::SimTime now) const { return now >= next_update; }
};

/// Builds and signs CRLs for one CA.
class CrlBuilder {
 public:
  explicit CrlBuilder(DistinguishedName issuer) : issuer_(std::move(issuer)) {}

  CrlBuilder& revoke(std::string serial, util::SimTime when,
                     RevocationReason reason = RevocationReason::kUnspecified);
  CrlBuilder& updates(util::SimTime this_update, util::SimTime next_update);

  /// Signs with the issuing CA's key.
  Crl sign_with(const crypto::SimPrivateKey& key) const;

 private:
  DistinguishedName issuer_;
  util::SimTime this_update_ = 0;
  util::SimTime next_update_ = 0;
  std::vector<RevokedEntry> entries_;
};

/// Revocation status a checker can report (RFC 5280 §6.3 outcomes).
enum class RevocationStatus : std::uint8_t {
  kGood,
  kRevoked,
  kUnknown,      // no CRL for the issuer
  kStale,        // CRL exists but nextUpdate has passed
  kBadSignature, // CRL signature does not verify against the issuer key
};

std::string_view revocation_status_name(RevocationStatus status);

/// A client-side CRL cache keyed by issuer.
class CrlStore {
 public:
  /// Adds/replaces the CRL for its issuer.
  void add(Crl crl);

  std::size_t size() const { return by_issuer_.size(); }

  const Crl* find_for_issuer(const DistinguishedName& issuer) const;

  /// Checks `cert` at time `now`. `issuer_key`, when provided, is used to
  /// verify the CRL's signature first (a checker that skips this accepts
  /// forged CRLs).
  RevocationStatus check(const Certificate& cert, util::SimTime now,
                         const crypto::SimPublicKey* issuer_key = nullptr) const;

 private:
  std::map<std::string, Crl> by_issuer_;  // canonical issuer DN
};

}  // namespace certchain::x509
