#include "x509/distinguished_name.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "util/hash.hpp"

namespace certchain::x509 {

namespace {

bool is_special(char c) {
  switch (c) {
    case ',':
    case '+':
    case '"':
    case '\\':
    case '<':
    case '>':
    case ';':
      return true;
    default:
      return false;
  }
}

std::string canonical_type(std::string_view type) {
  std::string out;
  out.reserve(type.size());
  for (const char c : type) {
    out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string canonical_value(std::string_view value) {
  // Lowercase + collapse runs of whitespace to single spaces + trim.
  std::string out;
  out.reserve(value.size());
  bool pending_space = false;
  for (const char c : value) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

DistinguishedName::DistinguishedName(std::vector<Rdn> rdns)
    : rdns_(std::move(rdns)) {
  rebuild_canonical();
}

std::optional<DistinguishedName> DistinguishedName::parse(std::string_view text) {
  std::vector<Rdn> rdns;
  std::size_t i = 0;
  const std::size_t n = text.size();

  const auto skip_spaces = [&] {
    while (i < n && text[i] == ' ') ++i;
  };

  while (i < n) {
    skip_spaces();
    // Attribute type: up to unescaped '='.
    std::string type;
    while (i < n && text[i] != '=' && text[i] != ',') {
      type.push_back(text[i]);
      ++i;
    }
    if (i >= n || text[i] != '=') return std::nullopt;  // missing '='
    ++i;  // consume '='
    while (!type.empty() && type.back() == ' ') type.pop_back();
    if (type.empty()) return std::nullopt;

    // Attribute value: runs to unescaped ',' or end.
    std::string value;
    bool saw_non_space = false;
    std::size_t trailing_spaces = 0;
    while (i < n) {
      const char c = text[i];
      if (c == '\\') {
        if (i + 1 >= n) return std::nullopt;  // dangling escape
        const char next = text[i + 1];
        if (is_special(next) || next == '=' || next == ' ' || next == '#') {
          value.push_back(next);
          i += 2;
        } else if (std::isxdigit(static_cast<unsigned char>(next)) && i + 2 < n &&
                   std::isxdigit(static_cast<unsigned char>(text[i + 2]))) {
          // \XX hex pair
          const char hex[3] = {next, text[i + 2], 0};
          value.push_back(static_cast<char>(std::strtol(hex, nullptr, 16)));
          i += 3;
        } else {
          return std::nullopt;
        }
        saw_non_space = true;
        trailing_spaces = 0;
        continue;
      }
      if (c == ',') break;
      if (!saw_non_space && c == ' ') {  // skip leading unescaped spaces
        ++i;
        continue;
      }
      value.push_back(c);
      trailing_spaces = (c == ' ') ? trailing_spaces + 1 : 0;
      if (c != ' ') saw_non_space = true;
      ++i;
    }
    // Drop trailing unescaped spaces.
    value.resize(value.size() - trailing_spaces);
    rdns.push_back(Rdn{std::move(type), std::move(value)});

    if (i < n) {
      // consume ','
      ++i;
      if (i == n) return std::nullopt;  // trailing comma
    }
  }
  return DistinguishedName(std::move(rdns));
}

DistinguishedName DistinguishedName::parse_or_die(std::string_view text) {
  auto parsed = parse(text);
  if (!parsed) {
    throw std::invalid_argument("DistinguishedName::parse_or_die: malformed DN: " +
                                std::string(text));
  }
  return *std::move(parsed);
}

std::string escape_dn_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    const char c = value[i];
    const bool needs_escape =
        is_special(c) || (i == 0 && (c == ' ' || c == '#')) ||
        (i + 1 == value.size() && c == ' ');
    if (needs_escape) out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string DistinguishedName::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i != 0) out.push_back(',');
    out.append(rdns_[i].type);
    out.push_back('=');
    out.append(escape_dn_value(rdns_[i].value));
  }
  return out;
}

void DistinguishedName::rebuild_canonical() {
  std::string out;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i != 0) out.push_back('\n');  // unambiguous separator
    out.append(canonical_type(rdns_[i].type));
    out.push_back('=');
    out.append(canonical_value(rdns_[i].value));
  }
  canonical_ = std::move(out);
}

bool DistinguishedName::matches(const DistinguishedName& other) const {
  return canonical_ == other.canonical_;
}

std::optional<std::string> DistinguishedName::attribute(std::string_view type) const {
  const std::string wanted = canonical_type(type);
  for (const Rdn& rdn : rdns_) {
    if (canonical_type(rdn.type) == wanted) return rdn.value;
  }
  return std::nullopt;
}

DistinguishedName& DistinguishedName::add(std::string type, std::string value) {
  if (!rdns_.empty()) canonical_.push_back('\n');
  canonical_.append(canonical_type(type));
  canonical_.push_back('=');
  canonical_.append(canonical_value(value));
  rdns_.push_back(Rdn{std::move(type), std::move(value)});
  return *this;
}

std::uint64_t DistinguishedName::canonical_hash() const {
  return certchain::util::fnv1a64(canonical_);
}

}  // namespace certchain::x509
