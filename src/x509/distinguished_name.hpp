// X.500 distinguished names.
//
// Zeek's X509.log renders issuer and subject as RFC 4514-style strings
// ("CN=example.com,O=Example,C=US"); the paper's whole issuer–subject
// methodology operates on these strings. DistinguishedName is an ordered RDN
// sequence with RFC 4514 parsing/serialization (including escaping) and the
// caseIgnore matching X.500 specifies for the attribute types that matter
// here, so that "cn=Example" and "CN=example" compare equal the way a real
// path builder would treat them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace certchain::x509 {

/// One relative distinguished name component ("CN=example.com").
struct Rdn {
  std::string type;   // attribute type as written, e.g. "CN", "emailAddress"
  std::string value;  // unescaped attribute value

  bool operator==(const Rdn&) const = default;
};

/// An ordered sequence of RDNs, most-specific first (leaf convention used by
/// Zeek and OpenSSL one-line output: "CN=...,OU=...,O=...,C=...").
class DistinguishedName {
 public:
  DistinguishedName() = default;
  explicit DistinguishedName(std::vector<Rdn> rdns);

  /// Parses an RFC 4514-style string. Handles backslash escaping of the
  /// special characters , + " \ < > ; = and leading '#'/space. Returns
  /// nullopt on malformed input (dangling escape, missing '=').
  static std::optional<DistinguishedName> parse(std::string_view text);

  /// Convenience for tests and generators; aborts on malformed input.
  static DistinguishedName parse_or_die(std::string_view text);

  /// Serializes back to RFC 4514 form with escaping.
  std::string to_string() const;

  /// Canonical form for matching: attribute types uppercased and values
  /// lowercased with internal whitespace collapsed. Two names with equal
  /// canonical forms are considered the same entity (X.500 caseIgnoreMatch).
  /// Computed once when the RDN sequence is built — comparison sites get a
  /// reference, never an allocation (DESIGN.md §16).
  const std::string& canonical() const { return canonical_; }

  /// Matching per canonical form.
  bool matches(const DistinguishedName& other) const;

  bool empty() const { return rdns_.empty(); }
  std::size_t size() const { return rdns_.size(); }
  const std::vector<Rdn>& rdns() const { return rdns_; }

  /// First value for the given attribute type (case-insensitive type match),
  /// or nullopt.
  std::optional<std::string> attribute(std::string_view type) const;

  /// Common accessors.
  std::optional<std::string> common_name() const { return attribute("CN"); }
  std::optional<std::string> organization() const { return attribute("O"); }
  std::optional<std::string> country() const { return attribute("C"); }

  /// Appends an RDN (builder-style use).
  DistinguishedName& add(std::string type, std::string value);

  /// Strict structural equality (types + values as written). The cached
  /// canonical form is derived state and deliberately not compared.
  bool operator==(const DistinguishedName& other) const {
    return rdns_ == other.rdns_;
  }

  /// Stable 64-bit hash of the canonical form.
  std::uint64_t canonical_hash() const;

 private:
  void rebuild_canonical();

  std::vector<Rdn> rdns_;
  std::string canonical_;  // derived from rdns_, kept in lockstep
};

/// Escapes one attribute value per RFC 4514.
std::string escape_dn_value(std::string_view value);

}  // namespace certchain::x509
