#include "x509/pem.hpp"

#include <charconv>

#include "util/base64.hpp"
#include "util/strings.hpp"

namespace certchain::x509 {

namespace {

constexpr std::string_view kBegin = "-----BEGIN CERTIFICATE-----";
constexpr std::string_view kEnd = "-----END CERTIFICATE-----";

void emit(std::string& out, std::string_view key, std::string_view value) {
  out.append(key);
  out.push_back(':');
  // Values may contain newlines only via escaping; DN strings never do, but
  // be defensive and escape backslash + newline.
  for (const char c : value) {
    if (c == '\\') {
      out.append("\\\\");
    } else if (c == '\n') {
      out.append("\\n");
    } else {
      out.push_back(c);
    }
  }
  out.push_back('\n');
}

std::string unescape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] == '\\' && i + 1 < value.size()) {
      ++i;
      out.push_back(value[i] == 'n' ? '\n' : value[i]);
    } else {
      out.push_back(value[i]);
    }
  }
  return out;
}

bool parse_i64(std::string_view text, std::int64_t& out) {
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc{} && result.ptr == end;
}

}  // namespace

std::string encode_der_sim(const Certificate& cert) {
  std::string out;
  out.reserve(1024);
  emit(out, "format", "certchain-der-sim/1");
  emit(out, "version", std::to_string(cert.version));
  emit(out, "serial", cert.serial);
  emit(out, "issuer", cert.issuer.to_string());
  emit(out, "subject", cert.subject.to_string());
  emit(out, "not-before", std::to_string(cert.validity.begin));
  emit(out, "not-after", std::to_string(cert.validity.end));
  emit(out, "key-alg", crypto::key_algorithm_name(cert.public_key.algorithm));
  emit(out, "key", cert.public_key.material);
  if (cert.public_key.malformed) emit(out, "key-malformed", "1");
  emit(out, "sig-alg", crypto::signature_algorithm_name(cert.signature.algorithm));
  emit(out, "sig", cert.signature.value);
  if (cert.basic_constraints.present) {
    std::string bc = cert.basic_constraints.is_ca ? "CA:TRUE" : "CA:FALSE";
    if (cert.basic_constraints.path_len_constraint) {
      bc += ",pathlen:" + std::to_string(*cert.basic_constraints.path_len_constraint);
    }
    emit(out, "basic-constraints", bc);
  }
  if (cert.name_constraints.present) {
    for (const std::string& base : cert.name_constraints.permitted_dns) {
      emit(out, "nc-permit", base);
    }
    for (const std::string& base : cert.name_constraints.excluded_dns) {
      emit(out, "nc-exclude", base);
    }
    emit(out, "nc-present", "1");
  }
  if (cert.key_usage.present) {
    std::string ku;
    if (cert.key_usage.digital_signature) ku += "digitalSignature,";
    if (cert.key_usage.key_cert_sign) ku += "keyCertSign,";
    if (cert.key_usage.crl_sign) ku += "cRLSign,";
    if (!ku.empty()) ku.pop_back();
    emit(out, "key-usage", ku);
  }
  for (const std::string& san : cert.subject_alt_names) emit(out, "san", san);
  for (const EmbeddedSct& sct : cert.scts) {
    emit(out, "sct", sct.log_id + "@" + std::to_string(sct.timestamp));
  }
  if (cert.malformed_encoding) emit(out, "x-malformed-encoding", "1");
  return out;
}

std::optional<Certificate> decode_der_sim(std::string_view data) {
  Certificate cert;
  cert.basic_constraints = BasicConstraints{};
  bool saw_format = false;
  bool saw_issuer = false;
  bool saw_subject = false;

  for (const std::string& raw_line : util::split(data, '\n')) {
    if (raw_line.empty()) continue;
    const std::size_t colon = raw_line.find(':');
    if (colon == std::string::npos) return std::nullopt;
    const std::string_view key = std::string_view(raw_line).substr(0, colon);
    const std::string value = unescape(std::string_view(raw_line).substr(colon + 1));

    if (key == "format") {
      if (value != "certchain-der-sim/1") return std::nullopt;
      saw_format = true;
    } else if (key == "version") {
      std::int64_t v = 0;
      if (!parse_i64(value, v)) return std::nullopt;
      cert.version = static_cast<int>(v);
    } else if (key == "serial") {
      cert.serial = value;
    } else if (key == "issuer") {
      auto dn = DistinguishedName::parse(value);
      if (!dn) return std::nullopt;
      cert.issuer = *std::move(dn);
      saw_issuer = true;
    } else if (key == "subject") {
      auto dn = DistinguishedName::parse(value);
      if (!dn) return std::nullopt;
      cert.subject = *std::move(dn);
      saw_subject = true;
    } else if (key == "not-before") {
      if (!parse_i64(value, cert.validity.begin)) return std::nullopt;
    } else if (key == "not-after") {
      if (!parse_i64(value, cert.validity.end)) return std::nullopt;
    } else if (key == "key-alg") {
      bool found = false;
      for (const auto alg :
           {crypto::KeyAlgorithm::kRsa2048, crypto::KeyAlgorithm::kRsa4096,
            crypto::KeyAlgorithm::kEcdsaP256, crypto::KeyAlgorithm::kEd25519,
            crypto::KeyAlgorithm::kGostR3410}) {
        if (crypto::key_algorithm_name(alg) == value) {
          cert.public_key.algorithm = alg;
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;
    } else if (key == "key") {
      cert.public_key.material = value;
    } else if (key == "key-malformed") {
      cert.public_key.malformed = (value == "1");
    } else if (key == "sig-alg") {
      bool found = false;
      for (const auto alg :
           {crypto::SignatureAlgorithm::kSimSha256WithRsa,
            crypto::SignatureAlgorithm::kSimSha1WithRsa,
            crypto::SignatureAlgorithm::kSimEcdsaSha256,
            crypto::SignatureAlgorithm::kSimEd25519,
            crypto::SignatureAlgorithm::kSimGost}) {
        if (crypto::signature_algorithm_name(alg) == value) {
          cert.signature.algorithm = alg;
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;
    } else if (key == "sig") {
      cert.signature.value = value;
    } else if (key == "basic-constraints") {
      cert.basic_constraints.present = true;
      const auto parts = util::split(value, ',');
      if (parts.empty()) return std::nullopt;
      if (parts[0] == "CA:TRUE") {
        cert.basic_constraints.is_ca = true;
      } else if (parts[0] == "CA:FALSE") {
        cert.basic_constraints.is_ca = false;
      } else {
        return std::nullopt;
      }
      for (std::size_t i = 1; i < parts.size(); ++i) {
        if (util::starts_with(parts[i], "pathlen:")) {
          std::int64_t len = 0;
          if (!parse_i64(std::string_view(parts[i]).substr(8), len)) return std::nullopt;
          cert.basic_constraints.path_len_constraint = static_cast<int>(len);
        }
      }
    } else if (key == "nc-present") {
      cert.name_constraints.present = (value == "1");
    } else if (key == "nc-permit") {
      cert.name_constraints.present = true;
      cert.name_constraints.permitted_dns.push_back(value);
    } else if (key == "nc-exclude") {
      cert.name_constraints.present = true;
      cert.name_constraints.excluded_dns.push_back(value);
    } else if (key == "key-usage") {
      cert.key_usage.present = true;
      for (const auto& bit : util::split_nonempty(value, ',')) {
        if (bit == "digitalSignature") cert.key_usage.digital_signature = true;
        if (bit == "keyCertSign") cert.key_usage.key_cert_sign = true;
        if (bit == "cRLSign") cert.key_usage.crl_sign = true;
      }
    } else if (key == "san") {
      cert.subject_alt_names.push_back(value);
    } else if (key == "sct") {
      const std::size_t at = value.rfind('@');
      if (at == std::string::npos) return std::nullopt;
      EmbeddedSct sct;
      sct.log_id = value.substr(0, at);
      if (!parse_i64(std::string_view(value).substr(at + 1), sct.timestamp)) {
        return std::nullopt;
      }
      cert.scts.push_back(std::move(sct));
    } else if (key == "x-malformed-encoding") {
      cert.malformed_encoding = (value == "1");
    } else {
      return std::nullopt;  // unknown field: strict parse
    }
  }

  if (!saw_format || !saw_issuer || !saw_subject) return std::nullopt;
  return cert;
}

std::string encode_pem(const Certificate& cert) {
  const std::string body = util::base64_encode(encode_der_sim(cert));
  std::string out;
  out.reserve(body.size() + body.size() / 64 + 64);
  out.append(kBegin);
  out.push_back('\n');
  for (std::size_t i = 0; i < body.size(); i += 64) {
    out.append(body.substr(i, 64));
    out.push_back('\n');
  }
  out.append(kEnd);
  out.push_back('\n');
  return out;
}

std::optional<Certificate> decode_pem(std::string_view pem) {
  const std::size_t begin = pem.find(kBegin);
  if (begin == std::string_view::npos) return std::nullopt;
  const std::size_t body_start = begin + kBegin.size();
  const std::size_t end = pem.find(kEnd, body_start);
  if (end == std::string_view::npos) return std::nullopt;
  const auto decoded = util::base64_decode(pem.substr(body_start, end - body_start));
  if (!decoded) return std::nullopt;
  return decode_der_sim(*decoded);
}

std::vector<Certificate> decode_pem_bundle(std::string_view bundle,
                                           std::size_t* malformed_count) {
  std::vector<Certificate> certs;
  std::size_t malformed = 0;
  std::size_t cursor = 0;
  while (true) {
    const std::size_t begin = bundle.find(kBegin, cursor);
    if (begin == std::string_view::npos) break;
    const std::size_t end = bundle.find(kEnd, begin);
    if (end == std::string_view::npos) {
      ++malformed;
      break;
    }
    const std::size_t block_end = end + kEnd.size();
    if (auto cert = decode_pem(bundle.substr(begin, block_end - begin))) {
      certs.push_back(*std::move(cert));
    } else {
      ++malformed;
    }
    cursor = block_end;
  }
  if (malformed_count != nullptr) *malformed_count = malformed;
  return certs;
}

}  // namespace certchain::x509
