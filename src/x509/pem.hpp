// Certificate serialization.
//
// A Certificate serializes to a line-oriented text record (our stand-in for
// DER) and wraps in PEM armor ("-----BEGIN CERTIFICATE-----" + base64). The
// scanner's -showcerts output and the revisit corpus use this format, and
// round-tripping is exact: decode(encode(cert)) == cert, including the
// malformed_encoding flag (which a strict decoder reports as an error, the
// way a real ASN.1 parser would).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "x509/certificate.hpp"

namespace certchain::x509 {

/// Serializes to the inner (pre-base64) record format.
std::string encode_der_sim(const Certificate& cert);

/// Parses the inner record format. Returns nullopt on any structural damage.
/// Note: a certificate with malformed_encoding=true *decodes* fine here
/// (the damage is modeled as a flag); strict parsers reject it separately.
std::optional<Certificate> decode_der_sim(std::string_view data);

/// PEM armor: base64 of encode_der_sim wrapped at 64 columns.
std::string encode_pem(const Certificate& cert);

/// Decodes one PEM block. Returns nullopt on bad armor/base64/record.
std::optional<Certificate> decode_pem(std::string_view pem);

/// Decodes every CERTIFICATE block in a concatenated PEM bundle, in order
/// (the `openssl s_client -showcerts` shape). Blocks that fail to decode are
/// skipped; `malformed_count`, when provided, receives how many were skipped.
std::vector<Certificate> decode_pem_bundle(std::string_view bundle,
                                           std::size_t* malformed_count = nullptr);

}  // namespace certchain::x509
