#include "zeek/dpd.hpp"

namespace certchain::zeek {

std::string make_client_hello(int minor_version, std::string_view sni) {
  std::string out;
  out.push_back(kTlsHandshakeContentType);
  out.push_back(kTlsMajorVersion);
  out.push_back(static_cast<char>(minor_version));
  out.push_back(kClientHelloType);
  // SNI extension: length-prefixed host name (synthetic framing).
  out.push_back(static_cast<char>(sni.size() >> 8));
  out.push_back(static_cast<char>(sni.size() & 0xFF));
  out.append(sni);
  return out;
}

std::string make_plaintext_preamble(std::string_view protocol_banner) {
  return std::string(protocol_banner);
}

bool looks_like_tls(std::string_view first_flight) {
  if (first_flight.size() < 4) return false;
  if (first_flight[0] != kTlsHandshakeContentType) return false;
  if (first_flight[1] != kTlsMajorVersion) return false;
  const auto minor = static_cast<unsigned char>(first_flight[2]);
  if (minor < 1 || minor > 4) return false;
  return first_flight[3] == kClientHelloType;
}

std::string extract_sni(std::string_view first_flight) {
  if (!looks_like_tls(first_flight) || first_flight.size() < 6) return {};
  const std::size_t length =
      (static_cast<unsigned char>(first_flight[4]) << 8) |
      static_cast<unsigned char>(first_flight[5]);
  if (first_flight.size() < 6 + length) return {};
  return std::string(first_flight.substr(6, length));
}

}  // namespace certchain::zeek
