// Dynamic protocol detection (DPD) stub.
//
// Zeek identifies TLS traffic on any port by content, not port number [8 in
// the paper]; this is why Table 4 shows chains on ports like 8013 and 33854.
// The simulator renders a tiny synthetic "first flight" for each connection
// and this detector classifies it the way Zeek's TLS analyzer would: a TLS
// record-layer header (content type 22 = handshake, version 3.x) followed by
// a ClientHello byte.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace certchain::zeek {

/// Wire-format constants for the synthetic first flight.
inline constexpr char kTlsHandshakeContentType = 0x16;
inline constexpr char kTlsMajorVersion = 0x03;
inline constexpr char kClientHelloType = 0x01;

/// Renders a synthetic TLS first flight: record header + ClientHello marker +
/// optional SNI payload. `minor_version` is 1..4 (TLS 1.0 .. 1.3).
std::string make_client_hello(int minor_version, std::string_view sni);

/// Renders a synthetic non-TLS first flight (e.g. plain HTTP / SSH banner).
std::string make_plaintext_preamble(std::string_view protocol_banner);

/// Zeek-style content-based detection: true iff the bytes start with a
/// plausible TLS handshake record regardless of the port it ran on.
bool looks_like_tls(std::string_view first_flight);

/// Extracts the SNI from a synthetic ClientHello; empty when absent.
std::string extract_sni(std::string_view first_flight);

}  // namespace certchain::zeek
