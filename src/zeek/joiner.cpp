#include "zeek/joiner.hpp"

#include "core/dn_pool.hpp"
#include "util/strings.hpp"

namespace certchain::zeek {

namespace {

x509::DistinguishedName parse_dn_lenient(const std::string& text) {
  if (auto parsed = x509::DistinguishedName::parse(text)) return *std::move(parsed);
  x509::DistinguishedName fallback;
  fallback.add("CN", text);  // keep the raw string visible to the analysis
  return fallback;
}

crypto::KeyAlgorithm parse_key_alg(const std::string& name) {
  for (const auto alg :
       {crypto::KeyAlgorithm::kRsa2048, crypto::KeyAlgorithm::kRsa4096,
        crypto::KeyAlgorithm::kEcdsaP256, crypto::KeyAlgorithm::kEd25519,
        crypto::KeyAlgorithm::kGostR3410}) {
    if (crypto::key_algorithm_name(alg) == name) return alg;
  }
  return crypto::KeyAlgorithm::kRsa2048;
}

crypto::SignatureAlgorithm parse_sig_alg(const std::string& name) {
  for (const auto alg :
       {crypto::SignatureAlgorithm::kSimSha256WithRsa,
        crypto::SignatureAlgorithm::kSimSha1WithRsa,
        crypto::SignatureAlgorithm::kSimEcdsaSha256,
        crypto::SignatureAlgorithm::kSimEd25519,
        crypto::SignatureAlgorithm::kSimGost}) {
    if (crypto::signature_algorithm_name(alg) == name) return alg;
  }
  return crypto::SignatureAlgorithm::kSimSha256WithRsa;
}

}  // namespace

x509::Certificate certificate_from_record(const X509LogRecord& record,
                                          core::DnPool* pool) {
  x509::Certificate cert;
  cert.version = record.version;
  cert.serial = record.serial;
  if (pool != nullptr) {
    // Raw-bytes memo: each distinct spelling parses once, ever. The stored
    // parse is of *these* bytes, so rendering is unchanged vs. the poolless
    // path even for canonically colliding spellings.
    const core::DnPool::Interned issuer = pool->intern_raw(record.issuer);
    const core::DnPool::Interned subject = pool->intern_raw(record.subject);
    cert.issuer = *issuer.name;
    cert.subject = *subject.name;
    cert.issuer_id = issuer.id;
    cert.subject_id = subject.id;
  } else {
    cert.issuer = parse_dn_lenient(record.issuer);
    cert.subject = parse_dn_lenient(record.subject);
  }
  cert.validity = util::TimeRange{record.not_before, record.not_after};
  cert.public_key.algorithm = parse_key_alg(record.key_alg);
  cert.public_key.material.clear();  // X509.log carries no key material
  cert.signature.algorithm = parse_sig_alg(record.sig_alg);
  cert.signature.value.clear();
  if (record.basic_constraints_ca.has_value()) {
    cert.basic_constraints.present = true;
    cert.basic_constraints.is_ca = *record.basic_constraints_ca;
    cert.basic_constraints.path_len_constraint = record.basic_constraints_path_len;
  }
  cert.subject_alt_names = record.san_dns;
  return cert;
}

X509LogRecord record_from_certificate(const x509::Certificate& cert,
                                      util::SimTime observed_at,
                                      const std::string& fuid) {
  X509LogRecord record;
  record.ts = observed_at;
  record.fuid = fuid;
  record.version = cert.version;
  record.serial = cert.serial;
  record.subject = cert.subject.to_string();
  record.issuer = cert.issuer.to_string();
  record.not_before = cert.validity.begin;
  record.not_after = cert.validity.end;
  record.key_alg = std::string(crypto::key_algorithm_name(cert.public_key.algorithm));
  record.sig_alg =
      std::string(crypto::signature_algorithm_name(cert.signature.algorithm));
  record.key_length = cert.public_key.bits();
  if (cert.basic_constraints.present) {
    record.basic_constraints_ca = cert.basic_constraints.is_ca;
    record.basic_constraints_path_len = cert.basic_constraints.path_len_constraint;
  }
  record.san_dns = cert.subject_alt_names;
  return record;
}

LogJoiner::LogJoiner(const std::vector<X509LogRecord>& certificates) {
  for (const X509LogRecord& record : certificates) add(record);
}

void LogJoiner::add(const X509LogRecord& certificate) {
  // First observation wins; fuids are content-derived so duplicates carry
  // identical fields anyway. try_emplace skips certificate construction
  // entirely on the duplicate path.
  const auto [it, inserted] = by_fuid_.try_emplace(certificate.fuid);
  if (!inserted) return;
  it->second = certificate_from_record(certificate, dn_pool_);
  // The joined certificate is immutable from here on; sealing makes every
  // later fingerprint() — one per cert per connection in the corpus fold —
  // a memo read instead of a digest.
  it->second.seal_fingerprint();
}

JoinedConnection LogJoiner::join(const SslLogRecord& ssl) const {
  JoinedConnection joined;
  joined.ssl = ssl;
  for (const std::string& fuid : ssl.cert_chain_fuids) {
    const auto it = by_fuid_.find(fuid);
    if (it == by_fuid_.end()) {
      joined.missing_fuids.push_back(fuid);
    } else {
      joined.chain.push_back(it->second);
    }
  }
  return joined;
}

std::vector<JoinedConnection> LogJoiner::join_all(
    const std::vector<SslLogRecord>& ssl) const {
  std::vector<JoinedConnection> out;
  out.reserve(ssl.size());
  for (const SslLogRecord& record : ssl) out.push_back(join(record));
  return out;
}

}  // namespace certchain::zeek
