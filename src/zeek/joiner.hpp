// SSL.log x X509.log join.
//
// Each SSL.log row references the certificates its handshake delivered via
// cert_chain_fuids; the X509.log rows carry the certificate fields. LogJoiner
// performs the cross-reference and reconstructs a (key-less) CertificateChain
// in delivery order — the exact view the paper's pipeline analyzed. Missing
// fuids (a real artifact of log rotation and sampling) are reported rather
// than silently dropped.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "zeek/records.hpp"

namespace certchain::zeek {

/// One TLS connection with its reconstructed certificate chain.
struct JoinedConnection {
  SslLogRecord ssl;
  chain::CertificateChain chain;
  std::vector<std::string> missing_fuids;

  bool complete() const { return missing_fuids.empty(); }
};

/// Converts one X509.log row to a key-less x509::Certificate. Issuer/subject
/// strings that fail DN parsing degrade to a single unparsed-CN RDN so the
/// pipeline still sees the row (mirrors how string-level tooling behaves).
/// With a pool, DN parsing is memoized by raw bytes and the certificate
/// carries interned issuer/subject ids (DESIGN.md §16).
x509::Certificate certificate_from_record(const X509LogRecord& record,
                                          core::DnPool* pool = nullptr);

/// Projects a certificate to its X509.log row (used by the simulator).
X509LogRecord record_from_certificate(const x509::Certificate& cert,
                                      util::SimTime observed_at,
                                      const std::string& fuid);

class LogJoiner {
 public:
  /// An empty joiner that learns certificates incrementally via add() — the
  /// live-serving shape (svc::ServiceState feeds appended X509 rows in as
  /// they arrive, then joins the SSL rows of the same append).
  LogJoiner() = default;
  explicit LogJoiner(const std::vector<X509LogRecord>& certificates);

  /// Attaches an interning pool (not owned; must outlive the joiner). Every
  /// certificate built from then on parses its DNs at most once per distinct
  /// spelling, carries DnIds, and is fingerprint-sealed so per-connection
  /// corpus folds stop re-digesting identical certificates.
  void set_dn_pool(core::DnPool* pool) { dn_pool_ = pool; }
  core::DnPool* dn_pool() const { return dn_pool_; }

  /// Registers one certificate row; a re-observed fuid keeps the first
  /// record (fuids are content-addressed in practice).
  void add(const X509LogRecord& certificate);

  std::size_t certificate_count() const { return by_fuid_.size(); }

  /// The joined certificate index (fuid -> certificate). The streaming
  /// engine's checkpoint restore resolves chain fingerprints against this
  /// view instead of serializing certificates into the snapshot.
  const std::map<std::string, x509::Certificate>& certificates() const {
    return by_fuid_;
  }

  JoinedConnection join(const SslLogRecord& ssl) const;
  std::vector<JoinedConnection> join_all(const std::vector<SslLogRecord>& ssl) const;

 private:
  std::map<std::string, x509::Certificate> by_fuid_;
  core::DnPool* dn_pool_ = nullptr;
};

}  // namespace certchain::zeek
