#include "zeek/log_io.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdio>

#include "util/strings.hpp"

namespace certchain::zeek {

namespace tsv {

std::string render_time(util::SimTime t) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld.000000", static_cast<long long>(t));
  return buffer;
}

std::optional<util::SimTime> parse_time(std::string_view text) {
  const std::size_t dot = text.find('.');
  const std::string_view whole = dot == std::string_view::npos ? text : text.substr(0, dot);
  util::SimTime value = 0;
  const auto result = std::from_chars(whole.data(), whole.data() + whole.size(), value);
  if (result.ec != std::errc{} || result.ptr != whole.data() + whole.size()) {
    return std::nullopt;
  }
  return value;
}

std::string render_bool(bool b) { return b ? "T" : "F"; }

std::optional<bool> parse_bool(std::string_view text) {
  if (text == "T") return true;
  if (text == "F") return false;
  return std::nullopt;
}

std::string render_vector(const std::vector<std::string>& items) {
  if (items.empty()) return std::string(kEmpty);
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out.push_back(',');
    out.append(escape_field(items[i]));
  }
  return out;
}

std::vector<std::string> parse_vector(std::string_view text) {
  if (text == kEmpty || text == kUnset) return {};
  std::vector<std::string> out;
  out.reserve(1 + static_cast<std::size_t>(
                      std::count(text.begin(), text.end(), ',')));
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(',', start);
    const std::string_view part =
        text.substr(start, pos == std::string_view::npos ? pos : pos - start);
    if (part.find('\\') == std::string_view::npos) {
      out.emplace_back(part);  // fast path: nothing to unescape
    } else {
      out.push_back(unescape_field(part));
    }
    if (pos == std::string_view::npos) return out;
    start = pos + 1;
  }
}

std::string escape_field(std::string_view value) {
  // Zeek escapes separator bytes as \xNN; tabs, newlines and commas (the
  // vector separator) are the ones that can occur in DN strings.
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\t': out.append("\\x09"); break;
      case '\n': out.append("\\x0a"); break;
      case ',': out.append("\\x2c"); break;
      case '\\': out.append("\\x5c"); break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string unescape_field(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] == '\\' && i + 3 < value.size() && value[i + 1] == 'x') {
      const char hex[3] = {value[i + 2], value[i + 3], 0};
      char* end = nullptr;
      const long code = std::strtol(hex, &end, 16);
      if (end == hex + 2) {
        out.push_back(static_cast<char>(code));
        i += 3;
        continue;
      }
    }
    out.push_back(value[i]);
  }
  return out;
}

}  // namespace tsv

namespace {

constexpr std::string_view kSslFields =
    "ts\tuid\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\tversion\tcipher\t"
    "server_name\tresumed\testablished\tcert_chain_fuids\tsubject\tissuer\t"
    "validation_status";
constexpr std::string_view kSslTypes =
    "time\tstring\taddr\tport\taddr\tport\tstring\tstring\tstring\tbool\tbool\t"
    "vector[string]\tstring\tstring\tstring";

constexpr std::string_view kX509Fields =
    "ts\tfuid\tcertificate.version\tcertificate.serial\tcertificate.subject\t"
    "certificate.issuer\tcertificate.not_valid_before\tcertificate.not_valid_after\t"
    "certificate.key_alg\tcertificate.sig_alg\tcertificate.key_length\t"
    "basic_constraints.ca\tbasic_constraints.path_len\tsan.dns";
constexpr std::string_view kX509Types =
    "time\tstring\tcount\tstring\tstring\tstring\ttime\ttime\tstring\tstring\t"
    "count\tbool\tcount\tvector[string]";

std::string header(std::string_view path, std::string_view fields,
                   std::string_view types) {
  std::string out;
  out.append("#separator \\x09\n");
  out.append("#set_separator\t,\n");
  out.append("#empty_field\t(empty)\n");
  out.append("#unset_field\t-\n");
  out.append("#path\t").append(path).append("\n");
  out.append("#fields\t").append(fields).append("\n");
  out.append("#types\t").append(types).append("\n");
  return out;
}

void append_field(std::string& row, std::string_view value, bool first = false) {
  if (!first) row.push_back('\t');
  row.append(value.empty() ? tsv::kUnset : value);
}

void record_error(ParseDiagnostics* diagnostics, std::size_t line_number,
                  std::string_view message) {
  if (diagnostics == nullptr) return;
  ++diagnostics->skipped_lines;
  if (diagnostics->errors.size() < 32) {
    diagnostics->errors.push_back("line " + std::to_string(line_number) + ": " +
                                  std::string(message));
  }
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto result = std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc{} || result.ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::string render_ssl_row(const SslLogRecord& record) {
  std::string row;
  append_field(row, tsv::render_time(record.ts), true);
  append_field(row, record.uid);
  append_field(row, record.id_orig_h);
  append_field(row, std::to_string(record.id_orig_p));
  append_field(row, record.id_resp_h);
  append_field(row, std::to_string(record.id_resp_p));
  append_field(row, record.version);
  append_field(row, record.cipher);
  append_field(row, tsv::escape_field(record.server_name));
  append_field(row, tsv::render_bool(record.resumed));
  append_field(row, tsv::render_bool(record.established));
  append_field(row, tsv::render_vector(record.cert_chain_fuids));
  append_field(row, tsv::escape_field(record.subject));
  append_field(row, tsv::escape_field(record.issuer));
  append_field(row, tsv::escape_field(record.validation_status));
  return row;
}

std::string render_x509_row(const X509LogRecord& record) {
  std::string row;
  append_field(row, tsv::render_time(record.ts), true);
  append_field(row, record.fuid);
  append_field(row, std::to_string(record.version));
  append_field(row, record.serial);
  append_field(row, tsv::escape_field(record.subject));
  append_field(row, tsv::escape_field(record.issuer));
  append_field(row, tsv::render_time(record.not_before));
  append_field(row, tsv::render_time(record.not_after));
  append_field(row, record.key_alg);
  append_field(row, record.sig_alg);
  append_field(row, std::to_string(record.key_length));
  append_field(row, record.basic_constraints_ca
                        ? tsv::render_bool(*record.basic_constraints_ca)
                        : std::string(tsv::kUnset));
  append_field(row, record.basic_constraints_path_len
                        ? std::to_string(*record.basic_constraints_path_len)
                        : std::string(tsv::kUnset));
  append_field(row, tsv::render_vector(record.san_dns));
  return row;
}

SslLogWriter::SslLogWriter() = default;

void SslLogWriter::add(const SslLogRecord& record) {
  body_.append(render_ssl_row(record));
  body_.push_back('\n');
  ++count_;
}

std::string SslLogWriter::finish() const {
  return header("ssl", kSslFields, kSslTypes) + body_ + "#close\n";
}

X509LogWriter::X509LogWriter() = default;

void X509LogWriter::add(const X509LogRecord& record) {
  body_.append(render_x509_row(record));
  body_.push_back('\n');
  ++count_;
}

std::string X509LogWriter::finish() const {
  return header("x509", kX509Fields, kX509Types) + body_ + "#close\n";
}

namespace {

void set_error(std::string* error, std::string_view message) {
  if (error != nullptr) *error = std::string(message);
}

/// Unescapes into an owned string; the no-backslash fast path (virtually
/// every field) is a single copy with no scan-and-rebuild.
std::string unescape_owned(std::string_view value) {
  if (value.find('\\') == std::string_view::npos) return std::string(value);
  return tsv::unescape_field(value);
}

}  // namespace

std::optional<SslLogRecord> parse_ssl_row(std::string_view line,
                                          std::string* error) {
  std::array<std::string_view, 15> cells;
  if (!util::split_exact(line, '\t', cells.data(), cells.size())) {
    set_error(error, "wrong column count");
    return std::nullopt;
  }
  SslLogRecord record;
  const auto ts = tsv::parse_time(cells[0]);
  const auto orig_p = parse_u64(cells[3]);
  const auto resp_p = parse_u64(cells[5]);
  const auto resumed = tsv::parse_bool(cells[9]);
  const auto established = tsv::parse_bool(cells[10]);
  if (!ts || !orig_p || !resp_p || !resumed || !established) {
    set_error(error, "malformed scalar field");
    return std::nullopt;
  }
  record.ts = *ts;
  record.uid = cells[1];
  record.id_orig_h = cells[2];
  record.id_orig_p = static_cast<std::uint16_t>(*orig_p);
  record.id_resp_h = cells[4];
  record.id_resp_p = static_cast<std::uint16_t>(*resp_p);
  record.version = cells[6] == tsv::kUnset ? std::string_view{} : cells[6];
  record.cipher = cells[7] == tsv::kUnset ? std::string_view{} : cells[7];
  if (cells[8] != tsv::kUnset) record.server_name = unescape_owned(cells[8]);
  record.resumed = *resumed;
  record.established = *established;
  record.cert_chain_fuids = tsv::parse_vector(cells[11]);
  if (cells[12] != tsv::kUnset) record.subject = unescape_owned(cells[12]);
  if (cells[13] != tsv::kUnset) record.issuer = unescape_owned(cells[13]);
  if (cells[14] != tsv::kUnset) {
    record.validation_status = unescape_owned(cells[14]);
  }
  return record;
}

std::optional<X509LogRecord> parse_x509_row(std::string_view line,
                                            std::string* error) {
  std::array<std::string_view, 14> cells;
  if (!util::split_exact(line, '\t', cells.data(), cells.size())) {
    set_error(error, "wrong column count");
    return std::nullopt;
  }
  X509LogRecord record;
  const auto ts = tsv::parse_time(cells[0]);
  const auto version = parse_u64(cells[2]);
  const auto not_before = tsv::parse_time(cells[6]);
  const auto not_after = tsv::parse_time(cells[7]);
  const auto key_length = parse_u64(cells[10]);
  if (!ts || !version || !not_before || !not_after || !key_length) {
    set_error(error, "malformed scalar field");
    return std::nullopt;
  }
  record.ts = *ts;
  record.fuid = cells[1];
  record.version = static_cast<int>(*version);
  record.serial = cells[3];
  record.subject = unescape_owned(cells[4]);
  record.issuer = unescape_owned(cells[5]);
  record.not_before = *not_before;
  record.not_after = *not_after;
  record.key_alg = cells[8];
  record.sig_alg = cells[9];
  record.key_length = static_cast<int>(*key_length);
  if (cells[11] != tsv::kUnset) {
    const auto ca = tsv::parse_bool(cells[11]);
    if (!ca) {
      set_error(error, "malformed basic_constraints.ca");
      return std::nullopt;
    }
    record.basic_constraints_ca = *ca;
  }
  if (cells[12] != tsv::kUnset) {
    const auto path_len = parse_u64(cells[12]);
    if (!path_len) {
      set_error(error, "malformed basic_constraints.path_len");
      return std::nullopt;
    }
    record.basic_constraints_path_len = static_cast<int>(*path_len);
  }
  record.san_dns = tsv::parse_vector(cells[13]);
  return record;
}

namespace {

/// Shared header-aware batch loop over body rows. Lines are views into
/// `text` — the whole log is scanned without copying a single line.
template <typename Record, typename RowParser>
std::vector<Record> parse_log(std::string_view text, std::string_view expected_fields,
                              ParseDiagnostics* diagnostics, RowParser&& parse_row) {
  std::vector<Record> records;
  bool fields_ok = false;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t newline = text.find('\n', start);
    const std::string_view line =
        newline == std::string_view::npos
            ? text.substr(start)
            : text.substr(start, newline - start);
    start = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    ++line_number;
    if (diagnostics != nullptr) ++diagnostics->total_lines;
    if (line.empty()) continue;
    if (line.front() == '#') {
      if (util::starts_with(line, "#fields\t")) {
        fields_ok = line.substr(8) == expected_fields;
        if (!fields_ok) record_error(diagnostics, line_number, "unknown #fields layout");
      }
      continue;
    }
    if (!fields_ok) {
      record_error(diagnostics, line_number, "data before a recognized #fields header");
      continue;
    }
    std::string error;
    if (auto record = parse_row(line, &error)) {
      records.push_back(*std::move(record));
    } else {
      record_error(diagnostics, line_number, error);
    }
  }
  return records;
}

}  // namespace

std::vector<SslLogRecord> parse_ssl_log(std::string_view text,
                                        ParseDiagnostics* diagnostics) {
  return parse_log<SslLogRecord>(text, kSslFields, diagnostics, parse_ssl_row);
}

std::vector<X509LogRecord> parse_x509_log(std::string_view text,
                                          ParseDiagnostics* diagnostics) {
  return parse_log<X509LogRecord>(text, kX509Fields, diagnostics, parse_x509_row);
}

}  // namespace certchain::zeek
