// Zeek TSV log serialization.
//
// Writes and reads the Zeek ASCII log format: '#'-prefixed header lines
// (separator, fields, types), tab-separated rows, "-" for unset fields,
// "(empty)" for empty vectors, and comma-joined vector elements. The netsim
// streams its synthetic traffic through this format so the analysis pipeline
// consumes byte-faithful Zeek logs rather than in-memory shortcuts.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "zeek/records.hpp"

namespace certchain::zeek {

/// Zeek-style field rendering helpers.
namespace tsv {
inline constexpr std::string_view kUnset = "-";
inline constexpr std::string_view kEmpty = "(empty)";

std::string render_time(util::SimTime t);           // "1598918400.000000"
std::optional<util::SimTime> parse_time(std::string_view text);
std::string render_bool(bool b);                    // "T"/"F"
std::optional<bool> parse_bool(std::string_view text);
std::string render_vector(const std::vector<std::string>& items);
std::vector<std::string> parse_vector(std::string_view text);
/// Escapes the separator characters inside a field value.
std::string escape_field(std::string_view value);
std::string unescape_field(std::string_view value);
}  // namespace tsv

/// Renders one SSL.log body row (no trailing newline). The writers append
/// these verbatim; external producers (the revisit fleet) use them to
/// synthesize ingest batches byte-identical to writer-produced logs.
std::string render_ssl_row(const SslLogRecord& record);

/// Renders one X509.log body row (no trailing newline).
std::string render_x509_row(const X509LogRecord& record);

/// Serializes SSL.log.
class SslLogWriter {
 public:
  SslLogWriter();
  void add(const SslLogRecord& record);
  std::size_t count() const { return count_; }
  /// Full log text including header and closing line.
  std::string finish() const;

 private:
  std::string body_;
  std::size_t count_ = 0;
};

/// Serializes X509.log.
class X509LogWriter {
 public:
  X509LogWriter();
  void add(const X509LogRecord& record);
  std::size_t count() const { return count_; }
  std::string finish() const;

 private:
  std::string body_;
  std::size_t count_ = 0;
};

/// Parse outcomes carry per-line diagnostics instead of throwing: real log
/// files contain damage, and the reader's job is to keep going.
struct ParseDiagnostics {
  std::size_t total_lines = 0;
  std::size_t skipped_lines = 0;
  std::vector<std::string> errors;  // capped at 32 entries
};

/// Parses one SSL.log body row (no header handling). On failure returns
/// nullopt and, when `error` is given, a short reason. The batch and
/// streaming readers both sit on top of these row parsers.
std::optional<SslLogRecord> parse_ssl_row(std::string_view line,
                                          std::string* error = nullptr);

/// Parses one X509.log body row.
std::optional<X509LogRecord> parse_x509_row(std::string_view line,
                                            std::string* error = nullptr);

/// Parses an SSL.log text (header + rows). Unknown header layouts are
/// rejected; damaged rows are skipped and reported via diagnostics.
std::vector<SslLogRecord> parse_ssl_log(std::string_view text,
                                        ParseDiagnostics* diagnostics = nullptr);

/// Parses an X509.log text.
std::vector<X509LogRecord> parse_x509_log(std::string_view text,
                                          ParseDiagnostics* diagnostics = nullptr);

}  // namespace certchain::zeek
