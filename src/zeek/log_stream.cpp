#include "zeek/log_stream.hpp"

#include <algorithm>

namespace certchain::zeek {

ShardHeaderScan scan_shard_header_state(std::string_view shard,
                                        std::string_view expected_fields) {
  ShardHeaderScan scan;
  scan.newlines =
      static_cast<std::size_t>(std::count(shard.begin(), shard.end(), '\n'));

  // Directive lines are rare, so jump between '#'-at-line-start positions
  // instead of walking every line. Shards are line-aligned, so a directive
  // line never straddles a shard boundary.
  std::size_t line_start = 0;
  while (line_start != std::string_view::npos && line_start < shard.size()) {
    if (shard[line_start] == '#') {
      std::size_t line_end = shard.find('\n', line_start);
      if (line_end == std::string_view::npos) line_end = shard.size();
      const std::string_view line = shard.substr(line_start, line_end - line_start);
      if (line.rfind("#close", 0) == 0) {
        scan.has_directive = true;
        scan.exit_in_body = false;
      } else if (line.rfind("#fields\t", 0) == 0) {
        scan.has_directive = true;
        scan.exit_in_body = (line.substr(8) == expected_fields);
      }
      line_start = line_end == shard.size() ? std::string_view::npos : line_end + 1;
      continue;
    }
    // Skip to the start of the next '#' line.
    const std::size_t next = shard.find("\n#", line_start);
    line_start = next == std::string_view::npos ? std::string_view::npos : next + 1;
  }
  return scan;
}

// The canonical field layouts live in log_io.cpp; re-derive them here from a
// rendered header so the two stay in sync by construction.
namespace {

std::string fields_of(const std::string& rendered_log) {
  const std::size_t begin = rendered_log.find("#fields\t");
  const std::size_t end = rendered_log.find('\n', begin);
  return rendered_log.substr(begin + 8, end - begin - 8);
}

}  // namespace

std::string ssl_log_fields() {
  static const std::string fields = fields_of(SslLogWriter().finish());
  return fields;
}

std::string x509_log_fields() {
  static const std::string fields = fields_of(X509LogWriter().finish());
  return fields;
}

template <>
std::optional<SslLogRecord> StreamingLogReader<SslLogRecord>::parse_row(
    std::string_view line, std::string* error) {
  return parse_ssl_row(line, error);
}

template <>
std::optional<X509LogRecord> StreamingLogReader<X509LogRecord>::parse_row(
    std::string_view line, std::string* error) {
  return parse_x509_row(line, error);
}

StreamingSslReader make_streaming_ssl_reader(StreamingSslReader::Callback callback) {
  return StreamingSslReader(ssl_log_fields(), std::move(callback));
}

StreamingX509Reader make_streaming_x509_reader(
    StreamingX509Reader::Callback callback) {
  return StreamingX509Reader(x509_log_fields(), std::move(callback));
}

}  // namespace certchain::zeek
