#include "zeek/log_stream.hpp"

namespace certchain::zeek {

// The canonical field layouts live in log_io.cpp; re-derive them here from a
// rendered header so the two stay in sync by construction.
namespace {

std::string fields_of(const std::string& rendered_log) {
  const std::size_t begin = rendered_log.find("#fields\t");
  const std::size_t end = rendered_log.find('\n', begin);
  return rendered_log.substr(begin + 8, end - begin - 8);
}

}  // namespace

std::string ssl_log_fields() {
  static const std::string fields = fields_of(SslLogWriter().finish());
  return fields;
}

std::string x509_log_fields() {
  static const std::string fields = fields_of(X509LogWriter().finish());
  return fields;
}

template <>
std::optional<SslLogRecord> StreamingLogReader<SslLogRecord>::parse_row(
    std::string_view line, std::string* error) {
  return parse_ssl_row(line, error);
}

template <>
std::optional<X509LogRecord> StreamingLogReader<X509LogRecord>::parse_row(
    std::string_view line, std::string* error) {
  return parse_x509_row(line, error);
}

StreamingSslReader make_streaming_ssl_reader(StreamingSslReader::Callback callback) {
  return StreamingSslReader(ssl_log_fields(), std::move(callback));
}

StreamingX509Reader make_streaming_x509_reader(
    StreamingX509Reader::Callback callback) {
  return StreamingX509Reader(x509_log_fields(), std::move(callback));
}

}  // namespace certchain::zeek
