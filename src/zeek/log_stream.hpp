// Incremental Zeek log consumption.
//
// The paper's logs were "streamed to a secure cluster" (§3.1): consumers see
// the files grow chunk by chunk, lines split across reads, and rotation
// boundaries (#close followed by a fresh header). StreamingSslReader /
// StreamingX509Reader parse that stream incrementally, emitting records via
// callback as soon as their line completes, and survive rotation without
// losing rows. Damage never throws: malformed body rows are counted (with a
// capped sample of line-level errors) and the stream keeps flowing, which is
// what the pipeline's lenient ingestion mode reports on.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "zeek/log_io.hpp"
#include "zeek/records.hpp"

namespace certchain::zeek {

/// A recorded parse failure ("what went wrong on which line").
struct ReaderLineError {
  std::size_t line_number = 0;  // 1-based within the stream
  std::string message;
};

/// The complete mutable state of a StreamingLogReader at a feed() boundary:
/// the unterminated line tail, the header state, and every counter and
/// recorded error. Serializing this (plus the source byte offset) is all a
/// stream checkpoint needs to resume parsing exactly where a killed run
/// stopped — the restored reader is indistinguishable from one that consumed
/// the whole prefix itself (DESIGN.md §11).
struct ReaderCheckpoint {
  std::string buffer;  // pending partial line
  bool in_body = false;
  std::size_t line_offset = 0;
  std::size_t bytes_consumed = 0;
  std::size_t lines_seen = 0;
  std::size_t records_emitted = 0;
  std::size_t lines_skipped = 0;
  std::size_t malformed_rows = 0;
  std::size_t rotations_seen = 0;
  std::vector<ReaderLineError> errors;
};

/// Incremental line assembler + per-kind row parser. F is invoked once per
/// successfully parsed record, in stream order.
template <typename Record>
class StreamingLogReader {
 public:
  using Callback = std::function<void(Record)>;
  using LineError = ReaderLineError;

  StreamingLogReader(std::string expected_fields, Callback callback)
      : expected_fields_(std::move(expected_fields)),
        callback_(std::move(callback)) {}

  /// Attaches a DN pool: every emitted record gets its subject/issuer
  /// interned (intern_dn_fields) before the callback sees it. Not part of
  /// checkpoint state — a restored reader re-attaches its pool.
  void set_dn_pool(core::DnPool* pool) { dn_pool_ = pool; }

  /// Primes the reader to take over mid-stream at a line-aligned shard
  /// boundary: `in_body` is the header state prevailing at the boundary
  /// (computed by scan_shard_header_state over the preceding shards) and
  /// `line_offset` the number of lines before it, so recorded error line
  /// numbers stay absolute within the original stream. Call before the
  /// first feed(). An unprimed reader starts at offset 0, outside any body —
  /// the whole-stream behaviour.
  void prime(bool in_body, std::size_t line_offset) {
    in_body_ = in_body;
    line_offset_ = line_offset;
  }

  /// Feeds a chunk of bytes; complete lines are consumed, the tail is kept
  /// for the next feed.
  void feed(std::string_view chunk) {
    bytes_consumed_ += chunk.size();
    buffer_.append(chunk);
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = buffer_.find('\n', start);
      if (newline == std::string::npos) break;
      consume_line(std::string_view(buffer_).substr(start, newline - start));
      start = newline + 1;
    }
    buffer_.erase(0, start);
  }

  /// Flushes a trailing unterminated line and resets the header state so the
  /// same reader instance can consume a fresh stream afterwards. Counters
  /// and recorded errors accumulate across streams (callers snapshot or
  /// construct a new reader for per-stream accounting).
  void finish() {
    if (!buffer_.empty()) {
      consume_line(buffer_);
      buffer_.clear();
    }
    in_body_ = false;
  }

  std::size_t lines_seen() const { return lines_seen_; }
  /// Total bytes fed into the reader (all chunks, including damage).
  std::size_t bytes_consumed() const { return bytes_consumed_; }
  std::size_t records_emitted() const { return records_emitted_; }
  /// Every line that was dropped: unknown headers, pre-header data, and
  /// malformed body rows.
  std::size_t lines_skipped() const { return lines_skipped_; }
  /// Subset of lines_skipped(): body rows that failed to parse.
  std::size_t malformed_rows() const { return malformed_rows_; }
  std::size_t rotations_seen() const { return rotations_seen_; }

  /// Capped sample of parse failures, in stream order.
  const std::vector<LineError>& errors() const { return errors_; }
  static constexpr std::size_t kMaxRecordedErrors = 32;

  /// Snapshots the reader's full state at a feed() boundary (checkpointing).
  ReaderCheckpoint checkpoint() const {
    ReaderCheckpoint state;
    state.buffer = buffer_;
    state.in_body = in_body_;
    state.line_offset = line_offset_;
    state.bytes_consumed = bytes_consumed_;
    state.lines_seen = lines_seen_;
    state.records_emitted = records_emitted_;
    state.lines_skipped = lines_skipped_;
    state.malformed_rows = malformed_rows_;
    state.rotations_seen = rotations_seen_;
    state.errors = errors_;
    return state;
  }

  /// Restores a checkpoint() snapshot. Call before the first feed(); the
  /// reader then continues the stream as if it had consumed the prefix.
  void restore(const ReaderCheckpoint& state) {
    buffer_ = state.buffer;
    in_body_ = state.in_body;
    line_offset_ = state.line_offset;
    bytes_consumed_ = state.bytes_consumed;
    lines_seen_ = state.lines_seen;
    records_emitted_ = state.records_emitted;
    lines_skipped_ = state.lines_skipped;
    malformed_rows_ = state.malformed_rows;
    rotations_seen_ = state.rotations_seen;
    errors_ = state.errors;
  }

 private:
  void consume_line(std::string_view line) {
    ++lines_seen_;
    if (line.empty()) return;
    if (line.front() == '#') {
      if (line.rfind("#close", 0) == 0) {
        // Rotation boundary: the next file announces its own header.
        ++rotations_seen_;
        in_body_ = false;
      } else if (line.rfind("#fields\t", 0) == 0) {
        in_body_ = (line.substr(8) == expected_fields_);
        if (!in_body_) {
          ++lines_skipped_;
          record_line_error("unknown #fields layout");
        }
      }
      return;
    }
    if (!in_body_) {
      ++lines_skipped_;
      record_line_error("data before a recognized #fields header");
      return;
    }
    std::string error;
    if (auto record = parse_row(line, &error)) {
      ++records_emitted_;
      if (dn_pool_ != nullptr) intern_dn_fields(*record, *dn_pool_);
      callback_(*std::move(record));
    } else {
      ++lines_skipped_;
      ++malformed_rows_;
      record_line_error(error);
    }
  }

  void record_line_error(std::string message) {
    if (errors_.size() >= kMaxRecordedErrors) return;
    errors_.push_back(LineError{line_offset_ + lines_seen_, std::move(message)});
  }

  std::optional<Record> parse_row(std::string_view line, std::string* error);

  std::string expected_fields_;
  Callback callback_;
  core::DnPool* dn_pool_ = nullptr;
  std::string buffer_;
  bool in_body_ = false;
  std::size_t line_offset_ = 0;
  std::size_t bytes_consumed_ = 0;
  std::size_t lines_seen_ = 0;
  std::size_t records_emitted_ = 0;
  std::size_t lines_skipped_ = 0;
  std::size_t malformed_rows_ = 0;
  std::size_t rotations_seen_ = 0;
  std::vector<LineError> errors_;
};

/// Field layouts matching the writers in log_io.cpp.
std::string ssl_log_fields();
std::string x509_log_fields();

/// Header-state summary of one line-aligned shard, computed without parsing
/// any rows: the number of newline characters it holds and — when it
/// contains `#fields` / `#close` directives — the body state left behind by
/// the last one. Combining these summaries left-to-right yields the exact
/// state a serial reader would be in at every shard boundary (the classic
/// scan trick), which is what StreamingLogReader::prime consumes. The
/// directive tests mirror consume_line exactly: `#close` leaves the body,
/// `#fields\t` enters it only for the expected layout, every other line
/// (data, blank, unknown directive) leaves the state untouched.
struct ShardHeaderScan {
  std::size_t newlines = 0;
  bool has_directive = false;  // shard contains at least one state directive
  bool exit_in_body = false;   // state after its last directive (if any)
};

ShardHeaderScan scan_shard_header_state(std::string_view shard,
                                        std::string_view expected_fields);

using StreamingSslReader = StreamingLogReader<SslLogRecord>;
using StreamingX509Reader = StreamingLogReader<X509LogRecord>;

/// Factory helpers wiring the expected field layouts.
StreamingSslReader make_streaming_ssl_reader(StreamingSslReader::Callback callback);
StreamingX509Reader make_streaming_x509_reader(StreamingX509Reader::Callback callback);

}  // namespace certchain::zeek
