// Incremental Zeek log consumption.
//
// The paper's logs were "streamed to a secure cluster" (§3.1): consumers see
// the files grow chunk by chunk, lines split across reads, and rotation
// boundaries (#close followed by a fresh header). StreamingSslReader /
// StreamingX509Reader parse that stream incrementally, emitting records via
// callback as soon as their line completes, and survive rotation without
// losing rows.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "zeek/log_io.hpp"
#include "zeek/records.hpp"

namespace certchain::zeek {

/// Incremental line assembler + per-kind row parser. F is invoked once per
/// successfully parsed record, in stream order.
template <typename Record>
class StreamingLogReader {
 public:
  using Callback = std::function<void(Record)>;

  StreamingLogReader(std::string expected_fields, Callback callback)
      : expected_fields_(std::move(expected_fields)),
        callback_(std::move(callback)) {}

  /// Feeds a chunk of bytes; complete lines are consumed, the tail is kept
  /// for the next feed.
  void feed(std::string_view chunk) {
    buffer_.append(chunk);
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = buffer_.find('\n', start);
      if (newline == std::string::npos) break;
      consume_line(std::string_view(buffer_).substr(start, newline - start));
      start = newline + 1;
    }
    buffer_.erase(0, start);
  }

  /// Flushes a trailing unterminated line (call at end-of-stream).
  void finish() {
    if (!buffer_.empty()) {
      consume_line(buffer_);
      buffer_.clear();
    }
  }

  std::size_t records_emitted() const { return records_emitted_; }
  std::size_t lines_skipped() const { return lines_skipped_; }
  std::size_t rotations_seen() const { return rotations_seen_; }

 private:
  void consume_line(std::string_view line) {
    if (line.empty()) return;
    if (line.front() == '#') {
      if (line.rfind("#close", 0) == 0) {
        // Rotation boundary: the next file announces its own header.
        ++rotations_seen_;
        in_body_ = false;
      } else if (line.rfind("#fields\t", 0) == 0) {
        in_body_ = (line.substr(8) == expected_fields_);
        if (!in_body_) ++lines_skipped_;
      }
      return;
    }
    if (!in_body_) {
      ++lines_skipped_;
      return;
    }
    // Reuse the batch parser on a single synthetic one-row log.
    std::string mini = "#fields\t" + expected_fields_ + "\n";
    mini.append(line);
    mini.push_back('\n');
    auto rows = parse_rows(mini);
    if (rows.size() == 1) {
      ++records_emitted_;
      callback_(std::move(rows.front()));
    } else {
      ++lines_skipped_;
    }
  }

  std::vector<Record> parse_rows(std::string_view text);

  std::string expected_fields_;
  Callback callback_;
  std::string buffer_;
  bool in_body_ = false;
  std::size_t records_emitted_ = 0;
  std::size_t lines_skipped_ = 0;
  std::size_t rotations_seen_ = 0;
};

/// Field layouts matching the writers in log_io.cpp.
std::string ssl_log_fields();
std::string x509_log_fields();

using StreamingSslReader = StreamingLogReader<SslLogRecord>;
using StreamingX509Reader = StreamingLogReader<X509LogRecord>;

/// Factory helpers wiring the expected field layouts.
StreamingSslReader make_streaming_ssl_reader(StreamingSslReader::Callback callback);
StreamingX509Reader make_streaming_x509_reader(StreamingX509Reader::Callback callback);

}  // namespace certchain::zeek
