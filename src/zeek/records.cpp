#include "zeek/records.hpp"

#include "core/dn_pool.hpp"

namespace certchain::zeek {

void intern_dn_fields(SslLogRecord& record, core::DnPool& pool) {
  // SSL rows mirror the leaf's names only when Zeek saw certificates; "-"
  // parses to an empty field and stays uninterned.
  if (!record.subject.empty()) record.subject_id = pool.intern(record.subject);
  if (!record.issuer.empty()) record.issuer_id = pool.intern(record.issuer);
}

void intern_dn_fields(X509LogRecord& record, core::DnPool& pool) {
  record.subject_id = pool.intern(record.subject);
  record.issuer_id = pool.intern(record.issuer);
}

namespace {

core::DnId remap_one(core::DnId id, const std::vector<core::DnId>& id_map) {
  return id < id_map.size() ? id_map[id] : id;
}

}  // namespace

void remap_dn_ids(SslLogRecord& record, const std::vector<core::DnId>& id_map) {
  record.subject_id = remap_one(record.subject_id, id_map);
  record.issuer_id = remap_one(record.issuer_id, id_map);
}

void remap_dn_ids(X509LogRecord& record, const std::vector<core::DnId>& id_map) {
  record.subject_id = remap_one(record.subject_id, id_map);
  record.issuer_id = remap_one(record.issuer_id, id_map);
}

}  // namespace certchain::zeek
