// Zeek log record types.
//
// The study's raw inputs are Zeek's SSL.log (one row per TLS connection) and
// X509.log (one row per certificate observed in a handshake), joined by the
// per-certificate file ids listed in ssl.cert_chain_fuids. These structs
// mirror the authorized fields the paper used — deliberately *excluding*
// public keys and signatures, which Zeek's X509.log does not carry and whose
// absence motivates the issuer–subject methodology (§4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dn_id.hpp"
#include "util/time.hpp"

namespace certchain::core {
class DnPool;
}  // namespace certchain::core

namespace certchain::zeek {

/// One TLS connection (SSL.log row).
struct SslLogRecord {
  util::SimTime ts = 0;
  std::string uid;          // connection uid ("C...")
  std::string id_orig_h;    // client IP (campus side, post-NAT)
  std::uint16_t id_orig_p = 0;
  std::string id_resp_h;    // server IP
  std::uint16_t id_resp_p = 0;

  std::string version;      // "TLSv12", "TLSv13", ...
  std::string cipher;
  std::string server_name;  // SNI; empty when the client sent none
  bool resumed = false;
  bool established = false;  // the paper's success criterion (§4.2 footnote 1)

  /// File ids of the delivered certificates, leaf first. Empty for TLS 1.3
  /// connections (certificates are encrypted; §6.3) and resumed sessions.
  std::vector<std::string> cert_chain_fuids;

  /// Subject/issuer of the first certificate, as Zeek logs them.
  std::string subject;
  std::string issuer;

  /// Zeek's validation verdict for the delivered chain ("ok" or an error
  /// string); used when learning cross-sign pairs (App. D.1).
  std::string validation_status;

  /// Interned ids of subject/issuer when the record passed through a
  /// core::DnPool (intern_dn_fields), kInvalidDnId otherwise. Pool-local
  /// derived state: excluded from equality, remapped on shard merges.
  core::DnId subject_id = core::kInvalidDnId;
  core::DnId issuer_id = core::kInvalidDnId;

  /// Semantic equality over the logged fields; the derived pool ids are
  /// deliberately not compared.
  bool operator==(const SslLogRecord& other) const {
    return ts == other.ts && uid == other.uid &&
           id_orig_h == other.id_orig_h && id_orig_p == other.id_orig_p &&
           id_resp_h == other.id_resp_h && id_resp_p == other.id_resp_p &&
           version == other.version && cipher == other.cipher &&
           server_name == other.server_name && resumed == other.resumed &&
           established == other.established &&
           cert_chain_fuids == other.cert_chain_fuids &&
           subject == other.subject && issuer == other.issuer &&
           validation_status == other.validation_status;
  }
};

/// One observed certificate (X509.log row).
struct X509LogRecord {
  util::SimTime ts = 0;
  std::string fuid;  // file id referenced from SslLogRecord::cert_chain_fuids

  int version = 3;
  std::string serial;
  std::string subject;  // RFC 4514 one-line form
  std::string issuer;
  util::SimTime not_before = 0;
  util::SimTime not_after = 0;

  std::string key_alg;   // e.g. "rsa2048"
  std::string sig_alg;   // e.g. "sha256WithRSAEncryption"
  int key_length = 0;

  /// basicConstraints: unset (extension absent) vs explicit CA flag. The
  /// §4.3 omission statistics read straight off this optional.
  std::optional<bool> basic_constraints_ca;
  std::optional<int> basic_constraints_path_len;

  /// SAN DNS names.
  std::vector<std::string> san_dns;

  /// Interned ids of subject/issuer (see SslLogRecord); filled by
  /// intern_dn_fields on the pool-aware ingest path.
  core::DnId subject_id = core::kInvalidDnId;
  core::DnId issuer_id = core::kInvalidDnId;

  /// Semantic equality over the logged fields; pool ids excluded.
  bool operator==(const X509LogRecord& other) const {
    return ts == other.ts && fuid == other.fuid && version == other.version &&
           serial == other.serial && subject == other.subject &&
           issuer == other.issuer && not_before == other.not_before &&
           not_after == other.not_after && key_alg == other.key_alg &&
           sig_alg == other.sig_alg && key_length == other.key_length &&
           basic_constraints_ca == other.basic_constraints_ca &&
           basic_constraints_path_len == other.basic_constraints_path_len &&
           san_dns == other.san_dns;
  }
};

/// Interns the record's DN fields into `pool` and stamps the ids. The
/// raw-bytes memo inside the pool makes the repeat case (the overwhelming
/// majority) two hash lookups, no DN parsing.
void intern_dn_fields(SslLogRecord& record, core::DnPool& pool);
void intern_dn_fields(X509LogRecord& record, core::DnPool& pool);

/// Rewrites shard-local DnIds through an absorb() id-map (old id -> merged
/// id) — the record half of the shard-merge protocol (DESIGN.md §16). Ids
/// outside the map (including kInvalidDnId) are left untouched.
void remap_dn_ids(SslLogRecord& record, const std::vector<core::DnId>& id_map);
void remap_dn_ids(X509LogRecord& record, const std::vector<core::DnId>& id_map);

}  // namespace certchain::zeek
