// Zeek log record types.
//
// The study's raw inputs are Zeek's SSL.log (one row per TLS connection) and
// X509.log (one row per certificate observed in a handshake), joined by the
// per-certificate file ids listed in ssl.cert_chain_fuids. These structs
// mirror the authorized fields the paper used — deliberately *excluding*
// public keys and signatures, which Zeek's X509.log does not carry and whose
// absence motivates the issuer–subject methodology (§4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace certchain::zeek {

/// One TLS connection (SSL.log row).
struct SslLogRecord {
  util::SimTime ts = 0;
  std::string uid;          // connection uid ("C...")
  std::string id_orig_h;    // client IP (campus side, post-NAT)
  std::uint16_t id_orig_p = 0;
  std::string id_resp_h;    // server IP
  std::uint16_t id_resp_p = 0;

  std::string version;      // "TLSv12", "TLSv13", ...
  std::string cipher;
  std::string server_name;  // SNI; empty when the client sent none
  bool resumed = false;
  bool established = false;  // the paper's success criterion (§4.2 footnote 1)

  /// File ids of the delivered certificates, leaf first. Empty for TLS 1.3
  /// connections (certificates are encrypted; §6.3) and resumed sessions.
  std::vector<std::string> cert_chain_fuids;

  /// Subject/issuer of the first certificate, as Zeek logs them.
  std::string subject;
  std::string issuer;

  /// Zeek's validation verdict for the delivered chain ("ok" or an error
  /// string); used when learning cross-sign pairs (App. D.1).
  std::string validation_status;

  bool operator==(const SslLogRecord&) const = default;
};

/// One observed certificate (X509.log row).
struct X509LogRecord {
  util::SimTime ts = 0;
  std::string fuid;  // file id referenced from SslLogRecord::cert_chain_fuids

  int version = 3;
  std::string serial;
  std::string subject;  // RFC 4514 one-line form
  std::string issuer;
  util::SimTime not_before = 0;
  util::SimTime not_after = 0;

  std::string key_alg;   // e.g. "rsa2048"
  std::string sig_alg;   // e.g. "sha256WithRSAEncryption"
  int key_length = 0;

  /// basicConstraints: unset (extension absent) vs explicit CA flag. The
  /// §4.3 omission statistics read straight off this optional.
  std::optional<bool> basic_constraints_ca;
  std::optional<int> basic_constraints_path_len;

  /// SAN DNS names.
  std::vector<std::string> san_dns;

  bool operator==(const X509LogRecord&) const = default;
};

}  // namespace certchain::zeek
