// Shared test fixtures: tiny PKI builders used across the suite.
#pragma once

#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "truststore/trust_store.hpp"
#include "x509/builder.hpp"

namespace certchain::testing {

inline util::TimeRange test_validity() {
  return {util::make_time(2020, 1, 1), util::make_time(2022, 1, 1)};
}

inline x509::DistinguishedName dn(const std::string& text) {
  return x509::DistinguishedName::parse_or_die(text);
}

/// A self-signed certificate with the given CN (and optional O).
inline x509::Certificate self_signed(const std::string& cn,
                                     const std::string& org = "TestOrg") {
  const auto keys =
      crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, "test-ss/" + cn);
  x509::DistinguishedName name;
  name.add("CN", cn).add("O", org);
  return x509::CertificateBuilder()
      .serial("ss-" + cn)
      .subject(name)
      .validity(test_validity())
      .no_basic_constraints()
      .self_sign(keys.private_key);
}

/// A minimal 3-level test PKI: root CA -> intermediate CA -> leaf issuance.
struct TestPki {
  x509::CertificateAuthority root_ca{dn("CN=Test Root CA,O=TestPKI,C=US"),
                                     "test-root"};
  x509::CertificateAuthority intermediate_ca{
      dn("CN=Test Issuing CA,O=TestPKI,C=US"), "test-int"};
  x509::Certificate root_cert;
  x509::Certificate intermediate_cert;

  TestPki() {
    root_cert = root_ca.make_root(test_validity());
    intermediate_cert = root_ca.issue_intermediate(intermediate_ca, test_validity());
  }

  x509::Certificate leaf(const std::string& domain) {
    x509::DistinguishedName subject;
    subject.add("CN", domain);
    return intermediate_ca.issue_leaf(subject, domain, test_validity());
  }

  /// [leaf, intermediate] (+root).
  chain::CertificateChain chain_for(const std::string& domain,
                                    bool include_root = false) {
    chain::CertificateChain chain;
    chain.push_back(leaf(domain));
    chain.push_back(intermediate_cert);
    if (include_root) chain.push_back(root_cert);
    return chain;
  }

  /// A TrustStoreSet that trusts this PKI (root in all programs, the
  /// intermediate disclosed in CCADB).
  truststore::TrustStoreSet trusted_stores() const {
    truststore::TrustStoreSet stores;
    stores.add_to_all_programs(root_cert);
    truststore::CcadbRecord record;
    record.certificate = intermediate_cert;
    record.chains_to_participating_root = true;
    record.publicly_audited = true;
    stores.ccadb().add(std::move(record));
    return stores;
  }
};

inline chain::CertificateChain make_chain(std::vector<x509::Certificate> certs) {
  return chain::CertificateChain(std::move(certs));
}

}  // namespace certchain::testing
