// Chain categorization (§3.2.2) and the Table 3 / Table 7 taxonomies.
#include "chain/categorizer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../tests/helpers.hpp"

namespace certchain::chain {
namespace {

using certchain::testing::TestPki;
using certchain::testing::dn;
using certchain::testing::make_chain;
using certchain::testing::self_signed;
using certchain::testing::test_validity;

class CategorizerTest : public ::testing::Test {
 protected:
  TestPki pki_;
  truststore::TrustStoreSet stores_ = pki_.trusted_stores();
  InterceptionIssuerSet no_interception_;
};

TEST_F(CategorizerTest, PublicOnly) {
  EXPECT_EQ(categorize_chain(pki_.chain_for("pub.example", true), stores_,
                             no_interception_),
            ChainCategory::kPublicDbOnly);
}

TEST_F(CategorizerTest, NonPublicOnly) {
  const auto chain = make_chain({self_signed("priv-a"), self_signed("priv-b")});
  EXPECT_EQ(categorize_chain(chain, stores_, no_interception_),
            ChainCategory::kNonPublicDbOnly);
}

TEST_F(CategorizerTest, HybridMix) {
  auto chain = pki_.chain_for("mix.example");
  chain.push_back(self_signed("corp-root"));
  EXPECT_EQ(categorize_chain(chain, stores_, no_interception_),
            ChainCategory::kHybrid);
}

TEST_F(CategorizerTest, InterceptionWinsOverMix) {
  auto chain = pki_.chain_for("icept.example");
  x509::Certificate forged = self_signed("victim.example");
  forged.issuer = dn("CN=MBox SSL Inspection CA,O=MBox");
  chain.push_back(forged);
  InterceptionIssuerSet interception{forged.issuer.canonical()};
  EXPECT_EQ(categorize_chain(chain, stores_, interception),
            ChainCategory::kTlsInterception);
  EXPECT_EQ(categorize_chain(chain, stores_, no_interception_),
            ChainCategory::kHybrid);
}

// --- Table 3 structures ------------------------------------------------------

TEST_F(CategorizerTest, CompleteNonPubToPub) {
  // Non-public sub-CA anchored to the public root (Table 6 pattern).
  x509::CertificateAuthority sub_ca(dn("CN=Agency CA,O=Gov Agency"), "agency");
  const x509::Certificate sub_cert =
      pki_.root_ca.issue_intermediate(sub_ca, test_validity());
  x509::DistinguishedName subject;
  subject.add("CN", "portal.agency.example");
  const auto chain = make_chain({
      sub_ca.issue_leaf(subject, "portal.agency.example", test_validity()),
      sub_cert, pki_.root_cert});
  ASSERT_EQ(categorize_chain(chain, stores_, no_interception_),
            ChainCategory::kHybrid);
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  EXPECT_EQ(verdict.structure, HybridStructure::kCompleteNonPubToPub);
  EXPECT_TRUE(verdict.paths.is_complete_path());
}

TEST_F(CategorizerTest, CompletePubToPrivate) {
  // The Scalyr pattern: public path then a private cert whose subject mirrors
  // the public anchor.
  x509::CertificateAuthority shadow_ca(dn("CN=Corp Internal CA,O=Corp"), "shadow");
  const x509::Certificate shadow =
      x509::CertificateBuilder()
          .serial("77")
          .subject(pki_.root_ca.name())
          .issuer(shadow_ca.name())
          .validity(test_validity())
          .public_key(shadow_ca.public_key())
          .ca(true)
          .sign_with(shadow_ca.private_key());
  auto chain = pki_.chain_for("app.corp.example", true);
  chain.push_back(shadow);
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  EXPECT_EQ(verdict.structure, HybridStructure::kCompletePubToPrivate);
  EXPECT_TRUE(verdict.paths.is_complete_path());
}

TEST_F(CategorizerTest, ContainsCompletePath) {
  auto chain = pki_.chain_for("contains.example", true);
  chain.push_back(self_signed("athenz-ish"));
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  EXPECT_EQ(verdict.structure, HybridStructure::kContainsCompletePath);
  EXPECT_EQ(verdict.paths.unnecessary_certificates.size(), 1u);
}

// --- Table 7 no-path categories ----------------------------------------------

TEST_F(CategorizerTest, SelfSignedLeafThenMismatches) {
  const auto chain = make_chain({self_signed("localhost"), pki_.intermediate_cert,
                                 self_signed("stray")});
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  ASSERT_EQ(verdict.structure, HybridStructure::kNoCompletePath);
  EXPECT_EQ(verdict.no_path_category,
            NoPathCategory::kSelfSignedLeafThenMismatches);
}

TEST_F(CategorizerTest, SelfSignedLeafThenValidSubchain) {
  const auto chain = make_chain({self_signed("replacement"), pki_.intermediate_cert,
                                 pki_.root_cert});
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  ASSERT_EQ(verdict.structure, HybridStructure::kNoCompletePath);
  EXPECT_EQ(verdict.no_path_category,
            NoPathCategory::kSelfSignedLeafThenValidSubchain);
}

TEST_F(CategorizerTest, AllPairsMismatched) {
  // A public-issued leaf whose issuing intermediate is absent, followed by
  // an unrelated intermediate and a non-public tail with a distinct issuer.
  x509::CertificateAuthority unrelated_root(dn("CN=Unrelated Root,O=Elsewhere"),
                                            "unrelated-root");
  x509::CertificateAuthority unrelated_int(dn("CN=Unrelated CA,O=Elsewhere"),
                                           "unrelated-int");
  const x509::Certificate unrelated_cert =
      unrelated_root.issue_intermediate(unrelated_int, test_validity());
  x509::Certificate orphan = pki_.leaf("orphan.example");
  const auto chain = make_chain({orphan, unrelated_cert,
                                 [&] {
                                   x509::Certificate tail = self_signed("tail");
                                   tail.issuer = dn("CN=Tail Issuer");
                                   return tail;
                                 }()});
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  ASSERT_EQ(verdict.structure, HybridStructure::kNoCompletePath);
  EXPECT_EQ(verdict.no_path_category, NoPathCategory::kAllPairsMismatched);
  // The public leaf has no issuing intermediate in the chain.
  EXPECT_TRUE(verdict.public_leaf_without_issuer);
}

TEST_F(CategorizerTest, PartialPairsMismatched) {
  x509::Certificate foreign = self_signed("foreign");
  foreign.issuer = dn("CN=Elsewhere");
  // Leafless matched run: [intermediate, root]; foreign leaf breaks pair 0.
  const auto chain = make_chain({foreign, pki_.intermediate_cert, pki_.root_cert});
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  ASSERT_EQ(verdict.structure, HybridStructure::kNoCompletePath);
  EXPECT_EQ(verdict.no_path_category, NoPathCategory::kPartialPairsMismatched);
  EXPECT_FALSE(verdict.public_leaf_without_issuer);
}

TEST_F(CategorizerTest, NonPubRootAppendedToValidPublicSubchain) {
  const auto chain = make_chain({pki_.intermediate_cert, pki_.root_cert,
                                 self_signed("shadow-root")});
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  ASSERT_EQ(verdict.structure, HybridStructure::kNoCompletePath);
  EXPECT_EQ(verdict.no_path_category,
            NoPathCategory::kNonPubRootAppendedToValidPublicSubchain);
}

TEST_F(CategorizerTest, NonPubRootAndMismatches) {
  TestPki other;
  const auto chain = make_chain({pki_.intermediate_cert, other.intermediate_cert,
                                 self_signed("shadow-x")});
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  ASSERT_EQ(verdict.structure, HybridStructure::kNoCompletePath);
  EXPECT_EQ(verdict.no_path_category, NoPathCategory::kNonPubRootAndMismatches);
}

TEST_F(CategorizerTest, MismatchRatioRecordedForNoPathChains) {
  const auto chain = make_chain({self_signed("a"), self_signed("b"),
                                 self_signed("c")});
  const HybridClassification verdict = classify_hybrid(chain, stores_);
  EXPECT_DOUBLE_EQ(verdict.paths.match.mismatch_ratio(), 1.0);
}

TEST(CategoryNames, AllDistinct) {
  std::set<std::string_view> names;
  names.insert(chain_category_name(ChainCategory::kPublicDbOnly));
  names.insert(chain_category_name(ChainCategory::kNonPublicDbOnly));
  names.insert(chain_category_name(ChainCategory::kHybrid));
  names.insert(chain_category_name(ChainCategory::kTlsInterception));
  EXPECT_EQ(names.size(), 4u);

  std::set<std::string_view> structures;
  for (const auto s :
       {HybridStructure::kCompleteNonPubToPub, HybridStructure::kCompletePubToPrivate,
        HybridStructure::kContainsCompletePath, HybridStructure::kNoCompletePath}) {
    structures.insert(hybrid_structure_name(s));
  }
  EXPECT_EQ(structures.size(), 4u);

  std::set<std::string_view> categories;
  for (const auto c :
       {NoPathCategory::kSelfSignedLeafThenMismatches,
        NoPathCategory::kSelfSignedLeafThenValidSubchain,
        NoPathCategory::kAllPairsMismatched, NoPathCategory::kPartialPairsMismatched,
        NoPathCategory::kNonPubRootAppendedToValidPublicSubchain,
        NoPathCategory::kNonPubRootAndMismatches}) {
    categories.insert(no_path_category_name(c));
  }
  EXPECT_EQ(categories.size(), 6u);
}

}  // namespace
}  // namespace certchain::chain
