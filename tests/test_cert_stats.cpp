// Certificate population statistics (extension analyzer).
#include "core/cert_stats.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "obs/run_context.hpp"

namespace certchain::core {
namespace {

using certchain::testing::TestPki;
using certchain::testing::make_chain;
using certchain::testing::self_signed;

TEST(CertStats, DeduplicatesByFingerprintAcrossChains) {
  TestPki pki;
  ChainObservation a;
  a.chain = pki.chain_for("s1.example", true);
  ChainObservation b;
  b.chain = pki.chain_for("s2.example", true);  // shares int + root with a

  const CertPopulationStats stats = compute_cert_stats("test", {&a, &b});
  EXPECT_EQ(stats.label, "test");
  EXPECT_EQ(stats.distinct_certificates, 4u);  // 2 leaves + int + root
  EXPECT_EQ(stats.self_signed, 1u);            // the root
}

TEST(CertStats, LifetimeBuckets) {
  TestPki pki;
  const auto leaf_with_days = [&](const std::string& domain, int days) {
    x509::DistinguishedName subject;
    subject.add("CN", domain);
    const util::SimTime start = util::make_time(2021, 1, 1);
    return pki.intermediate_ca.issue_leaf(
        subject, domain, {start, start + days * util::kSecondsPerDay});
  };
  ChainObservation observation;
  observation.chain = make_chain({leaf_with_days("a.example", 90),
                                  leaf_with_days("b.example", 365),
                                  leaf_with_days("c.example", 700),
                                  leaf_with_days("d.example", 3650)});
  const CertPopulationStats stats = compute_cert_stats("lt", {&observation});
  EXPECT_EQ(stats.lifetime_le_90d, 1u);
  EXPECT_EQ(stats.lifetime_le_398d, 1u);
  EXPECT_EQ(stats.lifetime_le_2y, 1u);
  EXPECT_EQ(stats.lifetime_gt_2y, 1u);
  EXPECT_DOUBLE_EQ(stats.lifetimes_days.min(), 90.0);
}

TEST(CertStats, SanAndExpiryAccounting) {
  TestPki pki;
  ChainObservation observation;
  x509::Certificate no_san = self_signed("nosan");  // helpers add no SANs
  observation.chain = make_chain({pki.leaf("san.example"), no_san});
  observation.last_seen = util::make_time(2030, 1, 1);  // far future: expired
  const CertPopulationStats stats = compute_cert_stats("san", {&observation});
  EXPECT_EQ(stats.san_absent, 1u);
  EXPECT_EQ(stats.san_counts.count(1), 1u);
  EXPECT_EQ(stats.expired_when_observed, 2u);
}

TEST(CertStats, SkipsOutlierChains) {
  std::vector<x509::Certificate> junk;
  for (int i = 0; i < 40; ++i) junk.push_back(self_signed("junk" + std::to_string(i)));
  ChainObservation outlier;
  outlier.chain = make_chain(std::move(junk));
  const CertPopulationStats stats = compute_cert_stats("out", {&outlier});
  EXPECT_EQ(stats.distinct_certificates, 0u);
  // With the cap lifted they count.
  const CertPopulationStats uncapped = compute_cert_stats("out", {&outlier}, 100);
  EXPECT_EQ(uncapped.distinct_certificates, 40u);
}

TEST(CertStats, AlgorithmCounters) {
  TestPki pki;
  ChainObservation observation;
  observation.chain = pki.chain_for("alg.example", true);
  const CertPopulationStats stats = compute_cert_stats("alg", {&observation});
  EXPECT_EQ(stats.key_algorithms.total(), 3u);
  EXPECT_GE(stats.key_algorithms.count("ecdsa-p256"), 1u);  // the leaf key
  EXPECT_GE(stats.signature_algorithms.count("sha256WithRSAEncryption"), 1u);
}


TEST(CertStats, UniformEntryMatchesSerialAndPublishesTelemetry) {
  TestPki pki;
  ChainObservation a;
  a.chain = pki.chain_for("uniform1.example", true);
  ChainObservation b;
  b.chain = pki.chain_for("uniform2.example", true);
  const std::vector<const ChainObservation*> chains = {&a, &b};

  const CertPopulationStats serial = compute_cert_stats("u", chains);
  obs::RunContext context;
  RunOptions options;
  options.threads = 4;
  const CertPopulationStats uniform =
      compute_cert_stats("u", chains, 30, options, &context);

  EXPECT_EQ(uniform.distinct_certificates, serial.distinct_certificates);
  EXPECT_EQ(uniform.self_signed, serial.self_signed);
  EXPECT_EQ(uniform.key_algorithms.total(), serial.key_algorithms.total());
  EXPECT_EQ(context.metrics.counter("cert_stats.chains_in"), 2u);
  EXPECT_EQ(context.metrics.counter("cert_stats.distinct_certificates"),
            serial.distinct_certificates);
  ASSERT_EQ(context.trace.node_count(), 1u);
  EXPECT_EQ(context.trace.root().children[0]->name, "cert_stats");
  EXPECT_EQ(context.metrics.timings().count("time.cert_stats.ms"), 1u);
}

}  // namespace
}  // namespace certchain::core
