// Issuer–subject matching, matched-run/path detection, mismatch ratios,
// cross-sign suppression — the §4.2 / App. D.1 methodology.
#include "chain/matcher.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "chain/cross_sign_registry.hpp"

namespace certchain::chain {
namespace {

using certchain::testing::TestPki;
using certchain::testing::dn;
using certchain::testing::make_chain;
using certchain::testing::self_signed;

TEST(MatchChain, EmptyAndSingleHaveNoPairs) {
  EXPECT_TRUE(match_chain(CertificateChain()).pairs.empty());
  TestPki pki;
  const auto single = make_chain({pki.leaf("s.example")});
  const MatchResult result = match_chain(single);
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_DOUBLE_EQ(result.mismatch_ratio(), 0.0);
  EXPECT_TRUE(result.all_matched());
}

TEST(MatchChain, FullyMatchedChain) {
  TestPki pki;
  const MatchResult result = match_chain(pki.chain_for("ok.example", true));
  ASSERT_EQ(result.pairs.size(), 2u);
  EXPECT_TRUE(result.all_matched());
  EXPECT_EQ(result.mismatch_count(), 0u);
  EXPECT_FALSE(result.pairs[0].via_cross_sign);
}

TEST(MatchChain, DetectsMismatchPositions) {
  TestPki pki;
  // [leaf, stray, intermediate]: pairs 0 and 1 both mismatch.
  const auto chain =
      make_chain({pki.leaf("pos.example"), self_signed("stray"), pki.intermediate_cert});
  const MatchResult result = match_chain(chain);
  EXPECT_EQ(result.mismatch_count(), 2u);
  EXPECT_EQ(result.mismatch_indices(), (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(result.mismatch_ratio(), 1.0);
}

TEST(MatchChain, MatchingIsCaseInsensitive) {
  TestPki pki;
  x509::Certificate leaf = pki.leaf("case.example");
  // Uppercase the issuer string; canonical matching must still succeed.
  x509::DistinguishedName shouty;
  for (const auto& rdn : leaf.issuer.rdns()) {
    std::string upper = rdn.value;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    shouty.add(rdn.type, upper);
  }
  leaf.issuer = shouty;
  const MatchResult result = match_chain(make_chain({leaf, pki.intermediate_cert}));
  EXPECT_TRUE(result.all_matched());
}

TEST(MatchChain, Figure3BottomChainRatio) {
  // The paper's Figure 3 example: leaf + complete path + partial path with
  // mismatch ratio 0.4 (2 of 5 pairs mismatched).
  TestPki pki;
  TestPki other;  // a second, unrelated hierarchy
  const auto chain = make_chain({
      self_signed("extra-leaf"),           // pair 0: mismatch
      pki.leaf("fig3.example"),            // pair 1: match
      pki.intermediate_cert,               // pair 2: match
      pki.root_cert,                       // pair 3: mismatch (root -> other int)
      other.intermediate_cert,             // pair 4: match (other int -> other root)
      other.root_cert,
  });
  const MatchResult result = match_chain(chain);
  ASSERT_EQ(result.pairs.size(), 5u);
  // pair 3: issuer(pki.root)=pki root DN vs subject(other.intermediate).
  EXPECT_DOUBLE_EQ(result.mismatch_ratio(), 0.4);
}

TEST(CrossSignRegistry, PairAndEquivalenceCoverage) {
  CrossSignRegistry registry;
  const auto usertrust = dn("CN=USERTrust RSA,O=UT");
  const auto aaa = dn("CN=AAA Certificate Services,O=Comodo");
  EXPECT_FALSE(registry.covers(usertrust, aaa));

  registry.add_pair(usertrust, aaa);
  EXPECT_TRUE(registry.covers(usertrust, aaa));
  EXPECT_FALSE(registry.covers(aaa, usertrust));  // pairs are directed

  CrossSignRegistry equiv;
  equiv.add_equivalence(usertrust, aaa);
  EXPECT_TRUE(equiv.covers(usertrust, aaa));
  EXPECT_TRUE(equiv.covers(aaa, usertrust));  // equivalence is symmetric
  EXPECT_EQ(equiv.equivalence_count(), 1u);
}

TEST(CrossSignRegistry, TransitiveEquivalence) {
  CrossSignRegistry registry;
  const auto a = dn("CN=A");
  const auto b = dn("CN=B");
  const auto c = dn("CN=C");
  registry.add_equivalence(a, b);
  registry.add_equivalence(b, c);
  EXPECT_TRUE(registry.covers(a, c));
  EXPECT_TRUE(registry.covers(c, a));
  EXPECT_FALSE(registry.covers(a, dn("CN=D")));
}

TEST(MatchChain, RegistrySuppressesCrossSignMismatch) {
  TestPki pki;
  x509::CertificateAuthority cross_root(dn("CN=Cross Root,O=Other"), "cross");
  const x509::Certificate cross_root_cert = cross_root.make_root(testing::test_validity());

  // Leaf issued under pki, followed directly by the cross root: textual
  // mismatch unless the registry knows the two CAs are the same entity.
  x509::Certificate leaf = pki.leaf("cs.example");
  const auto chain = make_chain({leaf, cross_root_cert});
  EXPECT_EQ(match_chain(chain).mismatch_count(), 1u);

  CrossSignRegistry registry;
  registry.add_equivalence(pki.intermediate_ca.name(), cross_root.name());
  const MatchResult covered = match_chain(chain, &registry);
  EXPECT_TRUE(covered.all_matched());
  EXPECT_TRUE(covered.pairs[0].via_cross_sign);
}

TEST(IsPlausibleLeaf, RejectsCasAndIssuersWithinChain) {
  TestPki pki;
  const auto chain = pki.chain_for("leafy.example", true);
  EXPECT_TRUE(is_plausible_leaf(chain, 0));
  EXPECT_FALSE(is_plausible_leaf(chain, 1));  // CA + issues the leaf
  EXPECT_FALSE(is_plausible_leaf(chain, 2));  // root
}

TEST(IsPlausibleLeaf, BcAbsentCertCanBeLeafUnlessItIssues) {
  TestPki pki;
  x509::Certificate no_bc = self_signed("standalone");  // bc absent
  const auto alone = make_chain({no_bc, pki.intermediate_cert});
  EXPECT_TRUE(is_plausible_leaf(alone, 0));
}

TEST(AnalyzePaths, WholeChainCompletePath) {
  TestPki pki;
  const PathAnalysis analysis = analyze_paths(pki.chain_for("c.example", true));
  ASSERT_TRUE(analysis.complete_path.has_value());
  EXPECT_EQ(analysis.complete_path->begin, 0u);
  EXPECT_EQ(analysis.complete_path->end, 2u);
  EXPECT_TRUE(analysis.is_complete_path());
  EXPECT_FALSE(analysis.contains_complete_path());
  EXPECT_TRUE(analysis.unnecessary_certificates.empty());
  EXPECT_EQ(analysis.runs.size(), 1u);
}

TEST(AnalyzePaths, ExtrasAfterPathAreUnnecessary) {
  TestPki pki;
  auto chain = pki.chain_for("extra.example", true);
  chain.push_back(self_signed("unnecessary"));
  const PathAnalysis analysis = analyze_paths(chain);
  ASSERT_TRUE(analysis.complete_path.has_value());
  EXPECT_TRUE(analysis.contains_complete_path());
  EXPECT_EQ(analysis.unnecessary_certificates, (std::vector<std::size_t>{3}));
}

TEST(AnalyzePaths, LeadingForeignLeafBeforePath) {
  TestPki pki;
  x509::Certificate foreign = self_signed("foreign");
  foreign.issuer = dn("CN=Someone Else");  // distinct issuer: a stray leaf
  auto chain = make_chain({foreign, pki.leaf("lead.example"), pki.intermediate_cert,
                           pki.root_cert});
  const PathAnalysis analysis = analyze_paths(chain);
  ASSERT_TRUE(analysis.complete_path.has_value());
  EXPECT_EQ(analysis.complete_path->begin, 1u);
  EXPECT_EQ(analysis.unnecessary_certificates, (std::vector<std::size_t>{0}));
}

TEST(AnalyzePaths, LeafRequirementDistinguishesModes) {
  TestPki pki;
  // Leafless run: [intermediate, root] matches but starts with a CA.
  const auto chain = make_chain({pki.intermediate_cert, pki.root_cert});
  const PathAnalysis hybrid_mode = analyze_paths(chain, nullptr, true);
  EXPECT_TRUE(hybrid_mode.no_complete_path());
  // §4.3 mode (no leaf test): the same run is a complete path.
  const PathAnalysis nonpub_mode = analyze_paths(chain, nullptr, false);
  EXPECT_TRUE(nonpub_mode.is_complete_path());
}

TEST(AnalyzePaths, SelectsLongestRun) {
  TestPki pki;
  TestPki other;
  // Short run [leaf-ish, int] then long run [leaf, int, root] after a break.
  x509::Certificate stray = self_signed("stray2");
  stray.issuer = dn("CN=Missing Issuer");
  auto chain = make_chain({stray,                      // single run
                           other.leaf("short.example"),  // run of 2
                           other.intermediate_cert,
                           pki.leaf("long.example"),     // run of 3
                           pki.intermediate_cert, pki.root_cert});
  const PathAnalysis analysis = analyze_paths(chain);
  ASSERT_TRUE(analysis.complete_path.has_value());
  EXPECT_EQ(analysis.complete_path->begin, 3u);
  EXPECT_EQ(analysis.complete_path->cert_count(), 3u);
}

TEST(AnalyzePaths, RunsPartitionTheChain) {
  TestPki pki;
  auto chain = make_chain({pki.leaf("p.example"), pki.intermediate_cert,
                           self_signed("break"), pki.root_cert});
  const PathAnalysis analysis = analyze_paths(chain);
  // Runs: [0,1], [2,2], [3,3].
  ASSERT_EQ(analysis.runs.size(), 3u);
  std::size_t covered = 0;
  for (const MatchedRun& run : analysis.runs) covered += run.cert_count();
  EXPECT_EQ(covered, chain.length());
}

TEST(AnalyzePaths, EmptyChain) {
  const PathAnalysis analysis = analyze_paths(CertificateChain());
  EXPECT_TRUE(analysis.runs.empty());
  EXPECT_TRUE(analysis.no_complete_path());
}

TEST(ChainId, StableAndOrderSensitive) {
  TestPki pki;
  const auto a = pki.chain_for("id.example");
  auto reversed = make_chain({pki.intermediate_cert, a.first()});
  const chain::CertificateChain copy = a;
  EXPECT_EQ(a.id(), copy.id());
  // Re-issuing the same domain draws a fresh serial -> a different chain.
  EXPECT_NE(a.id(), pki.chain_for("id.example").id());
  EXPECT_NE(a.id(), reversed.id());
  EXPECT_NE(a.id(), pki.chain_for("other.example").id());
}

}  // namespace
}  // namespace certchain::chain
