// Core analyzers: corpus indexing, interception detection, hybrid and
// non-public analysis, and the PKI relationship graph.
#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "core/corpus.hpp"
#include "core/hybrid_analysis.hpp"
#include "core/interception.hpp"
#include "core/nonpublic_analysis.hpp"
#include "core/pki_graph.hpp"
#include "netsim/pki_world.hpp"
#include "obs/run_context.hpp"
#include "util/hash.hpp"

namespace certchain::core {
namespace {

using certchain::testing::TestPki;
using certchain::testing::dn;
using certchain::testing::make_chain;
using certchain::testing::self_signed;
using certchain::testing::test_validity;

zeek::JoinedConnection make_connection(const chain::CertificateChain& chain,
                                       const std::string& client,
                                       const std::string& server, std::uint16_t port,
                                       bool established, const std::string& sni,
                                       util::SimTime ts = 1000) {
  zeek::JoinedConnection connection;
  connection.ssl.ts = ts;
  connection.ssl.uid = util::zeek_style_conn_uid(ts, 1);
  connection.ssl.id_orig_h = client;
  connection.ssl.id_resp_h = server;
  connection.ssl.id_resp_p = port;
  connection.ssl.version = "TLSv12";
  connection.ssl.established = established;
  connection.ssl.server_name = sni;
  connection.chain = chain;
  return connection;
}

// --- corpus -----------------------------------------------------------------

TEST(CorpusIndex, DeduplicatesChainsAndAggregatesUsage) {
  TestPki pki;
  const auto chain = pki.chain_for("corpus.example");
  CorpusIndex corpus;
  corpus.add(make_connection(chain, "10.0.0.1", "198.51.100.1", 443, true,
                             "corpus.example", 100));
  corpus.add(make_connection(chain, "10.0.0.2", "198.51.100.1", 443, false, "", 200));
  corpus.add(make_connection(chain, "10.0.0.1", "198.51.100.2", 8443, true,
                             "corpus.example", 300));

  ASSERT_EQ(corpus.unique_chain_count(), 1u);
  const ChainObservation& observation = corpus.chains().begin()->second;
  EXPECT_EQ(observation.connections, 3u);
  EXPECT_EQ(observation.established, 2u);
  EXPECT_EQ(observation.client_ips.size(), 2u);
  EXPECT_EQ(observation.server_keys.size(), 2u);
  EXPECT_EQ(observation.ports.count(443), 2u);
  EXPECT_EQ(observation.with_sni, 2u);
  EXPECT_EQ(observation.without_sni, 1u);
  EXPECT_EQ(observation.first_seen, 100);
  EXPECT_EQ(observation.last_seen, 300);
  EXPECT_NEAR(observation.establish_rate(), 2.0 / 3.0, 1e-12);
}

TEST(CorpusIndex, TotalsTrackCertlessConnections) {
  TestPki pki;
  CorpusIndex corpus;
  zeek::JoinedConnection tls13;
  tls13.ssl.version = "TLSv13";
  corpus.add(tls13);
  corpus.add(make_connection(pki.chain_for("t.example"), "10.0.0.1", "s", 443, true,
                             "t.example"));
  zeek::JoinedConnection incomplete =
      make_connection(pki.chain_for("u.example"), "10.0.0.1", "s", 443, true,
                      "u.example");
  incomplete.missing_fuids.push_back("Fgone");
  corpus.add(incomplete);

  EXPECT_EQ(corpus.totals().connections, 3u);
  EXPECT_EQ(corpus.totals().with_certificates, 2u);
  EXPECT_EQ(corpus.totals().tls13_connections, 1u);
  EXPECT_EQ(corpus.totals().incomplete_joins, 1u);
  // Two chains share the issuing intermediate: 2 leaves + 1 intermediate.
  EXPECT_EQ(corpus.totals().distinct_certificates, 3u);
}

// --- interception detector -----------------------------------------------------

class InterceptionTest : public ::testing::Test {
 protected:
  InterceptionTest() {
    genuine_leaf_ = pki_.leaf("victim.example");
    ct_logs_.log(0).submit(genuine_leaf_, 1);
    // Middlebox CA forging victim.example.
    x509::DistinguishedName forged_subject;
    forged_subject.add("CN", "victim.example");
    forged_leaf_ = middlebox_.issue_leaf(forged_subject, "victim.example",
                                         test_validity());
    directory_[middlebox_.name().canonical()] =
        VendorInfo{"Sim MBox", "Security & Network"};
  }

  TestPki pki_;
  truststore::TrustStoreSet stores_ = pki_.trusted_stores();
  ct::CtLogSet ct_logs_{2};
  x509::CertificateAuthority middlebox_{dn("CN=MBox SSL Inspection CA,O=MBox"),
                                        "mbox"};
  x509::Certificate genuine_leaf_;
  x509::Certificate forged_leaf_;
  VendorDirectory directory_;
};

TEST_F(InterceptionTest, DetectsForgedChainViaCtMismatch) {
  const InterceptionDetector detector(stores_, ct_logs_, directory_);
  const auto forged_chain = make_chain({forged_leaf_});
  EXPECT_TRUE(detector.is_interception_candidate(forged_chain, "victim.example"));

  CorpusIndex corpus;
  corpus.add(make_connection(forged_chain, "10.0.0.5", "s", 8013, true,
                             "victim.example"));
  const InterceptionReport report = detector.detect(corpus);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].vendor.vendor, "Sim MBox");
  EXPECT_EQ(report.findings[0].connections, 1u);
  EXPECT_TRUE(report.issuer_set().contains(middlebox_.name().canonical()));
}


TEST_F(InterceptionTest, UniformEntryMatchesSerialAndPublishesTelemetry) {
  const InterceptionDetector detector(stores_, ct_logs_, directory_);
  CorpusIndex corpus;
  corpus.add(make_connection(make_chain({forged_leaf_}), "10.0.0.5", "s", 8013,
                             true, "victim.example"));
  corpus.add(make_connection(pki_.chain_for("clean.example"), "10.0.0.6", "t",
                             443, true, "clean.example"));

  const InterceptionReport serial = detector.detect(corpus);
  obs::RunContext context;
  RunOptions options;
  options.threads = 4;
  const InterceptionReport uniform = detector.detect(corpus, options, &context);

  ASSERT_EQ(uniform.findings.size(), serial.findings.size());
  for (std::size_t i = 0; i < serial.findings.size(); ++i) {
    EXPECT_EQ(uniform.findings[i].vendor.vendor, serial.findings[i].vendor.vendor);
    EXPECT_EQ(uniform.findings[i].connections, serial.findings[i].connections);
  }
  EXPECT_EQ(context.metrics.counter("interception.detect.chains_in"),
            corpus.unique_chain_count());
  EXPECT_EQ(context.metrics.counter("interception.detect.findings"),
            serial.findings.size());
  ASSERT_EQ(context.trace.node_count(), 1u);
  EXPECT_EQ(context.trace.root().children[0]->name, "interception.detect");
  EXPECT_EQ(context.metrics.timings().count("time.interception.detect.ms"), 1u);
}

TEST_F(InterceptionTest, GenuineChainIsNotFlagged) {
  const InterceptionDetector detector(stores_, ct_logs_, directory_);
  // Leaf issuer is public -> step 1 filters it out.
  EXPECT_FALSE(detector.is_interception_candidate(make_chain({genuine_leaf_}),
                                                  "victim.example"));
}

TEST_F(InterceptionTest, NoCtRecordIsInconclusive) {
  // A non-public issuer for a domain CT has never seen: possible genuine
  // private deployment, NOT flagged (Appendix B).
  const InterceptionDetector detector(stores_, ct_logs_, directory_);
  x509::DistinguishedName subject;
  subject.add("CN", "intranet.example");
  const auto chain = make_chain(
      {middlebox_.issue_leaf(subject, "intranet.example", test_validity())});
  EXPECT_FALSE(detector.is_interception_candidate(chain, "intranet.example"));
}

TEST_F(InterceptionTest, MatchingCtIssuerIsNotFlagged) {
  // Non-public leaf whose issuer IS what CT recorded (the Table 6 pattern):
  // no mismatch, no flag.
  x509::CertificateAuthority agency(dn("CN=Agency CA,O=Agency"), "agency2");
  x509::DistinguishedName subject;
  subject.add("CN", "portal.example");
  const x509::Certificate leaf =
      agency.issue_leaf(subject, "portal.example", test_validity());
  ct_logs_.log(0).submit(leaf, 5);
  const InterceptionDetector detector(stores_, ct_logs_, directory_);
  EXPECT_FALSE(
      detector.is_interception_candidate(make_chain({leaf}), "portal.example"));
}

TEST_F(InterceptionTest, UnconfirmedCandidatesAreTrackedSeparately) {
  // CT mismatch but no directory entry: remains unconfirmed.
  x509::CertificateAuthority unknown(dn("CN=Mystery CA"), "mystery");
  x509::DistinguishedName subject;
  subject.add("CN", "victim.example");
  const auto chain = make_chain(
      {unknown.issue_leaf(subject, "victim.example", test_validity())});
  CorpusIndex corpus;
  corpus.add(make_connection(chain, "10.0.0.6", "s", 443, true, "victim.example"));
  const InterceptionDetector detector(stores_, ct_logs_, directory_);
  const InterceptionReport report = detector.detect(corpus);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.unconfirmed_candidates.size(), 1u);
  EXPECT_FALSE(report.issuer_set().contains(unknown.name().canonical()));
}

TEST_F(InterceptionTest, VendorExpansionPullsInRootDns) {
  // Once the inspection CA is confirmed, the vendor's root DN (also in the
  // directory) joins the issuer set — attributing single-root chains.
  const auto root_dn = dn("CN=MBox Root CA,O=MBox");
  directory_[root_dn.canonical()] = VendorInfo{"Sim MBox", "Security & Network"};
  CorpusIndex corpus;
  corpus.add(make_connection(make_chain({forged_leaf_}), "10.0.0.5", "s", 8013, true,
                             "victim.example"));
  const InterceptionDetector detector(stores_, ct_logs_, directory_);
  const InterceptionReport report = detector.detect(corpus);
  EXPECT_TRUE(report.issuer_set().contains(root_dn.canonical()));
}

TEST_F(InterceptionTest, CategoryRowsAggregateByVendor) {
  // Two distinct issuer DNs of the same vendor count as one Table 1 issuer.
  x509::CertificateAuthority second_ca(dn("CN=MBox Regional CA,O=MBox"), "mbox2");
  directory_[second_ca.name().canonical()] =
      VendorInfo{"Sim MBox", "Security & Network"};
  x509::DistinguishedName subject;
  subject.add("CN", "victim.example");
  const auto second_chain = make_chain(
      {second_ca.issue_leaf(subject, "victim.example", test_validity())});

  CorpusIndex corpus;
  corpus.add(make_connection(make_chain({forged_leaf_}), "10.0.0.5", "s1", 8013,
                             true, "victim.example"));
  corpus.add(make_connection(second_chain, "10.0.0.6", "s2", 4437, true,
                             "victim.example"));
  const InterceptionDetector detector(stores_, ct_logs_, directory_);
  const auto rows = detector.detect(corpus).category_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].category, "Security & Network");
  EXPECT_EQ(rows[0].issuers, 1u);  // one vendor
  EXPECT_EQ(rows[0].connections, 2u);
  EXPECT_EQ(rows[0].client_ips, 2u);
}

// --- hybrid analyzer -------------------------------------------------------------

TEST(HybridAnalyzer, Figure4ColumnLabels) {
  TestPki pki;
  const auto stores = pki.trusted_stores();
  ct::CtLogSet ct_logs(2);
  const HybridAnalyzer analyzer(stores, ct_logs);

  // [pub leaf, pub int, pub root, enterprise self-signed]: a public complete
  // run plus a non-public single.
  auto chain = pki.chain_for("fig4.example", true);
  chain.push_back(self_signed("athenz-like"));
  ChainObservation observation;
  observation.chain = chain;
  const auto cls = chain::classify_hybrid(chain, stores);
  const StructureColumn column = analyzer.build_structure_column(observation, cls);
  ASSERT_EQ(column.cells.size(), 4u);
  EXPECT_EQ(structure_cell_code(column.cells[0]), "Pub.Complete");
  EXPECT_EQ(structure_cell_code(column.cells[1]), "Pub.Complete");
  EXPECT_EQ(structure_cell_code(column.cells[2]), "Pub.Complete");
  // The lone self-signed extra is its own single-cert run.
  EXPECT_EQ(structure_cell_code(column.cells[3]), "Non-Pub.Single");
}

TEST(HybridAnalyzer, AnchoredRowsAndCtCompliance) {
  TestPki pki;
  const auto stores = pki.trusted_stores();
  ct::CtLogSet ct_logs(2);

  x509::CertificateAuthority gov_ca(
      dn("CN=Agency CA B3,O=Department of Examples Government"), "gov");
  const x509::Certificate gov_cert =
      pki.root_ca.issue_intermediate(gov_ca, test_validity());
  x509::DistinguishedName subject;
  subject.add("CN", "portal.gov.example");
  x509::Certificate leaf =
      gov_ca.issue_leaf(subject, "portal.gov.example", test_validity());
  leaf = ct_logs.submit_and_embed(leaf, 10, 2);

  ChainObservation observation;
  observation.chain = make_chain({leaf, gov_cert, pki.root_cert});
  observation.connections = 10;
  observation.established = 10;
  observation.last_seen = util::make_time(2021, 1, 1);

  const HybridAnalyzer analyzer(stores, ct_logs);
  const HybridReport report = analyzer.analyze({&observation});
  EXPECT_EQ(report.complete_nonpub_to_pub, 1u);
  EXPECT_EQ(report.anchored_ct_logged, 1u);
  EXPECT_EQ(report.anchored_expired_leaf, 0u);
  ASSERT_EQ(report.anchored_rows.size(), 1u);
  EXPECT_EQ(report.anchored_rows[0].sector, "Government");
}

TEST(HybridAnalyzer, FakeLeSignatureDetected) {
  TestPki pki;
  const auto stores = pki.trusted_stores();
  ct::CtLogSet ct_logs(2);

  x509::CertificateAuthority fake_root(dn("CN=Fake LE Root X1"), "fake-root");
  x509::CertificateAuthority fake_int(dn("CN=Fake LE Intermediate X1"), "fake-int");
  const x509::Certificate fake_cert =
      fake_root.issue_intermediate(fake_int, test_validity());

  ChainObservation observation;
  auto chain = pki.chain_for("fake.example", true);
  chain.push_back(fake_cert);
  observation.chain = chain;
  observation.connections = 5;
  observation.established = 4;

  const HybridAnalyzer analyzer(stores, ct_logs);
  const HybridReport report = analyzer.analyze({&observation});
  EXPECT_EQ(report.contains_complete_path, 1u);
  EXPECT_EQ(report.fake_le_chains, 1u);
  EXPECT_EQ(report.figure4_columns.size(), 1u);
  EXPECT_NEAR(report.usage_contains.establish_rate(), 0.8, 1e-12);
}

// --- non-public analyzer ----------------------------------------------------------

TEST(NonPublicAnalyzer, SinglesSelfSignedAndDga) {
  netsim::PkiWorld world;
  util::Rng rng(3);

  ChainObservation localhost_obs;
  localhost_obs.chain = make_chain({world.make_localhost_certificate("np")});
  localhost_obs.connections = 10;
  localhost_obs.without_sni = 9;
  localhost_obs.with_sni = 1;
  localhost_obs.client_ips = {"10.0.0.1", "10.0.0.2"};
  localhost_obs.ports.add(8888, 10);

  ChainObservation dga_obs;
  dga_obs.chain = make_chain({world.make_dga_certificate(rng)});
  dga_obs.connections = 4;
  dga_obs.client_ips = {"10.0.0.3"};
  dga_obs.ports.add(33854, 4);

  ChainObservation multi_obs;
  auto& hierarchy = world.make_enterprise_ca("NP Org", true);
  x509::DistinguishedName subject;
  subject.add("CN", "svc.np.example");
  multi_obs.chain = make_chain(
      {hierarchy.intermediate_ca->issue_leaf_no_bc(subject, "svc.np.example",
                                                   test_validity()),
       *hierarchy.intermediate_cert, hierarchy.root_cert});
  multi_obs.connections = 6;
  multi_obs.ports.add(443, 6);

  const NonPublicAnalyzer analyzer;
  const NonPublicReport report = analyzer.analyze(
      "Non-public-DB-only", {&localhost_obs, &dga_obs, &multi_obs});

  EXPECT_EQ(report.chains, 3u);
  EXPECT_EQ(report.single_chains, 2u);
  EXPECT_EQ(report.single_self_signed, 1u);
  EXPECT_EQ(report.dga_chains, 1u);
  EXPECT_EQ(report.dga_connections, 4u);
  EXPECT_EQ(report.multi_chains, 1u);
  EXPECT_EQ(report.is_matched_path, 1u);
  EXPECT_EQ(report.single_no_sni_connections, 9u);
  EXPECT_EQ(report.ports_single.count(8888), 10u);
  EXPECT_EQ(report.ports_multi.count(443), 6u);
  // basicConstraints: leaf omitted; intermediate+root present.
  EXPECT_EQ(report.first_position_certs, 1u);
  EXPECT_EQ(report.first_position_bc_omitted, 1u);
  EXPECT_EQ(report.later_position_certs, 2u);
  EXPECT_EQ(report.later_position_bc_omitted, 0u);
}

TEST(NonPublicAnalyzer, DgaPatternRecognizer) {
  EXPECT_TRUE(looks_like_dga_name("wwwabcdefghijcom"));
  EXPECT_FALSE(looks_like_dga_name("www.example.com"));  // dots disqualify
  EXPECT_FALSE(looks_like_dga_name("wwwshortcom"));      // too short
  EXPECT_FALSE(looks_like_dga_name("abcdefghijklmnop"));  // no www prefix
  EXPECT_FALSE(looks_like_dga_name("wwwabc123defgcom"));  // digits disqualify

  // Self-signed www...com certs are NOT the DGA cluster (fields must differ).
  x509::Certificate cert = self_signed("wwwabcdefghijcom");
  EXPECT_FALSE(is_dga_certificate(cert));
}

TEST(NonPublicAnalyzer, Table8Buckets) {
  TestPki pki;  // acts as a "private" hierarchy: no stores involved here
  ChainObservation matched;
  matched.chain = pki.chain_for("m.example", true);
  ChainObservation contains;
  auto contains_chain = pki.chain_for("c.example");
  contains_chain.push_back(self_signed("extra"));
  contains.chain = contains_chain;
  ChainObservation broken;
  broken.chain = make_chain({self_signed("x"), self_signed("y")});

  const NonPublicAnalyzer analyzer;
  const NonPublicReport report =
      analyzer.analyze("t8", {&matched, &contains, &broken});
  EXPECT_EQ(report.multi_chains, 3u);
  EXPECT_EQ(report.is_matched_path, 1u);
  EXPECT_EQ(report.contains_matched_path, 1u);
  EXPECT_EQ(report.no_matched_path, 1u);
}

// --- PKI graph --------------------------------------------------------------------

TEST(PkiGraph, RolesEdgesAndComponents) {
  TestPki pki;
  const auto stores = pki.trusted_stores();

  ChainObservation a;
  a.chain = pki.chain_for("g1.example", true);
  ChainObservation b;
  b.chain = pki.chain_for("g2.example", true);
  ChainObservation lone;
  lone.chain = make_chain({self_signed("lonely"), self_signed("lonelier")});

  const PkiGraph graph = build_pki_graph({&a, &b, &lone}, stores);
  // Nodes: 2 leaves + shared int + shared root + 2 lonely = 6.
  EXPECT_EQ(graph.node_count(), 6u);
  // Two components: the pki cluster and the lonely pair.
  EXPECT_EQ(graph.connected_components(), 2u);

  const auto breakdown = graph.node_breakdown();
  using Key = std::pair<CertRole, truststore::IssuerClass>;
  EXPECT_EQ(breakdown.at(Key{CertRole::kLeaf, truststore::IssuerClass::kPublicDb}), 2u);
  EXPECT_EQ(
      breakdown.at(Key{CertRole::kIntermediate, truststore::IssuerClass::kPublicDb}),
      1u);
  EXPECT_EQ(breakdown.at(Key{CertRole::kRoot, truststore::IssuerClass::kPublicDb}), 1u);

  // Issuance links: leaf->int (x2 distinct leaves), int->root; the lonely
  // pair's adjacent pair mismatches, so no link.
  EXPECT_EQ(graph.issuance_links().size(), 3u);
}

TEST(PkiGraph, ComplexIntermediates) {
  // Hub intermediate issued by a root; three spokes issued by the hub; chains
  // [leaf, spoke_k, hub, root] make the hub adjacent to 3 intermediates.
  using x509::CertificateAuthority;
  CertificateAuthority root(dn("CN=CRoot"), "croot");
  const x509::Certificate root_cert = root.make_root(test_validity());
  CertificateAuthority hub(dn("CN=CHub"), "chub");
  const x509::Certificate hub_cert = root.issue_intermediate(hub, test_validity());

  std::vector<ChainObservation> observations;
  for (int k = 0; k < 3; ++k) {
    CertificateAuthority spoke(dn("CN=CSpoke" + std::to_string(k)),
                               "cspoke" + std::to_string(k));
    const x509::Certificate spoke_cert = hub.issue_intermediate(spoke, test_validity());
    x509::DistinguishedName subject;
    subject.add("CN", "deep" + std::to_string(k) + ".example");
    ChainObservation observation;
    observation.chain = make_chain(
        {spoke.issue_leaf(subject, "deep" + std::to_string(k) + ".example",
                          test_validity()),
         spoke_cert, hub_cert, root_cert});
    observations.push_back(std::move(observation));
  }
  std::vector<const ChainObservation*> pointers;
  for (const auto& observation : observations) pointers.push_back(&observation);

  const truststore::TrustStoreSet empty_stores;
  const PkiGraph graph = build_pki_graph(pointers, empty_stores);
  const auto complex = graph.complex_intermediates(3);
  ASSERT_EQ(complex.size(), 1u);
  EXPECT_EQ(graph.nodes()[complex[0]].subject, "CN=CHub");
  EXPECT_TRUE(graph.complex_intermediates(4).empty());
}

TEST(PkiGraph, ChainCountsAndCoOccurrence) {
  TestPki pki;
  const auto stores = pki.trusted_stores();
  ChainObservation a;
  a.chain = pki.chain_for("cc.example");
  const PkiGraph graph = build_pki_graph({&a}, stores);
  ASSERT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.nodes()[0].chain_count, 1u);
  EXPECT_EQ(graph.co_occurrence_edges().size(), 1u);
}

}  // namespace
}  // namespace certchain::core
