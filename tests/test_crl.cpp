// CRL model and revocation checking, including validator integration.
#include "x509/crl.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "validation/client_validators.hpp"

namespace certchain::x509 {
namespace {

using certchain::testing::TestPki;
using certchain::testing::test_validity;

const util::SimTime kNow = util::make_time(2021, 3, 1);

Crl fresh_crl(TestPki& pki, std::vector<std::string> serials) {
  CrlBuilder builder(pki.intermediate_ca.name());
  builder.updates(kNow - util::kSecondsPerDay, kNow + 7 * util::kSecondsPerDay);
  for (auto& serial : serials) {
    builder.revoke(std::move(serial), kNow - util::kSecondsPerHour,
                   RevocationReason::kKeyCompromise);
  }
  return builder.sign_with(pki.intermediate_ca.private_key());
}

TEST(Crl, FindAndStaleness) {
  TestPki pki;
  const Crl crl = fresh_crl(pki, {"aa", "bb"});
  EXPECT_NE(crl.find("aa"), nullptr);
  EXPECT_EQ(crl.find("aa")->reason, RevocationReason::kKeyCompromise);
  EXPECT_EQ(crl.find("zz"), nullptr);
  EXPECT_FALSE(crl.stale_at(kNow));
  EXPECT_TRUE(crl.stale_at(kNow + 8 * util::kSecondsPerDay));
}

TEST(CrlStore, StatusMatrix) {
  TestPki pki;
  const x509::Certificate victim = pki.leaf("revoked.example");
  const x509::Certificate bystander = pki.leaf("fine.example");

  CrlStore store;
  EXPECT_EQ(store.check(victim, kNow), RevocationStatus::kUnknown);

  store.add(fresh_crl(pki, {victim.serial}));
  EXPECT_EQ(store.check(victim, kNow), RevocationStatus::kRevoked);
  EXPECT_EQ(store.check(bystander, kNow), RevocationStatus::kGood);
  // Stale horizon.
  EXPECT_EQ(store.check(bystander, kNow + 30 * util::kSecondsPerDay),
            RevocationStatus::kStale);
  // Signature verification against the issuer key.
  EXPECT_EQ(store.check(victim, kNow, &pki.intermediate_cert.public_key),
            RevocationStatus::kRevoked);
}

TEST(CrlStore, ForgedCrlDetectedWithIssuerKey) {
  TestPki pki;
  // An attacker-signed CRL claiming the victim's serial is fine.
  x509::CertificateAuthority attacker(pki.intermediate_ca.name(), "attacker-key");
  CrlBuilder builder(pki.intermediate_ca.name());
  builder.updates(kNow - 10, kNow + util::kSecondsPerDay);
  const Crl forged = builder.sign_with(attacker.private_key());

  CrlStore store;
  store.add(forged);
  const x509::Certificate cert = pki.leaf("forged-crl.example");
  // Without the key the forgery passes as "good"...
  EXPECT_EQ(store.check(cert, kNow), RevocationStatus::kGood);
  // ...with the key it is rejected.
  EXPECT_EQ(store.check(cert, kNow, &pki.intermediate_cert.public_key),
            RevocationStatus::kBadSignature);
}

TEST(CrlStore, ReplacementByIssuer) {
  TestPki pki;
  CrlStore store;
  store.add(fresh_crl(pki, {"aa"}));
  store.add(fresh_crl(pki, {}));  // newer empty CRL replaces
  EXPECT_EQ(store.size(), 1u);
  const x509::Certificate cert = pki.leaf("x.example");
  x509::Certificate fake = cert;
  fake.serial = "aa";
  EXPECT_EQ(store.check(fake, kNow), RevocationStatus::kGood);
}

// --- validator integration --------------------------------------------------

class RevocationValidatorTest : public ::testing::Test {
 protected:
  TestPki pki_;
  truststore::TrustStoreSet stores_ = pki_.trusted_stores();
  truststore::TrustStore host_store_{truststore::RootProgram::kMozillaNss};
  CrlStore crls_;

  void SetUp() override { host_store_.add(pki_.root_cert); }
};

TEST_F(RevocationValidatorTest, RevokedLeafRejectedByBothClients) {
  const x509::Certificate leaf = pki_.leaf("revoked2.example");
  crls_.add(fresh_crl(pki_, {leaf.serial}));
  const chain::CertificateChain chain({leaf, pki_.intermediate_cert});

  validation::ChromeLikeValidator::Options chrome_options;
  chrome_options.crl_store = &crls_;
  const validation::ChromeLikeValidator chrome(stores_, chrome_options);
  EXPECT_EQ(chrome.validate(chain, kNow).verdict,
            validation::ClientVerdict::kRevoked);

  validation::OpenSslLikeValidator::Options openssl_options;
  openssl_options.crl_store = &crls_;
  const validation::OpenSslLikeValidator openssl(host_store_, openssl_options);
  EXPECT_EQ(openssl.validate(chain, kNow).verdict,
            validation::ClientVerdict::kRevoked);
}

TEST_F(RevocationValidatorTest, SoftFailVsHardFailOnMissingCrl) {
  const chain::CertificateChain chain = pki_.chain_for("nocrl.example");

  validation::ChromeLikeValidator::Options soft;
  soft.crl_store = &crls_;  // empty store: status unknown
  EXPECT_TRUE(validation::ChromeLikeValidator(stores_, soft)
                  .validate(chain, kNow)
                  .accepted());

  validation::ChromeLikeValidator::Options hard = soft;
  hard.hard_fail_on_unknown = true;
  EXPECT_EQ(validation::ChromeLikeValidator(stores_, hard)
                .validate(chain, kNow)
                .verdict,
            validation::ClientVerdict::kRevocationUnknown);
}

TEST_F(RevocationValidatorTest, GoodCrlKeepsChainAccepted) {
  crls_.add(fresh_crl(pki_, {"unrelated-serial"}));
  const chain::CertificateChain chain = pki_.chain_for("clean.example");
  validation::ChromeLikeValidator::Options options;
  options.crl_store = &crls_;
  options.hard_fail_on_unknown = false;
  EXPECT_TRUE(validation::ChromeLikeValidator(stores_, options)
                  .validate(chain, kNow)
                  .accepted());
}

}  // namespace
}  // namespace certchain::x509
