// Simulated crypto, certificate model, builder and PEM serialization.
#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "crypto/sim_crypto.hpp"
#include "x509/builder.hpp"
#include "x509/pem.hpp"

namespace certchain {
namespace {

using testing::TestPki;
using testing::dn;
using testing::self_signed;
using testing::test_validity;

// --- crypto -----------------------------------------------------------------

TEST(SimCrypto, KeypairsAreDeterministicPerSeed) {
  const auto a = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, "seed");
  const auto b = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, "seed");
  const auto c = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, "other");
  EXPECT_EQ(a.public_key, b.public_key);
  EXPECT_NE(a.public_key, c.public_key);
  // Same seed, different algorithm -> different key.
  const auto d = crypto::generate_keypair(crypto::KeyAlgorithm::kEcdsaP256, "seed");
  EXPECT_NE(a.public_key.material, d.public_key.material);
}

TEST(SimCrypto, SignVerifyRoundTrip) {
  const auto keys = crypto::generate_keypair(crypto::KeyAlgorithm::kEcdsaP256, "k");
  const auto signature = crypto::sign(keys.private_key, "message");
  EXPECT_EQ(crypto::verify(keys.public_key, "message", signature),
            crypto::VerifyStatus::kOk);
}

TEST(SimCrypto, VerifyRejectsTamperedMessage) {
  const auto keys = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, "k");
  const auto signature = crypto::sign(keys.private_key, "message");
  EXPECT_EQ(crypto::verify(keys.public_key, "messagE", signature),
            crypto::VerifyStatus::kBadSignature);
}

TEST(SimCrypto, VerifyRejectsWrongKey) {
  const auto signer = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, "a");
  const auto other = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, "b");
  const auto signature = crypto::sign(signer.private_key, "m");
  EXPECT_EQ(crypto::verify(other.public_key, "m", signature),
            crypto::VerifyStatus::kBadSignature);
}

TEST(SimCrypto, UnrecognizedKeyAlgorithm) {
  const auto keys = crypto::generate_keypair(crypto::KeyAlgorithm::kGostR3410, "g");
  const auto signature = crypto::sign(keys.private_key, "m");
  // The paper's toolchain rejects the key outright...
  EXPECT_EQ(crypto::verify(keys.public_key, "m", signature),
            crypto::VerifyStatus::kUnrecognizedKey);
  // ...while a tolerant verifier can still check it.
  EXPECT_EQ(crypto::verify(keys.public_key, "m", signature, true),
            crypto::VerifyStatus::kOk);
}

TEST(SimCrypto, MalformedKeyFailsBeforeAnyMath) {
  auto keys = crypto::generate_keypair(crypto::KeyAlgorithm::kRsa2048, "k");
  const auto signature = crypto::sign(keys.private_key, "m");
  keys.public_key.malformed = true;
  EXPECT_EQ(crypto::verify(keys.public_key, "m", signature),
            crypto::VerifyStatus::kMalformedKey);
  EXPECT_EQ(crypto::verify(keys.public_key, "m", signature, true),
            crypto::VerifyStatus::kMalformedKey);
}

TEST(SimCrypto, DefaultSignatureAlgorithmPairing) {
  EXPECT_EQ(crypto::default_signature_algorithm(crypto::KeyAlgorithm::kEd25519),
            crypto::SignatureAlgorithm::kSimEd25519);
  EXPECT_EQ(crypto::default_signature_algorithm(crypto::KeyAlgorithm::kRsa4096),
            crypto::SignatureAlgorithm::kSimSha256WithRsa);
}

TEST(SimCrypto, KeyBits) {
  crypto::SimPublicKey key;
  key.algorithm = crypto::KeyAlgorithm::kRsa4096;
  EXPECT_EQ(key.bits(), 4096);
  key.algorithm = crypto::KeyAlgorithm::kEcdsaP256;
  EXPECT_EQ(key.bits(), 256);
}

// --- certificate model -------------------------------------------------------

TEST(Certificate, SelfSignedDetectionIsCanonical) {
  x509::Certificate cert;
  cert.issuer = dn("CN=Example CA,O=Org");
  cert.subject = dn("cn=example ca,o=org");
  EXPECT_TRUE(cert.is_self_signed());
  cert.subject = dn("CN=Other");
  EXPECT_FALSE(cert.is_self_signed());
}

TEST(Certificate, FingerprintCoversEveryField) {
  TestPki pki;
  const x509::Certificate base = pki.leaf("fp.example");
  x509::Certificate changed = base;
  changed.serial = "ff";
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  changed = base;
  changed.subject_alt_names.push_back("extra.example");
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  changed = base;
  changed.basic_constraints.present = false;
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  changed = base;
  changed.validity.end += 1;
  EXPECT_NE(base.fingerprint(), changed.fingerprint());
  EXPECT_EQ(base.fingerprint(), base.fingerprint());
}

TEST(Certificate, ValidityWindow) {
  x509::Certificate cert;
  cert.validity = {100, 200};
  EXPECT_TRUE(cert.valid_at(100));
  EXPECT_FALSE(cert.valid_at(200));
  EXPECT_TRUE(cert.expired_at(200));
  EXPECT_FALSE(cert.expired_at(150));
}

TEST(WildcardMatch, Rfc6125SingleLabelRules) {
  EXPECT_TRUE(x509::wildcard_matches("example.com", "EXAMPLE.com"));
  EXPECT_TRUE(x509::wildcard_matches("*.example.com", "www.example.com"));
  EXPECT_FALSE(x509::wildcard_matches("*.example.com", "example.com"));
  EXPECT_FALSE(x509::wildcard_matches("*.example.com", "a.b.example.com"));
  EXPECT_FALSE(x509::wildcard_matches("*.example.com", "wwwexample.com"));
  EXPECT_FALSE(x509::wildcard_matches("*.com", "x.org"));
}

TEST(Certificate, CoversDomainViaSanThenCnFallback) {
  TestPki pki;
  x509::Certificate cert = pki.leaf("www.covered.example");
  EXPECT_TRUE(cert.covers_domain("www.covered.example"));
  EXPECT_FALSE(cert.covers_domain("other.example"));
  // With SANs present the CN is ignored...
  cert.subject_alt_names = {"only.example"};
  EXPECT_FALSE(cert.covers_domain("www.covered.example"));
  // ...without SANs the CN is the fallback.
  cert.subject_alt_names.clear();
  EXPECT_TRUE(cert.covers_domain("www.covered.example"));
}

// --- builder / CA ------------------------------------------------------------

TEST(CertificateAuthority, RootIsSelfSignedCa) {
  TestPki pki;
  EXPECT_TRUE(pki.root_cert.is_self_signed());
  EXPECT_TRUE(pki.root_cert.is_ca());
  EXPECT_TRUE(pki.root_cert.key_usage.key_cert_sign);
  EXPECT_EQ(crypto::verify(pki.root_cert.public_key, pki.root_cert.tbs_bytes(),
                           pki.root_cert.signature),
            crypto::VerifyStatus::kOk);
}

TEST(CertificateAuthority, IntermediateChainsToRoot) {
  TestPki pki;
  EXPECT_TRUE(pki.intermediate_cert.issuer.matches(pki.root_cert.subject));
  EXPECT_TRUE(pki.intermediate_cert.is_ca());
  EXPECT_EQ(crypto::verify(pki.root_cert.public_key,
                           pki.intermediate_cert.tbs_bytes(),
                           pki.intermediate_cert.signature),
            crypto::VerifyStatus::kOk);
}

TEST(CertificateAuthority, LeafChainsToIntermediate) {
  TestPki pki;
  const x509::Certificate leaf = pki.leaf("leaf.example");
  EXPECT_TRUE(leaf.issuer.matches(pki.intermediate_cert.subject));
  EXPECT_FALSE(leaf.is_ca());
  EXPECT_TRUE(leaf.basic_constraints.present);
  EXPECT_EQ(crypto::verify(pki.intermediate_cert.public_key, leaf.tbs_bytes(),
                           leaf.signature),
            crypto::VerifyStatus::kOk);
}

TEST(CertificateAuthority, LeafNoBcOmitsTheExtension) {
  TestPki pki;
  x509::DistinguishedName subject;
  subject.add("CN", "nobc.example");
  const x509::Certificate leaf =
      pki.intermediate_ca.issue_leaf_no_bc(subject, "nobc.example", test_validity());
  EXPECT_FALSE(leaf.basic_constraints.present);
}

TEST(CertificateAuthority, SerialsAreUniqueAndScoped) {
  TestPki pki;
  const std::string s1 = pki.root_ca.next_serial();
  const std::string s2 = pki.root_ca.next_serial();
  EXPECT_NE(s1, s2);
  x509::CertificateAuthority other(dn("CN=Other CA"), "other-seed");
  EXPECT_NE(pki.root_ca.next_serial(), other.next_serial());
}

TEST(CertificateAuthority, CrossSignBindsSubjectKeyUnderNewIssuer) {
  TestPki pki;
  x509::CertificateAuthority other(dn("CN=Other Root,O=Other"), "other-root");
  const x509::Certificate cross = pki.root_ca.cross_sign(other, test_validity());
  EXPECT_TRUE(cross.subject.matches(other.name()));
  EXPECT_TRUE(cross.issuer.matches(pki.root_ca.name()));
  EXPECT_EQ(cross.public_key, other.public_key());
  EXPECT_FALSE(cross.is_self_signed());
  EXPECT_EQ(crypto::verify(pki.root_cert.public_key, cross.tbs_bytes(),
                           cross.signature),
            crypto::VerifyStatus::kOk);
}

// --- PEM ----------------------------------------------------------------------

TEST(Pem, RoundTripsEveryField) {
  TestPki pki;
  x509::Certificate cert = pki.leaf("pem.example");
  cert.scts.push_back({"logid123", 1600000000});
  cert.key_usage.present = true;
  cert.key_usage.digital_signature = true;
  const auto decoded = x509::decode_pem(x509::encode_pem(cert));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cert);
}

TEST(Pem, RoundTripsCornerCaseCertificates) {
  // Self-signed, no basicConstraints, malformed-encoding flag, gost key.
  x509::Certificate cert = self_signed("weird ,name=with\\specials");
  cert.malformed_encoding = true;
  cert.public_key.algorithm = crypto::KeyAlgorithm::kGostR3410;
  cert.public_key.malformed = true;
  const auto decoded = x509::decode_pem(x509::encode_pem(cert));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cert);
}

TEST(Pem, DecodeRejectsDamage) {
  TestPki pki;
  std::string pem = x509::encode_pem(pki.leaf("dmg.example"));
  EXPECT_FALSE(x509::decode_pem("no armor").has_value());
  std::string truncated = pem.substr(0, pem.size() / 2);
  EXPECT_FALSE(x509::decode_pem(truncated).has_value());
  std::string corrupted = pem;
  corrupted[60] = '!';
  EXPECT_FALSE(x509::decode_pem(corrupted).has_value());
}

TEST(Pem, BundleDecodesInOrderAndReportsDamage) {
  TestPki pki;
  const x509::Certificate leaf = pki.leaf("bundle.example");
  std::string bundle = x509::encode_pem(leaf) + x509::encode_pem(pki.intermediate_cert) +
                       "-----BEGIN CERTIFICATE-----\n!!!\n-----END CERTIFICATE-----\n" +
                       x509::encode_pem(pki.root_cert);
  std::size_t malformed = 0;
  const auto certs = x509::decode_pem_bundle(bundle, &malformed);
  ASSERT_EQ(certs.size(), 3u);
  EXPECT_EQ(malformed, 1u);
  EXPECT_EQ(certs[0], leaf);
  EXPECT_EQ(certs[1], pki.intermediate_cert);
  EXPECT_EQ(certs[2], pki.root_cert);
}

TEST(Pem, EmptyBundle) {
  std::size_t malformed = 7;
  EXPECT_TRUE(x509::decode_pem_bundle("", &malformed).empty());
  EXPECT_EQ(malformed, 0u);
}

TEST(Pem, DerSimRejectsUnknownFields) {
  TestPki pki;
  std::string der = x509::encode_der_sim(pki.leaf("x.example"));
  der += "mystery:value\n";
  EXPECT_FALSE(x509::decode_der_sim(der).has_value());
}

}  // namespace
}  // namespace certchain
