// Differential suite: the incremental Merkle tree (cached subtree hashes,
// O(log n) appends/proofs) must be digest-identical to the legacy recursive
// MerkleTree at every size, for every historical root, and for every
// inclusion/consistency proof — the legacy tree is the executable RFC 6962
// reference. Schedules are seeded and property-style: random append counts,
// random proof queries, verifier round-trips.
#include "ct/merkle_inc.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "ct/merkle.hpp"
#include "util/rng.hpp"

namespace certchain::ct {
namespace {

std::string leaf(std::size_t index, std::uint64_t word) {
  return "leaf/" + std::to_string(index) + "/" + std::to_string(word);
}

TEST(CtIncremental, EmptyAndSingleLeafMatchLegacy) {
  MerkleTree legacy;
  IncrementalMerkleTree incremental;
  EXPECT_EQ(incremental.size(), 0u);
  EXPECT_EQ(incremental.root_hash(), legacy.root_hash());

  legacy.append("only");
  incremental.append("only");
  EXPECT_EQ(incremental.root_hash(), legacy.root_hash());
  EXPECT_TRUE(incremental.inclusion_proof(0, 1).empty());
}

TEST(CtIncremental, RootsMatchLegacyAtEverySize) {
  util::Rng rng(0xc71);
  MerkleTree legacy;
  IncrementalMerkleTree incremental;
  for (std::size_t i = 0; i < 130; ++i) {
    const std::string data = leaf(i, rng.next_u64());
    legacy.append(data);
    incremental.append(data);
    ASSERT_EQ(incremental.root_hash(), legacy.root_hash()) << "size=" << i + 1;
  }
  // Every historical root, not just the current one.
  for (std::size_t n = 0; n <= legacy.size(); ++n) {
    ASSERT_EQ(incremental.root_hash(n), legacy.root_hash(n)) << "n=" << n;
  }
}

TEST(CtIncremental, AppendLeafHashMatchesAppend) {
  MerkleTree legacy;
  IncrementalMerkleTree by_data;
  IncrementalMerkleTree by_hash;
  for (std::size_t i = 0; i < 40; ++i) {
    const std::string data = leaf(i, i * 7919);
    legacy.append(data);
    by_data.append(data);
    by_hash.append_leaf_hash(leaf_hash(data));
    ASSERT_EQ(by_data.root_hash(), legacy.root_hash());
    ASSERT_EQ(by_hash.root_hash(), legacy.root_hash());
    ASSERT_EQ(by_hash.leaf_hash_at(i), leaf_hash(data));
  }
}

TEST(CtIncremental, InclusionProofsMatchLegacyAndVerify) {
  util::Rng rng(0x1dc7);
  MerkleTree legacy;
  IncrementalMerkleTree incremental;
  std::vector<std::string> data;
  for (std::size_t i = 0; i < 97; ++i) {
    data.push_back(leaf(i, rng.next_u64()));
    legacy.append(data.back());
    incremental.append(data.back());
  }
  // Proofs against the current head and against historical heads.
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.next_below(incremental.size());
    const std::size_t index = rng.next_below(n);
    const auto proof = incremental.inclusion_proof(index, n);
    ASSERT_EQ(proof, legacy.inclusion_proof(index, n));
    EXPECT_TRUE(verify_inclusion(data[index], index, n, proof,
                                 incremental.root_hash(n)));
    EXPECT_TRUE(verify_inclusion_hash(incremental.leaf_hash_at(index), index, n,
                                      proof, incremental.root_hash(n)));
    // A proof for one index must not verify for a different leaf.
    const std::size_t other = (index + 1) % n;
    if (other != index) {
      EXPECT_FALSE(verify_inclusion(data[other], index, n, proof,
                                    incremental.root_hash(n)));
    }
  }
}

TEST(CtIncremental, ConsistencyProofsMatchLegacyAndVerify) {
  util::Rng rng(0x5eed);
  MerkleTree legacy;
  IncrementalMerkleTree incremental;
  for (std::size_t i = 0; i < 113; ++i) {
    const std::string data = leaf(i, rng.next_u64());
    legacy.append(data);
    incremental.append(data);
  }
  for (std::size_t trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.next_below(incremental.size());
    const std::size_t m = 1 + rng.next_below(n);
    const auto proof = incremental.consistency_proof(m, n);
    ASSERT_EQ(proof, legacy.consistency_proof(m, n));
    EXPECT_TRUE(verify_consistency(m, n, incremental.root_hash(m),
                                   incremental.root_hash(n), proof));
    // Tampered old root must not verify (except the trivial m == n proof).
    if (m != n) {
      Digest256 wrong = incremental.root_hash(m);
      wrong.words[0] ^= 1;
      EXPECT_FALSE(
          verify_consistency(m, n, wrong, incremental.root_hash(n), proof));
    }
  }
}

TEST(CtIncremental, RandomGrowthSchedulesStayIdentical) {
  // Property-style: interleave random-size append bursts with root/proof
  // checks, across several seeds.
  for (const std::uint64_t seed : {1ull, 42ull, 20200901ull, 0xfeedfaceull}) {
    util::Rng rng(seed);
    MerkleTree legacy;
    IncrementalMerkleTree incremental;
    std::size_t next_index = 0;
    for (std::size_t burst = 0; burst < 12; ++burst) {
      const std::size_t count = 1 + rng.next_below(50);
      for (std::size_t i = 0; i < count; ++i, ++next_index) {
        const std::string data = leaf(next_index, rng.next_u64());
        legacy.append(data);
        incremental.append(data);
      }
      ASSERT_EQ(incremental.size(), legacy.size());
      ASSERT_EQ(incremental.root_hash(), legacy.root_hash())
          << "seed=" << seed << " burst=" << burst;
      const std::size_t index = rng.next_below(incremental.size());
      ASSERT_EQ(incremental.inclusion_proof(index, incremental.size()),
                legacy.inclusion_proof(index, legacy.size()));
      const std::size_t m = 1 + rng.next_below(incremental.size());
      ASSERT_EQ(incremental.consistency_proof(m, incremental.size()),
                legacy.consistency_proof(m, legacy.size()));
    }
  }
}

TEST(CtIncremental, OutOfRangeArgumentsThrowLikeLegacy) {
  IncrementalMerkleTree incremental;
  incremental.append("a");
  incremental.append("b");
  EXPECT_THROW(incremental.root_hash(3), std::out_of_range);
  EXPECT_THROW(incremental.leaf_hash_at(2), std::out_of_range);
  EXPECT_THROW(incremental.inclusion_proof(2, 2), std::out_of_range);
  EXPECT_THROW(incremental.inclusion_proof(0, 3), std::out_of_range);
  EXPECT_THROW(incremental.consistency_proof(3, 2), std::out_of_range);
  EXPECT_THROW(incremental.consistency_proof(1, 3), std::out_of_range);
}

}  // namespace
}  // namespace certchain::ct
