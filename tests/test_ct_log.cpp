// CT log behaviour: submission, SCTs, domain queries, the interception
// cross-reference query, CT policy, and proof plumbing.
#include "ct/ct_log.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"

namespace certchain::ct {
namespace {

using certchain::testing::TestPki;
using certchain::testing::test_validity;

TEST(CtLog, SubmitReturnsSctAndIsIdempotent) {
  TestPki pki;
  CtLog log("test-log");
  const x509::Certificate leaf = pki.leaf("a.example");
  const auto sct1 = log.submit(leaf, 1000);
  EXPECT_EQ(sct1.log_id, log.log_id());
  EXPECT_EQ(sct1.timestamp, 1000);
  EXPECT_EQ(log.size(), 1u);

  // Resubmission returns the original SCT, no duplicate entry.
  const auto sct2 = log.submit(leaf, 2000);
  EXPECT_EQ(sct2.timestamp, 1000);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.contains(leaf));
}

TEST(CtLog, DomainQueryExactAndWildcard) {
  TestPki pki;
  CtLog log("test-log");
  log.submit(pki.leaf("www.exact.example"), 1);

  x509::DistinguishedName wildcard_subject;
  wildcard_subject.add("CN", "*.wild.example");
  x509::Certificate wildcard =
      pki.intermediate_ca.issue_leaf(wildcard_subject, "*.wild.example",
                                     test_validity());
  log.submit(wildcard, 2);

  EXPECT_EQ(log.entries_for_domain("www.exact.example").size(), 1u);
  EXPECT_EQ(log.entries_for_domain("WWW.EXACT.EXAMPLE").size(), 1u);
  EXPECT_EQ(log.entries_for_domain("a.wild.example").size(), 1u);
  EXPECT_TRUE(log.entries_for_domain("a.b.wild.example").empty());
  EXPECT_TRUE(log.entries_for_domain("nothing.example").empty());
}

TEST(CtLog, IssuersForDomainRespectsValidityOverlap) {
  TestPki pki;
  CtLog log("test-log");
  log.submit(pki.leaf("time.example"), 1);
  const util::TimeRange inside{util::make_time(2021, 1, 1), util::make_time(2021, 2, 1)};
  const util::TimeRange outside{util::make_time(2030, 1, 1), util::make_time(2031, 1, 1)};
  EXPECT_EQ(log.issuers_for_domain("time.example", inside).size(), 1u);
  EXPECT_TRUE(log.issuers_for_domain("time.example", outside).empty());
}

TEST(CtLog, InterceptionQuerySemantics) {
  // The §3.2.1 detection primitive: CT has the genuine issuer; a forged
  // chain's issuer is absent.
  TestPki genuine;
  CtLog log("test-log");
  log.submit(genuine.leaf("victim.example"), 1);

  const auto issuers = log.issuers_for_domain("victim.example", test_validity());
  ASSERT_EQ(issuers.size(), 1u);
  EXPECT_TRUE(issuers[0].matches(genuine.intermediate_ca.name()));

  x509::DistinguishedName middlebox =
      x509::DistinguishedName::parse_or_die("CN=Proxy SSL CA,O=Proxy");
  bool found = false;
  for (const auto& issuer : issuers) {
    if (issuer.matches(middlebox)) found = true;
  }
  EXPECT_FALSE(found);  // mismatch -> interception candidate
}

TEST(CtLog, ContainsMatchingWorksWithoutKeyMaterial) {
  TestPki pki;
  CtLog log("test-log");
  const x509::Certificate leaf = pki.leaf("keyless.example");
  log.submit(leaf, 1);

  // Strip key material (the Zeek X509.log view) — field matching still hits.
  x509::Certificate stripped = leaf;
  stripped.public_key.material.clear();
  stripped.signature.value.clear();
  EXPECT_FALSE(log.contains(stripped));  // fingerprint changed...
  EXPECT_TRUE(log.contains_matching(stripped));  // ...fields still match

  // A different serial must not match.
  stripped.serial = "deadbeef";
  EXPECT_FALSE(log.contains_matching(stripped));
}

TEST(CtLog, InclusionProofVerifies) {
  TestPki pki;
  CtLog log("test-log");
  x509::Certificate target = pki.leaf("proof.example");
  log.submit(target, 1);
  for (int i = 0; i < 20; ++i) {
    log.submit(pki.leaf("filler" + std::to_string(i) + ".example"), 2);
  }
  const auto proof = log.prove_inclusion(target);
  EXPECT_TRUE(log.check_inclusion(target, proof));

  const x509::Certificate absent = pki.leaf("absent.example");
  EXPECT_TRUE(log.prove_inclusion(absent).empty());
  EXPECT_FALSE(log.check_inclusion(absent, proof));
}

TEST(CtLog, ConsistencyProofAcrossGrowth) {
  TestPki pki;
  CtLog log("test-log");
  for (int i = 0; i < 5; ++i) log.submit(pki.leaf("c" + std::to_string(i) + ".ex"), 1);
  const Digest256 old_root = log.root_hash();
  const std::size_t old_size = log.size();
  for (int i = 5; i < 12; ++i) log.submit(pki.leaf("c" + std::to_string(i) + ".ex"), 2);
  const auto proof = log.prove_consistency(old_size);
  ASSERT_TRUE(proof.has_value());
  EXPECT_TRUE(verify_consistency(old_size, log.size(), old_root, log.root_hash(), *proof));
}

TEST(CtLog, ConsistencyProofOutOfRangeIsNullopt) {
  TestPki pki;
  CtLog log("test-log");
  for (int i = 0; i < 4; ++i) log.submit(pki.leaf("n" + std::to_string(i) + ".ex"), 1);
  // A monitor that saw a larger tree than we hold (the rollback case) asks
  // for a proof we cannot produce — typed refusal, not a throw.
  EXPECT_FALSE(log.prove_consistency(log.size() + 1).has_value());
  EXPECT_FALSE(log.prove_consistency(3, log.size() + 5).has_value());
  EXPECT_FALSE(log.prove_consistency(4, 2).has_value());
  EXPECT_TRUE(log.prove_consistency(2, 4).has_value());
}

TEST(CtLog, EntryIndexForFingerprint) {
  TestPki pki;
  CtLog log("test-log");
  const x509::Certificate leaf = pki.leaf("indexed.example");
  log.submit(pki.leaf("first.example"), 1);
  log.submit(leaf, 2);
  const auto index = log.entry_index_for(leaf.fingerprint());
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(*index, 1u);
  EXPECT_FALSE(log.entry_index_for("not-a-fingerprint").has_value());
}

TEST(CtLog, DomainIndexMatchesBruteForceScan) {
  // Differential: the sharded domain index answers exactly what a linear
  // scan over every entry's domain list answers, for exact names, wildcard
  // patterns, multi-label queries, and case-folded probes.
  TestPki pki;
  CtLog log("test-log");
  const std::vector<std::string> hosts = {
      "a.example",        "b.a.example",     "www.shop.example",
      "*.shop.example",   "shop.example",    "deep.b.a.example",
      "*.deep.example",   "x.deep.example",  "odd-host.example"};
  for (const std::string& host : hosts) {
    x509::DistinguishedName subject;
    subject.add("CN", host);
    log.submit(pki.intermediate_ca.issue_leaf(subject, host, test_validity()), 1);
  }

  const std::vector<std::string> queries = {
      "a.example",      "b.a.example",    "c.a.example",
      "www.shop.example", "zzz.shop.example", "shop.example",
      "deep.b.a.example", "x.deep.example",   "y.deep.example",
      "a.b.shop.example", "A.EXAMPLE",        "*.shop.example",
      "unrelated.test"};
  for (const std::string& query : queries) {
    std::vector<const LogEntry*> expected;
    for (const LogEntry& entry : log.entries()) {
      for (const std::string& domain : entry.domains) {
        if (x509::wildcard_matches(domain, query)) {
          expected.push_back(&entry);
          break;
        }
      }
    }
    EXPECT_EQ(log.entries_for_domain(query), expected) << "query=" << query;
  }
}

TEST(CtLogSet, SubmitAndEmbedAttachesDistinctScts) {
  TestPki pki;
  CtLogSet logs(3);
  const x509::Certificate cert =
      logs.submit_and_embed(pki.leaf("embed.example"), 42, 2);
  ASSERT_EQ(cert.scts.size(), 2u);
  EXPECT_NE(cert.scts[0].log_id, cert.scts[1].log_id);
  EXPECT_TRUE(logs.logged_anywhere(cert));
}

TEST(CtLogSet, SubmitAndEmbedDefaultsToPolicyCount) {
  // With no explicit count the embed follows the Chrome-style policy for the
  // certificate's lifetime: 2 SCTs at <= 180 days, 3 beyond.
  TestPki pki;
  CtLogSet logs(3);

  x509::Certificate short_lived = pki.leaf("short.example");
  short_lived.validity = {util::make_time(2021, 1, 1), util::make_time(2021, 4, 1)};
  const x509::Certificate short_embedded = logs.submit_and_embed(short_lived, 42);
  EXPECT_EQ(short_embedded.scts.size(), 2u);
  EXPECT_TRUE(logs.complies(short_embedded));

  x509::Certificate long_lived = pki.leaf("long.example");
  long_lived.validity = {util::make_time(2021, 1, 1), util::make_time(2022, 6, 1)};
  const x509::Certificate long_embedded = logs.submit_and_embed(long_lived, 42);
  EXPECT_EQ(long_embedded.scts.size(), 3u);
  EXPECT_TRUE(logs.complies(long_embedded));

  // The explicit override still models under-logged issuance.
  const x509::Certificate underlogged =
      logs.submit_and_embed(pki.leaf("under.example"), 42, 1);
  EXPECT_EQ(underlogged.scts.size(), 1u);
}

TEST(CtLogSet, PolicyThresholdsByLifetime) {
  EXPECT_EQ(CtLogSet::required_sct_count(90 * util::kSecondsPerDay), 2u);
  EXPECT_EQ(CtLogSet::required_sct_count(180 * util::kSecondsPerDay), 2u);
  EXPECT_EQ(CtLogSet::required_sct_count(181 * util::kSecondsPerDay), 3u);
}

TEST(CtLogSet, ComplianceRequiresRealLogEntries) {
  TestPki pki;
  CtLogSet logs(3);
  x509::Certificate leaf = pki.leaf("comply.example");
  leaf.validity = {util::make_time(2021, 1, 1), util::make_time(2021, 4, 1)};  // 90d

  EXPECT_FALSE(logs.complies(leaf));  // no SCTs

  const x509::Certificate embedded = logs.submit_and_embed(leaf, 7, 2);
  EXPECT_TRUE(logs.complies(embedded));

  // Forged SCTs naming unknown logs don't count.
  x509::Certificate forged = leaf;
  forged.scts = {{"bogus-log-1", 1}, {"bogus-log-2", 2}};
  EXPECT_FALSE(logs.complies(forged));

  // One SCT is below the policy threshold.
  const x509::Certificate single = logs.submit_and_embed(leaf, 7, 1);
  EXPECT_FALSE(logs.complies(single));
}

TEST(CtLogSet, UnionQueriesDeduplicate) {
  TestPki pki;
  CtLogSet logs(2);
  const x509::Certificate leaf = pki.leaf("union.example");
  logs.log(0).submit(leaf, 1);
  logs.log(1).submit(leaf, 2);
  EXPECT_EQ(logs.issuers_for_domain("union.example", test_validity()).size(), 1u);
  EXPECT_TRUE(logs.logged_matching(leaf));
}

TEST(CtLogSet, FindLogById) {
  CtLogSet logs(2);
  EXPECT_EQ(logs.find_log(logs.log(1).log_id()), &logs.log(1));
  EXPECT_EQ(logs.find_log("nope"), nullptr);
}

}  // namespace
}  // namespace certchain::ct
