// ct::Monitor behaviour: an honest growing log never alarms; history
// rewrites, rollbacks, root mismatches, refused proofs and broken inclusion
// answers each trip their own violation kind; and the checkpoint only
// advances past heads that verified, so a misbehaving log keeps alarming
// instead of being forgiven.
#include "ct/monitor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "../tests/helpers.hpp"
#include "ct/merkle_inc.hpp"
#include "obs/metrics.hpp"

namespace certchain::ct {
namespace {

using certchain::testing::TestPki;

/// A log front-end the tests can make lie in every §14.3 failure mode. It
/// keeps two divergent histories: `honest` (what earlier polls saw) and
/// `rewritten` (every leaf altered, so the two trees share no roots and a
/// rewritten head can never be proven consistent with an honest checkpoint).
class FakeRewritingLog : public LogClient {
 public:
  enum class Mode {
    kHonest,         // answer from the honest tree
    kRewritten,      // answer from the rewritten history
    kRollback,       // advertise an old honest head
    kRootLie,        // honest size, corrupted root
    kRefuseProofs,   // honest head, consistency() answers nullopt
    kBreakInclusion, // honest head, inclusion answers the wrong leaf hash
  };

  std::string log_id() const override { return "fake-log"; }

  void append(const std::string& data) {
    honest_.append(data);
    rewritten_.append("rewritten!" + data);
  }

  void set_mode(Mode mode) { mode_ = mode; }
  void set_rollback_size(std::size_t n) { rollback_size_ = n; }

  TreeHead tree_head() const override {
    switch (mode_) {
      case Mode::kRewritten:
        return {rewritten_.size(), rewritten_.root_hash()};
      case Mode::kRollback:
        return {rollback_size_, honest_.root_hash(rollback_size_)};
      case Mode::kRootLie: {
        TreeHead head{honest_.size(), honest_.root_hash()};
        head.root.words[0] ^= 0xbad;
        return head;
      }
      default:
        return {honest_.size(), honest_.root_hash()};
    }
  }

  std::optional<std::vector<Digest256>> consistency(
      std::size_t m, std::size_t n) const override {
    if (mode_ == Mode::kRefuseProofs) return std::nullopt;
    const IncrementalMerkleTree& tree = active_tree();
    if (m > n || n > tree.size()) return std::nullopt;
    return tree.consistency_proof(m, n);
  }

  std::optional<InclusionAnswer> inclusion(std::size_t index,
                                           std::size_t n) const override {
    const IncrementalMerkleTree& tree = active_tree();
    if (n > tree.size() || index >= n) return std::nullopt;
    InclusionAnswer answer{tree.leaf_hash_at(index),
                           tree.inclusion_proof(index, n)};
    if (mode_ == Mode::kBreakInclusion) answer.leaf.words[0] ^= 0xbad;
    return answer;
  }

 private:
  const IncrementalMerkleTree& active_tree() const {
    return mode_ == Mode::kRewritten ? rewritten_ : honest_;
  }

  IncrementalMerkleTree honest_;
  IncrementalMerkleTree rewritten_;
  Mode mode_ = Mode::kHonest;
  std::size_t rollback_size_ = 0;
};

std::shared_ptr<FakeRewritingLog> fake_with(std::size_t entries) {
  auto fake = std::make_shared<FakeRewritingLog>();
  for (std::size_t i = 0; i < entries; ++i) {
    fake->append("entry-" + std::to_string(i));
  }
  return fake;
}

TEST(CtMonitor, HonestGrowingLogNeverAlarms) {
  TestPki pki;
  CtLog log("watched");
  for (int i = 0; i < 6; ++i) {
    log.submit(pki.leaf("pre" + std::to_string(i) + ".example"), 1);
  }
  Monitor monitor;
  monitor.watch(std::make_shared<CtLogView>(log));

  EXPECT_EQ(monitor.poll_once(), 0u);  // baseline
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      log.submit(
          pki.leaf("r" + std::to_string(round) + "n" + std::to_string(i) + ".example"),
          2);
    }
    EXPECT_EQ(monitor.poll_once(), 0u);
  }
  const MonitorStatus status = monitor.status();
  EXPECT_EQ(status.polls, 4u);
  EXPECT_EQ(status.sth_verified, 4u);
  EXPECT_EQ(status.inclusion_failures, 0u);
  EXPECT_GT(status.inclusion_checks, 0u);
  ASSERT_EQ(status.checkpoints.size(), 1u);
  EXPECT_EQ(status.checkpoints[0].tree_size, log.size());
  EXPECT_EQ(status.checkpoints[0].root, log.root_hash());
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(CtMonitor, HistoryRewriteTripsConsistencyAndPinsCheckpoint) {
  auto fake = fake_with(8);
  Monitor monitor;
  monitor.watch(fake);
  ASSERT_EQ(monitor.poll_once(), 0u);  // checkpoint at honest size 8

  // The log rewrites history and keeps growing: same append count, different
  // leaves. Its own proofs are internally consistent, but cannot connect the
  // honest checkpoint to the rewritten head.
  for (int i = 0; i < 4; ++i) fake->append("post-" + std::to_string(i));
  fake->set_mode(FakeRewritingLog::Mode::kRewritten);
  EXPECT_GE(monitor.poll_once(), 1u);

  const auto violations = monitor.violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, Violation::Kind::kConsistency);
  EXPECT_EQ(violations[0].checkpoint_size, 8u);
  EXPECT_EQ(violations[0].observed_size, 12u);
  EXPECT_EQ(violations[0].detail, "consistency proof failed to verify");

  // The checkpoint did not advance — the next rewritten poll alarms again.
  EXPECT_EQ(monitor.status().checkpoints[0].tree_size, 8u);
  EXPECT_GE(monitor.poll_once(), 1u);

  // Back to honest history: the checkpoint still verifies forward.
  fake->set_mode(FakeRewritingLog::Mode::kHonest);
  EXPECT_EQ(monitor.poll_once(), 0u);
  EXPECT_EQ(monitor.status().checkpoints[0].tree_size, 12u);
}

TEST(CtMonitor, RollbackFlagged) {
  auto fake = fake_with(10);
  Monitor monitor;
  monitor.watch(fake);
  ASSERT_EQ(monitor.poll_once(), 0u);

  fake->set_mode(FakeRewritingLog::Mode::kRollback);
  fake->set_rollback_size(6);
  EXPECT_GE(monitor.poll_once(), 1u);
  const auto violations = monitor.violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, Violation::Kind::kRollback);
  EXPECT_EQ(violations[0].checkpoint_size, 10u);
  EXPECT_EQ(violations[0].observed_size, 6u);
}

TEST(CtMonitor, RootMismatchFlagged) {
  auto fake = fake_with(9);
  Monitor monitor;
  monitor.watch(fake);
  ASSERT_EQ(monitor.poll_once(), 0u);

  fake->set_mode(FakeRewritingLog::Mode::kRootLie);
  EXPECT_GE(monitor.poll_once(), 1u);
  const auto violations = monitor.violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, Violation::Kind::kRootMismatch);
}

TEST(CtMonitor, RefusedConsistencyProofIsViolation) {
  auto fake = fake_with(5);
  Monitor monitor;
  monitor.watch(fake);
  ASSERT_EQ(monitor.poll_once(), 0u);

  for (int i = 0; i < 3; ++i) fake->append("grow-" + std::to_string(i));
  fake->set_mode(FakeRewritingLog::Mode::kRefuseProofs);
  EXPECT_GE(monitor.poll_once(), 1u);
  const auto violations = monitor.violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].kind, Violation::Kind::kConsistency);
  EXPECT_EQ(violations[0].detail, "log refused consistency proof");
}

TEST(CtMonitor, BrokenInclusionAnswersFlagged) {
  auto fake = fake_with(16);
  MonitorConfig config;
  config.inclusion_samples = 3;
  Monitor monitor(config);
  monitor.watch(fake);
  fake->set_mode(FakeRewritingLog::Mode::kBreakInclusion);
  // Even the baseline poll samples inclusion; every sample fails.
  EXPECT_EQ(monitor.poll_once(), 3u);
  const MonitorStatus status = monitor.status();
  EXPECT_EQ(status.inclusion_checks, 3u);
  EXPECT_EQ(status.inclusion_failures, 3u);
  for (const Violation& violation : monitor.violations()) {
    EXPECT_EQ(violation.kind, Violation::Kind::kInclusion);
  }
}

TEST(CtMonitor, MetricsCountEveryOutcome) {
  obs::MetricsRegistry metrics;
  auto fake = fake_with(7);
  MonitorConfig config;
  config.inclusion_samples = 2;
  Monitor monitor(config, &metrics);
  monitor.watch(fake);

  monitor.poll_once();  // clean baseline
  fake->set_mode(FakeRewritingLog::Mode::kRootLie);
  monitor.poll_once();  // root mismatch
  fake->set_mode(FakeRewritingLog::Mode::kRollback);
  fake->set_rollback_size(3);
  monitor.poll_once();  // rollback

  EXPECT_EQ(metrics.counter("ct.monitor.polls"), 3u);
  EXPECT_EQ(metrics.counter("ct.monitor.sth_verified"), 1u);
  EXPECT_EQ(metrics.counter("ct.monitor.root_mismatches"), 1u);
  EXPECT_EQ(metrics.counter("ct.monitor.rollbacks"), 1u);
  EXPECT_EQ(metrics.counter("ct.monitor.violations"),
            monitor.violations().size());
  EXPECT_EQ(metrics.counter("ct.monitor.inclusion_checks"), 6u);
  EXPECT_EQ(metrics.gauge("ct.monitor.watched_logs"), 1.0);
}

TEST(CtMonitor, ViolationKindNames) {
  EXPECT_STREQ(violation_kind_name(Violation::Kind::kRollback), "rollback");
  EXPECT_STREQ(violation_kind_name(Violation::Kind::kRootMismatch),
               "root_mismatch");
  EXPECT_STREQ(violation_kind_name(Violation::Kind::kConsistency),
               "consistency");
  EXPECT_STREQ(violation_kind_name(Violation::Kind::kInclusion), "inclusion");
}

}  // namespace
}  // namespace certchain::ct
