// DistinguishedName: RFC 4514 parsing, escaping, canonical matching.
#include "x509/distinguished_name.hpp"

#include <gtest/gtest.h>

namespace certchain::x509 {
namespace {

TEST(DistinguishedName, ParsesSimpleDn) {
  const auto parsed = DistinguishedName::parse("CN=example.com,O=Example Inc,C=US");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ(parsed->rdns()[0].type, "CN");
  EXPECT_EQ(parsed->rdns()[0].value, "example.com");
  EXPECT_EQ(parsed->rdns()[1].value, "Example Inc");
  EXPECT_EQ(parsed->country(), "US");
}

TEST(DistinguishedName, ParsesEscapedSpecials) {
  const auto parsed = DistinguishedName::parse(R"(CN=Acme\, Inc.,O=a\=b,C=US)");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->common_name(), "Acme, Inc.");
  EXPECT_EQ(parsed->organization(), "a=b");
}

TEST(DistinguishedName, ParsesEscapedBackslashAndHexPairs) {
  const auto parsed = DistinguishedName::parse(R"(CN=back\\slash,O=hex\41value)");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->common_name(), R"(back\slash)");
  EXPECT_EQ(parsed->organization(), "hexAvalue");
}

TEST(DistinguishedName, SkipsInsignificantSpaces) {
  const auto parsed = DistinguishedName::parse("CN = spaced , O = padded org ");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->common_name(), "spaced");
  EXPECT_EQ(parsed->organization(), "padded org");
}

TEST(DistinguishedName, PreservesEscapedEdgeSpaces) {
  const auto parsed = DistinguishedName::parse(R"(CN=\ lead and trail\ )");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->common_name(), " lead and trail ");
}

TEST(DistinguishedName, RejectsMalformedInputs) {
  EXPECT_FALSE(DistinguishedName::parse("novalue").has_value());
  EXPECT_FALSE(DistinguishedName::parse("CN=x,").has_value());       // trailing comma
  EXPECT_FALSE(DistinguishedName::parse("=value").has_value());      // empty type
  EXPECT_FALSE(DistinguishedName::parse("CN=dangling\\").has_value());
  EXPECT_FALSE(DistinguishedName::parse("CN=x,noeq,C=US").has_value());
  EXPECT_THROW(DistinguishedName::parse_or_die("bad"), std::invalid_argument);
}

TEST(DistinguishedName, EmptyInputYieldsEmptyDn) {
  const auto parsed = DistinguishedName::parse("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
  EXPECT_EQ(parsed->to_string(), "");
}

class DnRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(DnRoundTrip, SerializeParseIdentity) {
  const auto first = DistinguishedName::parse(GetParam());
  ASSERT_TRUE(first.has_value());
  const std::string serialized = first->to_string();
  const auto second = DistinguishedName::parse(serialized);
  ASSERT_TRUE(second.has_value()) << serialized;
  EXPECT_EQ(*first, *second) << serialized;
  EXPECT_EQ(second->to_string(), serialized);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DnRoundTrip,
    ::testing::Values(
        "CN=example.com",
        "CN=example.com,O=Example Inc,C=US",
        R"(CN=Acme\, Inc.,OU=R\=D,C=GB)",
        "emailAddress=webmaster@localhost,CN=localhost,OU=none,O=none,"
        "L=Sometown,ST=Someprovince,C=US",
        R"(CN=we\\ird\,name,O=x)",
        "CN=Sim USERTrust RSA Certification Authority,O=Sim The USERTRUST "
        "Network,C=US"));

TEST(DistinguishedName, CanonicalMatchingIsCaseInsensitive) {
  const auto a = DistinguishedName::parse_or_die("CN=Example.COM,o=Acme");
  const auto b = DistinguishedName::parse_or_die("cn=example.com,O=ACME");
  EXPECT_TRUE(a.matches(b));
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
  EXPECT_NE(a, b);  // strict equality still sees the difference
}

TEST(DistinguishedName, CanonicalCollapsesInternalWhitespace) {
  const auto a = DistinguishedName::parse_or_die("CN=Example   Inc");
  const auto b = DistinguishedName::parse_or_die("CN=Example Inc");
  EXPECT_TRUE(a.matches(b));
}

TEST(DistinguishedName, MatchingIsOrderSensitive) {
  const auto a = DistinguishedName::parse_or_die("CN=x,O=y");
  const auto b = DistinguishedName::parse_or_die("O=y,CN=x");
  EXPECT_FALSE(a.matches(b));  // RDN sequence order is significant
}

TEST(DistinguishedName, DifferentValuesDoNotMatch) {
  const auto a = DistinguishedName::parse_or_die("CN=alpha,O=org");
  const auto b = DistinguishedName::parse_or_die("CN=beta,O=org");
  EXPECT_FALSE(a.matches(b));
}

TEST(DistinguishedName, AttributeLookupIsTypeCaseInsensitive) {
  const auto parsed = DistinguishedName::parse_or_die("cn=x,o=y,st=VA");
  EXPECT_EQ(parsed.attribute("CN"), "x");
  EXPECT_EQ(parsed.attribute("St"), "VA");
  EXPECT_FALSE(parsed.attribute("L").has_value());
}

TEST(DistinguishedName, AddBuildsIncrementally) {
  DistinguishedName name;
  name.add("CN", "svc.example").add("O", "Org");
  EXPECT_EQ(name.to_string(), "CN=svc.example,O=Org");
  EXPECT_EQ(name.size(), 2u);
}

TEST(EscapeDnValue, EscapesExactlyWhatRfc4514Requires) {
  EXPECT_EQ(escape_dn_value("plain"), "plain");
  EXPECT_EQ(escape_dn_value("a,b"), R"(a\,b)");
  EXPECT_EQ(escape_dn_value(" lead"), R"(\ lead)");
  EXPECT_EQ(escape_dn_value("trail "), R"(trail\ )");
  EXPECT_EQ(escape_dn_value("#hash"), R"(\#hash)");
  EXPECT_EQ(escape_dn_value("mid dle"), "mid dle");  // interior space is fine
  EXPECT_EQ(escape_dn_value("a+b<c>d;e\"f\\g"), R"(a\+b\<c\>d\;e\"f\\g)");
}

TEST(DistinguishedName, CanonicalDistinguishesSeparatorAmbiguity) {
  // "CN=a,O=b" must not canonicalize equal to a DN whose single value
  // contains the literal text of two RDNs.
  const auto two = DistinguishedName::parse_or_die("CN=a,O=b");
  const auto one = DistinguishedName::parse_or_die(R"(CN=a\,O=b)");
  EXPECT_FALSE(two.matches(one));
}

}  // namespace
}  // namespace certchain::x509
