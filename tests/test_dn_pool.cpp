// DnPool unit + differential coverage (DESIGN.md §16).
//
// Four layers of proof, from the pool outward:
//   1. Intern/lookup round-trips and canonicalize-once semantics: distinct
//      spellings that canonicalize equally share one id, while
//      name_for_raw() preserves each spelling's own parse (display
//      fidelity).
//   2. The absorb() id-map: remapping a shard pool's ids through the map
//      must land every entry on the merged pool's id for the same canonical
//      form, and absorbing shard pools in shard order must reproduce — id
//      for id — the pool a serial reader builds over the whole stream.
//   3. The record half of the merge protocol: sharded StreamingLogReader
//      ingest (own pool per shard, absorb + remap_dn_ids at merge) must
//      yield records whose subject_id/issuer_id are byte-identical to a
//      serial read's, including a shard boundary primed mid-body.
//   4. End to end: over a DN-dense datagen population, serial, sharded
//      parallel, and streaming pipeline runs must render byte-identical
//      reports.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/dn_id.hpp"
#include "core/dn_pool.hpp"
#include "core/log_source.hpp"
#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "datagen/scenario.hpp"
#include "x509/distinguished_name.hpp"
#include "zeek/log_io.hpp"
#include "zeek/log_stream.hpp"
#include "zeek/records.hpp"

namespace certchain {
namespace {

using core::DnId;
using core::DnPool;
using core::kInvalidDnId;

TEST(DnPool, InternRoundTripsAndDeduplicates) {
  DnPool pool;
  const DnId a = pool.intern("CN=Example CA,O=Example Org,C=US");
  const DnId b = pool.intern("CN=Other CA,O=Example Org,C=US");
  EXPECT_NE(a, kInvalidDnId);
  EXPECT_NE(b, kInvalidDnId);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);

  // Repeating the exact spelling hits the raw memo: same id, no growth.
  EXPECT_EQ(pool.intern("CN=Example CA,O=Example Org,C=US"), a);
  EXPECT_EQ(pool.size(), 2u);

  // Accessors agree with a fresh parse of the same bytes.
  const x509::DistinguishedName parsed =
      x509::DistinguishedName::parse_or_die("CN=Example CA,O=Example Org,C=US");
  EXPECT_EQ(pool.canonical(a), std::string_view(parsed.canonical()));
  EXPECT_EQ(pool.display(a), parsed.to_string());
  EXPECT_EQ(pool.name(a), parsed);

  // find_canonical projects back; unknown canonicals miss.
  EXPECT_EQ(pool.find_canonical(parsed.canonical()), a);
  EXPECT_EQ(pool.find_canonical("cn=never interned"), kInvalidDnId);

  // Interning the parsed form maps onto the raw-interned entry.
  EXPECT_EQ(pool.intern(parsed), a);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(DnPool, CanonicalizesOnceAtInternTime) {
  DnPool pool;
  const DnId base = pool.intern("CN=Example CA,O=Example Org");
  // Case changes and whitespace runs canonicalize away: one id for all
  // spellings, even though every spelling is a distinct raw-memo key.
  EXPECT_EQ(pool.intern("cn=example ca,o=example org"), base);
  EXPECT_EQ(pool.intern("CN=EXAMPLE   CA,O=Example Org"), base);
  EXPECT_EQ(pool.size(), 1u);

  // Display fidelity under canonical collision: the pool entry keeps the
  // first spelling, but name_for_raw() parses *these* bytes.
  EXPECT_EQ(pool.display(base), "CN=Example CA,O=Example Org");
  const x509::DistinguishedName& variant =
      pool.name_for_raw("cn=example ca,o=example org");
  EXPECT_EQ(variant.to_string(), "cn=example ca,o=example org");
  EXPECT_EQ(std::string_view(variant.canonical()), pool.canonical(base));
}

TEST(DnPool, DnHandleEquality) {
  DnPool pool;
  DnPool other;
  const core::Dn a(pool.intern("CN=Shared"), &pool);
  const core::Dn b(pool.intern("cn=shared"), &pool);
  const core::Dn c(pool.intern("CN=Different"), &pool);
  EXPECT_EQ(a, b);  // same pool: integer compare
  EXPECT_NE(a, c);

  // Cross-pool handles fall back to canonical-view comparison.
  const core::Dn foreign(other.intern("CN=SHARED"), &other);
  EXPECT_EQ(a, foreign);

  const core::Dn invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(invalid.view(), "");
  EXPECT_NE(a, invalid);
  EXPECT_EQ(invalid, core::Dn());
}

TEST(DnPool, AbsorbRemapsShardIdsOntoMergedPool) {
  DnPool merged;
  merged.intern("CN=Already Here");
  merged.intern("CN=Shared Issuer");

  DnPool shard;
  shard.intern("CN=Shared Issuer");   // duplicate of a merged entry
  shard.intern("CN=Shard Only One");  // new to merged
  shard.intern("cn=already here");    // canonical duplicate, new spelling
  shard.intern("CN=Shard Only Two");

  const std::vector<DnId> id_map = merged.absorb(shard);
  ASSERT_EQ(id_map.size(), shard.size());
  // Every shard id must land on the merged id of the same canonical form,
  // with new entries appended in shard first-occurrence order.
  for (DnId old_id = 0; old_id < shard.size(); ++old_id) {
    const DnId new_id = id_map[old_id];
    ASSERT_NE(new_id, kInvalidDnId);
    EXPECT_EQ(merged.canonical(new_id), shard.canonical(old_id)) << old_id;
  }
  EXPECT_EQ(merged.size(), 4u);
  EXPECT_EQ(id_map[0], merged.find_canonical(shard.canonical(0)));
  EXPECT_LT(id_map[1], merged.size());
  EXPECT_LT(id_map[3], merged.size());
  EXPECT_LT(id_map[1], id_map[3]);  // shard order preserved for new entries
}

TEST(DnPool, RemapDnIdsRewritesRecordsAndLeavesInvalidAlone) {
  const std::vector<DnId> id_map = {7, 3};
  zeek::X509LogRecord x509;
  x509.subject_id = 0;
  x509.issuer_id = 1;
  zeek::remap_dn_ids(x509, id_map);
  EXPECT_EQ(x509.subject_id, 7u);
  EXPECT_EQ(x509.issuer_id, 3u);

  zeek::SslLogRecord ssl;  // never interned: ids stay invalid
  zeek::remap_dn_ids(ssl, id_map);
  EXPECT_EQ(ssl.subject_id, kInvalidDnId);
  EXPECT_EQ(ssl.issuer_id, kInvalidDnId);
}

TEST(DnPool, CollisionHeavyCorpusSharesIds) {
  // Re-spell every issuer/subject a datagen scenario produces (case flips,
  // padded whitespace): the pool must keep one id per canonical form no
  // matter how many spellings arrive.
  datagen::ScenarioConfig config;
  config.seed = 4242;
  config.chain_scale = 1.0 / 500.0;
  config.total_connections = 500;
  config.client_count = 40;
  config.include_length_outliers = false;
  const auto scenario = datagen::build_study_scenario(config);
  const netsim::GeneratedLogs logs = scenario->generate_logs();
  ASSERT_FALSE(logs.x509.empty());

  const auto upper = [](std::string_view text) {
    std::string out(text);
    for (char& c : out) c = static_cast<char>(std::toupper(
        static_cast<unsigned char>(c)));
    return out;
  };

  DnPool pool;
  std::size_t checked = 0;
  for (const zeek::X509LogRecord& record : logs.x509) {
    const DnId subject = pool.intern(record.subject);
    const DnId issuer = pool.intern(record.issuer);
    EXPECT_EQ(pool.intern(upper(record.subject)), subject);
    EXPECT_EQ(pool.intern(upper(record.issuer)), issuer);
    ++checked;
  }
  ASSERT_GT(checked, 0u);

  // Pool size equals the number of distinct canonical forms, not spellings.
  std::size_t unique_canonicals = 0;
  for (DnId id = 0; id < pool.size(); ++id) {
    EXPECT_EQ(pool.find_canonical(pool.canonical(id)), id);
    ++unique_canonicals;
  }
  EXPECT_EQ(unique_canonicals, pool.size());
}

/// Serial read of a log text: every record lands in `out`, DNs interned
/// through `pool`.
template <typename Reader, typename Record>
void read_all(std::string_view text, const std::string& fields, DnPool* pool,
              std::vector<Record>& out) {
  Reader reader(fields, [&](Record record) { out.push_back(std::move(record)); });
  if (pool != nullptr) reader.set_dn_pool(pool);
  reader.feed(text);
  reader.finish();
}

/// Sharded read: split `text` at a line boundary near the middle, give each
/// shard its own pool and a primed reader, then merge via absorb() +
/// remap_dn_ids — the exact protocol pipeline_parallel.cpp runs.
template <typename Reader, typename Record>
void read_sharded(std::string_view text, const std::string& fields,
                  DnPool& merged, std::vector<Record>& out) {
  std::size_t cut = text.find('\n', text.size() / 2);
  ASSERT_NE(cut, std::string_view::npos);
  ++cut;
  const std::string_view shards[2] = {text.substr(0, cut), text.substr(cut)};

  std::vector<Record> shard_records[2];
  DnPool shard_pools[2];
  std::size_t line_offset = 0;
  bool in_body = false;
  for (int i = 0; i < 2; ++i) {
    Reader reader(fields, [&, i](Record record) {
      shard_records[i].push_back(std::move(record));
    });
    reader.set_dn_pool(&shard_pools[i]);
    reader.prime(in_body, line_offset);
    reader.feed(shards[i]);
    reader.finish();
    const zeek::ShardHeaderScan scan =
        zeek::scan_shard_header_state(shards[i], fields);
    line_offset += scan.newlines;
    if (scan.has_directive) in_body = scan.exit_in_body;
  }

  for (int i = 0; i < 2; ++i) {
    const std::vector<DnId> id_map = merged.absorb(shard_pools[i]);
    for (Record& record : shard_records[i]) {
      zeek::remap_dn_ids(record, id_map);
      out.push_back(std::move(record));
    }
  }
}

TEST(DnPoolDifferential, ShardedInterningMatchesSerialIdForId) {
  datagen::ScenarioConfig config;
  config.seed = 20200901;
  config.chain_scale = 1.0 / 2000.0;
  config.total_connections = 2000;
  config.client_count = 150;
  config.include_length_outliers = false;
  const auto scenario = datagen::build_study_scenario(config);
  const netsim::GeneratedLogs logs = scenario->generate_logs();

  zeek::SslLogWriter ssl_writer;
  for (const auto& record : logs.ssl) ssl_writer.add(record);
  const std::string ssl_text = ssl_writer.finish();
  zeek::X509LogWriter x509_writer;
  for (const auto& record : logs.x509) x509_writer.add(record);
  const std::string x509_text = x509_writer.finish();

  // Serial reference: one pool over ssl then x509, the run_text_serial order.
  DnPool serial_pool;
  std::vector<zeek::SslLogRecord> serial_ssl;
  std::vector<zeek::X509LogRecord> serial_x509;
  read_all<zeek::StreamingSslReader>(ssl_text, zeek::ssl_log_fields(),
                                     &serial_pool, serial_ssl);
  read_all<zeek::StreamingX509Reader>(x509_text, zeek::x509_log_fields(),
                                      &serial_pool, serial_x509);
  ASSERT_FALSE(serial_ssl.empty());
  ASSERT_FALSE(serial_x509.empty());
  ASSERT_GT(serial_pool.size(), 0u);

  // Sharded: per-shard pools absorbed in shard order, ssl stream then x509.
  DnPool merged_pool;
  std::vector<zeek::SslLogRecord> sharded_ssl;
  std::vector<zeek::X509LogRecord> sharded_x509;
  read_sharded<zeek::StreamingSslReader>(ssl_text, zeek::ssl_log_fields(),
                                         merged_pool, sharded_ssl);
  read_sharded<zeek::StreamingX509Reader>(x509_text, zeek::x509_log_fields(),
                                          merged_pool, sharded_x509);

  // The merged pool must be the serial pool, entry for entry: absorbing
  // per-shard first-occurrence sequences in shard order reproduces the
  // global first-occurrence sequence.
  ASSERT_EQ(merged_pool.size(), serial_pool.size());
  for (DnId id = 0; id < serial_pool.size(); ++id) {
    EXPECT_EQ(merged_pool.canonical(id), serial_pool.canonical(id)) << id;
    EXPECT_EQ(merged_pool.display(id), serial_pool.display(id)) << id;
  }

  // And every remapped record id must match the serial read exactly.
  ASSERT_EQ(sharded_ssl.size(), serial_ssl.size());
  for (std::size_t i = 0; i < serial_ssl.size(); ++i) {
    EXPECT_EQ(sharded_ssl[i].subject_id, serial_ssl[i].subject_id) << i;
    EXPECT_EQ(sharded_ssl[i].issuer_id, serial_ssl[i].issuer_id) << i;
    EXPECT_EQ(sharded_ssl[i], serial_ssl[i]) << i;
  }
  ASSERT_EQ(sharded_x509.size(), serial_x509.size());
  for (std::size_t i = 0; i < serial_x509.size(); ++i) {
    EXPECT_EQ(sharded_x509[i].subject_id, serial_x509[i].subject_id) << i;
    EXPECT_EQ(sharded_x509[i].issuer_id, serial_x509[i].issuer_id) << i;
    EXPECT_EQ(sharded_x509[i], serial_x509[i]) << i;
  }
}

TEST(DnPoolDifferential, SerialParallelStreamingReportsByteIdentical) {
  // DN-dense population: many distinct chains relative to connection count,
  // so the pool carries thousands of entries through every engine.
  datagen::ScenarioConfig config;
  config.seed = 99173;
  config.chain_scale = 1.0 / 40.0;
  config.total_connections = 3000;
  config.client_count = 200;
  config.include_length_outliers = false;
  const auto scenario = datagen::build_study_scenario(config);
  const netsim::GeneratedLogs logs = scenario->generate_logs();

  zeek::SslLogWriter ssl_writer;
  for (const auto& record : logs.ssl) ssl_writer.add(record);
  const std::string ssl_text = ssl_writer.finish();
  zeek::X509LogWriter x509_writer;
  for (const auto& record : logs.x509) x509_writer.add(record);
  const std::string x509_text = x509_writer.finish();

  const core::StudyPipeline pipeline(
      scenario->world.stores(), scenario->world.ct_logs(), scenario->vendors,
      &scenario->world.cross_signs());
  core::ReportTextOptions text_options;
  text_options.graphs = true;

  core::RunOptions serial_options;
  serial_options.threads = 1;
  const std::string serial_text = render_report_text(
      pipeline.run(core::StudyInput::text(ssl_text, x509_text), serial_options),
      text_options);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    core::RunOptions options;
    options.threads = threads;
    EXPECT_EQ(render_report_text(
                  pipeline.run(core::StudyInput::text(ssl_text, x509_text),
                               options),
                  text_options),
              serial_text)
        << threads << " threads";
  }

  core::RunOptions stream_options;
  stream_options.threads = 1;
  stream_options.chunk_bytes = 16 * 1024;
  EXPECT_EQ(render_report_text(
                pipeline.run(core::StudyInput::sources(
                                 core::make_text_source(ssl_text),
                                 core::make_text_source(x509_text)),
                             stream_options),
                text_options),
            serial_text);
}

}  // namespace
}  // namespace certchain
