// The continuous revisit fleet's contracts (DESIGN.md §17):
//
//  * delta semantics — compute_epoch_delta classifies churn exactly
//    (appeared / disappeared / re-keyed / re-issued / unchanged) and the
//    summary JSON round-trip is lossless for everything the renderers read;
//  * determinism — same seed + same fault plan + same drifted populations
//    yield byte-identical summaries, rows, and delta reports across reruns
//    AND across worker counts (the scheduling differential);
//  * rate limiting — token buckets charge virtual waits, never wall-clock
//    sleeps, and every ledger reconciles per epoch and cumulatively;
//  * service differential — a live ServiceState fed epoch-by-epoch through
//    ingest_append renders reports byte-identical to one batch fold over the
//    concatenated epochs, the fleet_status / epoch_delta endpoints answer
//    from the RCU snapshot byte-identically to the fleet-side renders, and a
//    kill -9 mid-epoch recovers through the WAL to the never-crashed bytes.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <memory>
#include <string>
#include <vector>

#include "core/epoch_delta.hpp"
#include "core/report_text.hpp"
#include "datagen/epoch_drift.hpp"
#include "datagen/scenario.hpp"
#include "fleet/fleet.hpp"
#include "netsim/faults.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service_state.hpp"
#include "svc/telemetry.hpp"
#include "svc/wal.hpp"
#include "zeek/log_io.hpp"

namespace certchain {
namespace {

datagen::ScenarioConfig small_scenario_config() {
  datagen::ScenarioConfig config;
  config.seed = 20200901;
  config.chain_scale = 1.0 / 400.0;
  config.total_connections = 400;
  config.client_count = 60;
  config.include_length_outliers = false;
  return config;
}

core::EpochSummary make_summary(
    std::size_t index,
    const std::vector<std::tuple<std::string, std::string, std::string>>&
        targets) {
  // (target, fingerprint, key) triples; category flags are irrelevant to the
  // churn classification under test.
  core::EpochSummary summary;
  summary.index = index;
  for (const auto& [target, fingerprint, key] : targets) {
    core::EpochTargetRecord record;
    record.target = target;
    record.leaf_fingerprint = fingerprint;
    record.leaf_key = key;
    record.chain_length = 1;
    summary.targets[target] = record;
    ++summary.reachable;
  }
  summary.health.scanned = summary.reachable;
  summary.health.reachable_clean = summary.reachable;
  return summary;
}

// --- delta semantics, no fleet involved -------------------------------------

TEST(FleetDelta, ChurnClassificationIsExact) {
  const core::EpochSummary before = make_summary(
      0, {{"a:443", "fp-a", "key-a"},
          {"b:443", "fp-b", "key-b"},
          {"c:443", "fp-c", "key-c"},
          {"gone:443", "fp-g", "key-g"}});
  const core::EpochSummary after = make_summary(
      1, {{"a:443", "fp-a", "key-a"},        // unchanged
          {"b:443", "fp-b2", "key-b2"},      // new fingerprint + new key
          {"c:443", "fp-c2", "key-c"},       // new fingerprint, same key
          {"new:443", "fp-n", "key-n"}});    // appeared

  const core::EpochDelta delta = core::compute_epoch_delta(before, after);
  EXPECT_EQ(delta.from_index, 0u);
  EXPECT_EQ(delta.to_index, 1u);
  EXPECT_EQ(delta.appeared, std::vector<std::string>{"new:443"});
  EXPECT_EQ(delta.disappeared, std::vector<std::string>{"gone:443"});
  EXPECT_EQ(delta.re_keyed, std::vector<std::string>{"b:443"});
  EXPECT_EQ(delta.re_issued, std::vector<std::string>{"c:443"});
  EXPECT_EQ(delta.unchanged, 1u);
  EXPECT_EQ(delta.reachable_shift, 0);
}

TEST(FleetDelta, SummaryJsonRoundTripRendersByteIdentical) {
  core::EpochSummary summary = make_summary(
      2, {{"a:443", "fp-a", "key-a"}, {"b:8443", "fp-b", "key-b"}});
  summary.targets["a:443"].lets_encrypt = true;
  summary.targets["a:443"].all_public = true;
  summary.targets["a:443"].leaf_subject = "cn=a,o=example";
  summary.targets["a:443"].leaf_issuer = "cn=r3,o=let's encrypt";
  summary.targets["b:8443"].all_non_public = true;
  summary.targets["b:8443"].hierarchical_non_public = true;
  summary.targets["b:8443"].chain_length = 3;
  summary.targets["b:8443"].degraded = true;
  summary.lets_encrypt = 1;
  summary.all_non_public = 1;
  summary.hierarchical_non_public = 1;
  summary.health.reachable_clean = 1;
  summary.health.reachable_degraded = 1;
  summary.health.unreachable = 4;
  summary.health.scanned = 6;
  summary.health.ledger.targets = 6;
  summary.health.ledger.attempts = 11;
  summary.health.ledger.retries = 5;
  summary.health.ledger.successes = 2;
  summary.health.ledger.failures = 4;
  summary.health.ledger.backoff_ms_total = 321;
  summary.health.ledger.error_counts[scanner::ScanError::kConnectTimeout] = 3;

  obs::json::Writer writer;
  core::write_epoch_summary_json(writer, summary);
  const std::string json = std::move(writer).str();
  const auto parsed_value = obs::json::parse(json);
  ASSERT_TRUE(parsed_value.has_value());
  const auto round = core::parse_epoch_summary(*parsed_value);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(core::render_epoch_summary(*round),
            core::render_epoch_summary(summary));

  // Round-tripped summaries also delta identically.
  const core::EpochSummary other =
      make_summary(3, {{"a:443", "fp-a2", "key-a2"}});
  EXPECT_EQ(core::render_epoch_delta(core::compute_epoch_delta(*round, other)),
            core::render_epoch_delta(core::compute_epoch_delta(summary, other)));
}

TEST(FleetDelta, ParseRejectsInconsistentSummaries) {
  core::EpochSummary summary = make_summary(0, {{"a:443", "fp", "key"}});
  summary.health.reachable_clean = 7;  // no longer matches the target records
  obs::json::Writer writer;
  core::write_epoch_summary_json(writer, summary);
  const auto parsed_value = obs::json::parse(std::move(writer).str());
  ASSERT_TRUE(parsed_value.has_value());
  EXPECT_FALSE(core::parse_epoch_summary(*parsed_value).has_value());

  EXPECT_FALSE(core::parse_epoch_summary(obs::json::Value{}).has_value());
}

// --- determinism over the drifted population --------------------------------

struct FleetRun {
  std::string section;
  std::string ledger;
  std::vector<std::vector<std::string>> ssl_rows;
  std::vector<std::vector<std::string>> x509_rows;
};

FleetRun run_fleet(datagen::Scenario& scenario, std::size_t epochs,
                   std::size_t workers, std::uint64_t seed) {
  datagen::EpochDriftConfig drift;
  drift.seed = seed;
  const datagen::EpochDrifter drifter(scenario, drift, epochs);
  netsim::FaultPlan plan(seed ^ 0xF1EE7, netsim::FaultRates::uniform(0.05));

  fleet::FleetConfig config;
  config.seed = seed;
  config.workers = workers;
  fleet::ScanFleet fleet(config, scenario.world.stores());
  FleetRun run;
  for (std::size_t epoch = 0; epoch < drifter.epoch_count(); ++epoch) {
    fleet::EpochOutcome outcome = fleet.run_epoch(drifter.epoch(epoch), plan);
    EXPECT_TRUE(outcome.summary.health.reconciles());
    run.ssl_rows.push_back(std::move(outcome.ssl_rows));
    run.x509_rows.push_back(std::move(outcome.x509_rows));
  }
  run.section = core::render_fleet_section(fleet.summaries());
  run.ledger = fleet.ledger().to_string();
  return run;
}

TEST(FleetDeterminism, RerunsAndWorkerCountsAreByteIdentical) {
  // Two scenarios built from the same seed are two independent worlds; the
  // second fleet also runs with a very different worker count, so equality
  // proves scheduling and chunking never leak into the results.
  auto scenario_a = datagen::build_study_scenario(small_scenario_config());
  auto scenario_b = datagen::build_study_scenario(small_scenario_config());
  const FleetRun a = run_fleet(*scenario_a, 3, 1, 20241101);
  const FleetRun b = run_fleet(*scenario_b, 3, 8, 20241101);

  EXPECT_EQ(a.section, b.section);
  EXPECT_EQ(a.ledger, b.ledger);
  ASSERT_EQ(a.ssl_rows.size(), b.ssl_rows.size());
  for (std::size_t epoch = 0; epoch < a.ssl_rows.size(); ++epoch) {
    EXPECT_EQ(a.ssl_rows[epoch], b.ssl_rows[epoch]) << "epoch " << epoch;
    EXPECT_EQ(a.x509_rows[epoch], b.x509_rows[epoch]) << "epoch " << epoch;
  }

  // A different fleet seed must NOT reproduce the same campaign (the seed is
  // live, not decorative).
  auto scenario_c = datagen::build_study_scenario(small_scenario_config());
  const FleetRun c = run_fleet(*scenario_c, 3, 8, 99);
  EXPECT_NE(a.section, c.section);
}

TEST(FleetDeterminism, DriftShiftsTheIssuerMixTowardLetsEncrypt) {
  // The §5 forces must actually move the population: across enough epochs
  // the Let's-Encrypt share grows and hierarchies appear.
  auto scenario = datagen::build_study_scenario(small_scenario_config());
  datagen::EpochDriftConfig drift;
  drift.seed = 7;
  const datagen::EpochDrifter drifter(*scenario, drift, 4);
  netsim::FaultPlan plan;  // zero-fault: mix shifts are pure drift

  fleet::FleetConfig config;
  config.seed = 7;
  fleet::ScanFleet fleet(config, scenario->world.stores());
  for (std::size_t epoch = 0; epoch < drifter.epoch_count(); ++epoch) {
    fleet.run_epoch(drifter.epoch(epoch), plan);
  }
  const auto& summaries = fleet.summaries();
  ASSERT_EQ(summaries.size(), 4u);
  EXPECT_GT(summaries.back().lets_encrypt_share(),
            summaries.front().lets_encrypt_share());
  EXPECT_GT(summaries.back().hierarchical_non_public, 0u);
  // Zero faults: unreachability is purely churn — exactly the endpoints the
  // drifter left without a chain this epoch, nothing else.
  for (std::size_t epoch = 0; epoch < summaries.size(); ++epoch) {
    std::size_t offline = 0;
    for (const netsim::ServerEndpoint& endpoint : drifter.epoch(epoch)) {
      if (!endpoint.revisit_chain.has_value()) ++offline;
    }
    EXPECT_EQ(summaries[epoch].health.unreachable, offline) << "epoch " << epoch;
  }
}

TEST(FleetRateLimiter, SlowBucketsChargeVirtualWaitsDeterministically) {
  auto scenario = datagen::build_study_scenario(small_scenario_config());
  datagen::EpochDriftConfig drift;
  const datagen::EpochDrifter drifter(*scenario, drift, 2);
  netsim::FaultPlan plan;

  fleet::FleetConfig config;
  config.interval_ms = 1000;          // epoch 1 starts 1 virtual second in...
  config.rate.tokens_per_second = 0.2;  // ...but a token takes 5 s to refill
  config.rate.burst = 1.0;
  fleet::ScanFleet fleet(config, scenario->world.stores());

  const fleet::EpochOutcome first = fleet.run_epoch(drifter.epoch(0), plan);
  EXPECT_EQ(first.rate_limited, 0u);  // primed buckets cover the first visit
  const fleet::EpochOutcome second = fleet.run_epoch(drifter.epoch(1), plan);
  EXPECT_EQ(second.rate_limited,
            static_cast<std::uint64_t>(second.summary.health.scanned));
  EXPECT_GT(second.rate_wait_ms, 0u);
  EXPECT_TRUE(second.summary.health.reconciles());

  // The cumulative ledger is exactly the per-epoch ledgers merged.
  scanner::ScanLedger merged = first.ledger;
  merged.merge(second.ledger);
  EXPECT_EQ(merged.to_string(), fleet.ledger().to_string());
}

// --- the live-service differential ------------------------------------------

class FleetServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = datagen::build_study_scenario(small_scenario_config()).release();

    // Drift BEFORE any logs or analysis: the drifter mints new leaves and CT
    // entries, and every consumer below must see the same finished world.
    datagen::EpochDriftConfig drift;
    drift.seed = kSeed;
    auto drifter =
        std::make_unique<datagen::EpochDrifter>(*scenario_, drift, kEpochs);
    logs_ = new netsim::GeneratedLogs(scenario_->generate_logs());

    netsim::FaultPlan plan(kSeed ^ 0xF1EE7, netsim::FaultRates::uniform(0.05));
    fleet::FleetConfig config;
    config.seed = kSeed;
    fleet::ScanFleet fleet(config, scenario_->world.stores());
    outcomes_ = new std::vector<fleet::EpochOutcome>();
    for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
      outcomes_->push_back(fleet.run_epoch(drifter->epoch(epoch), plan));
    }
    fleet_section_ = new std::string(core::render_fleet_section(fleet.summaries()));
  }

  static void TearDownTestSuite() {
    delete fleet_section_;
    delete outcomes_;
    delete logs_;
    delete scenario_;
    fleet_section_ = nullptr;
    outcomes_ = nullptr;
    logs_ = nullptr;
    scenario_ = nullptr;
  }

  static std::unique_ptr<svc::ServiceState> make_state() {
    auto state = std::make_unique<svc::ServiceState>(
        scenario_->world.stores(), scenario_->world.ct_logs(),
        scenario_->vendors, &scenario_->world.cross_signs());
    state->load(logs_->ssl, logs_->x509);
    return state;
  }

  static std::string full_report(const svc::ServiceState& state) {
    return state.report_section(core::ReportTextOptions{});
  }

  static std::string epoch_key(std::size_t epoch) {
    return "fleet-epoch-" + std::to_string(epoch);
  }

  /// Feeds epochs [0, count) into the state: rows via ingest_append, then
  /// the summary via record_fleet_epoch — the same order the handlers use.
  static void feed_epochs(svc::ServiceState& state, std::size_t count) {
    for (std::size_t epoch = 0; epoch < count; ++epoch) {
      const fleet::EpochOutcome& outcome = (*outcomes_)[epoch];
      state.ingest_append(outcome.ssl_rows, outcome.x509_rows,
                          epoch_key(epoch));
      state.record_fleet_epoch(outcome.summary);
    }
  }

  static constexpr std::uint64_t kSeed = 20241101;
  static constexpr std::size_t kEpochs = 3;
  static datagen::Scenario* scenario_;
  static netsim::GeneratedLogs* logs_;
  static std::vector<fleet::EpochOutcome>* outcomes_;
  static std::string* fleet_section_;
};

datagen::Scenario* FleetServiceTest::scenario_ = nullptr;
netsim::GeneratedLogs* FleetServiceTest::logs_ = nullptr;
std::vector<fleet::EpochOutcome>* FleetServiceTest::outcomes_ = nullptr;
std::string* FleetServiceTest::fleet_section_ = nullptr;

TEST_F(FleetServiceTest, EpochFedStateMatchesOneBatchLoadOverAllEpochs) {
  // Live path: base corpus + one ingest_append per epoch.
  auto live = make_state();
  feed_epochs(*live, kEpochs);

  // Batch path: every record — base plus all three epochs' rows, parsed the
  // same way ingest does — folded in a single load().
  std::vector<zeek::SslLogRecord> all_ssl = logs_->ssl;
  std::vector<zeek::X509LogRecord> all_x509 = logs_->x509;
  for (const fleet::EpochOutcome& outcome : *outcomes_) {
    for (const std::string& row : outcome.x509_rows) {
      auto record = zeek::parse_x509_row(row);
      ASSERT_TRUE(record.has_value()) << row;
      all_x509.push_back(*std::move(record));
    }
    for (const std::string& row : outcome.ssl_rows) {
      auto record = zeek::parse_ssl_row(row);
      ASSERT_TRUE(record.has_value()) << row;
      all_ssl.push_back(*std::move(record));
    }
  }
  svc::ServiceState batch(scenario_->world.stores(), scenario_->world.ct_logs(),
                          scenario_->vendors, &scenario_->world.cross_signs());
  batch.load(all_ssl, all_x509);

  EXPECT_EQ(live->unique_chains(), batch.unique_chains());
  EXPECT_EQ(full_report(*live), full_report(batch));
}

TEST_F(FleetServiceTest, EndpointsAnswerFromTheSnapshotByteIdentically) {
  auto state = make_state();
  feed_epochs(*state, kEpochs);
  svc::SyncTelemetry telemetry;
  svc::Server server(*state, telemetry, svc::ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  svc::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;

  // fleet_status: the registry plus the same render the fleet produced.
  const auto status = client.fleet_status();
  ASSERT_TRUE(status.has_value());
  ASSERT_TRUE(status->ok);
  const obs::json::Value* epochs = status->payload.find("epochs");
  ASSERT_NE(epochs, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(epochs->num), kEpochs);
  const obs::json::Value* text = status->payload.find("text");
  ASSERT_NE(text, nullptr);
  EXPECT_EQ(text->string, *fleet_section_);

  // report_section("fleet") renders the same bytes.
  const auto section = client.report_section("fleet");
  ASSERT_TRUE(section.has_value());
  ASSERT_TRUE(section->ok);
  const obs::json::Value* section_text = section->payload.find("text");
  ASSERT_NE(section_text, nullptr);
  EXPECT_EQ(section_text->string, *fleet_section_);

  // epoch_delta: latest (2) and explicit (1) both equal the offline diffs.
  for (const auto& [request, to_index] :
       std::vector<std::pair<std::optional<std::size_t>, std::size_t>>{
           {std::nullopt, kEpochs - 1}, {std::size_t{1}, 1}}) {
    const auto delta = client.epoch_delta(request);
    ASSERT_TRUE(delta.has_value());
    ASSERT_TRUE(delta->ok);
    const obs::json::Value* delta_text = delta->payload.find("text");
    ASSERT_NE(delta_text, nullptr);
    EXPECT_EQ(delta_text->string,
              core::render_epoch_delta(core::compute_epoch_delta(
                  (*outcomes_)[to_index - 1].summary,
                  (*outcomes_)[to_index].summary)));
  }

  // Unknown epoch indices are typed NOT_FOUND, not transport failures.
  const auto missing = client.epoch_delta(std::size_t{99});
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->frame.type, svc::MessageType::kError);
  EXPECT_EQ(missing->error, svc::ErrorCode::kNotFound);
  const auto zero = client.epoch_delta(std::size_t{0});  // no predecessor
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->error, svc::ErrorCode::kNotFound);

  client.shutdown();
  server.wait();
}

TEST_F(FleetServiceTest, FleetStatusBeforeAnyEpochIsEmptyAndDeltaNotFound) {
  auto state = make_state();
  svc::SyncTelemetry telemetry;
  svc::Server server(*state, telemetry, svc::ServerOptions{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  svc::Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;

  const auto status = client.fleet_status();
  ASSERT_TRUE(status.has_value());
  ASSERT_TRUE(status->ok);
  const obs::json::Value* epochs = status->payload.find("epochs");
  ASSERT_NE(epochs, nullptr);
  EXPECT_EQ(static_cast<std::size_t>(epochs->num), 0u);

  const auto delta = client.epoch_delta();
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->error, svc::ErrorCode::kNotFound);

  client.shutdown();
  server.wait();
}

TEST_F(FleetServiceTest, RecordFleetEpochIsIdempotentByIndex) {
  auto state = make_state();
  feed_epochs(*state, 2);
  const std::uint64_t generation = state->generation();

  // Re-recording epoch 1 (a retry / post-recovery re-feed) replaces in
  // place: no growth, no reorder, and the corpus generation is untouched.
  state->record_fleet_epoch((*outcomes_)[1].summary);
  const auto snapshot = state->acquire_snapshot();
  ASSERT_EQ(snapshot->fleet_epochs.size(), 2u);
  EXPECT_EQ(snapshot->fleet_epochs[0].index, 0u);
  EXPECT_EQ(snapshot->fleet_epochs[1].index, 1u);
  EXPECT_EQ(state->generation(), generation);
  EXPECT_EQ(core::render_fleet_section(snapshot->fleet_epochs),
            core::render_fleet_section(
                {(*outcomes_)[0].summary, (*outcomes_)[1].summary}));
}

TEST_F(FleetServiceTest, KillNineMidEpochRecoversToTheNeverCrashedBytes) {
  const std::string wal =
      ::testing::TempDir() + "certchain_fleet_kill9.wal";
  ::unlink(wal.c_str());
  ::unlink(svc::snapshot_path_for(wal).c_str());

  // The child feeds two epochs durably, then dies by SIGKILL with 9 bytes
  // of epoch 2's WAL record on disk — mid-append, mid-campaign.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    auto state = make_state();
    svc::DurabilityOptions durability;
    durability.wal_path = wal;
    if (!state->recover_and_arm(durability, nullptr, nullptr)) _exit(10);
    feed_epochs(*state, 2);

    svc::WalRecord torn;
    torn.seq = 3;
    torn.idempotency_key = epoch_key(2);
    torn.ssl_rows = (*outcomes_)[2].ssl_rows;
    torn.x509_rows = (*outcomes_)[2].x509_rows;
    const std::string framed = svc::encode_wal_record(torn);
    const int fd = ::open(wal.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) _exit(11);
    if (::write(fd, framed.data(), 9) != 9) _exit(12);
    ::fsync(fd);
    ::raise(SIGKILL);
    _exit(13);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited with " << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // Recovery replays the two acknowledged epochs and truncates the torn
  // third; the fleet then re-feeds every epoch — duplicates fold exactly
  // once via their idempotency keys, epoch 2 folds fresh, and the epoch
  // registry (in-memory by design, §17.3) repopulates idempotently.
  auto recovered = make_state();
  svc::DurabilityOptions durability;
  durability.wal_path = wal;
  svc::RecoveryStats stats;
  std::string error;
  ASSERT_TRUE(recovered->recover_and_arm(durability, &stats, &error)) << error;
  EXPECT_EQ(stats.wal_records_seen, 2u);
  EXPECT_EQ(stats.wal_records_applied, 2u);
  EXPECT_EQ(stats.torn_bytes, 9u);

  const std::uint64_t recovered_generation = recovered->generation();
  for (std::size_t epoch = 0; epoch < 2; ++epoch) {
    EXPECT_TRUE(recovered
                    ->ingest_append((*outcomes_)[epoch].ssl_rows,
                                    (*outcomes_)[epoch].x509_rows,
                                    epoch_key(epoch))
                    .duplicate);
    recovered->record_fleet_epoch((*outcomes_)[epoch].summary);
  }
  EXPECT_EQ(recovered->generation(), recovered_generation);
  EXPECT_FALSE(recovered
                   ->ingest_append((*outcomes_)[2].ssl_rows,
                                   (*outcomes_)[2].x509_rows, epoch_key(2))
                   .duplicate);
  recovered->record_fleet_epoch((*outcomes_)[2].summary);

  auto reference = make_state();
  feed_epochs(*reference, kEpochs);
  EXPECT_EQ(recovered->generation(), reference->generation());
  EXPECT_EQ(full_report(*recovered), full_report(*reference));
  EXPECT_EQ(core::render_fleet_section(
                recovered->acquire_snapshot()->fleet_epochs),
            *fleet_section_);
  ::unlink(wal.c_str());
}

}  // namespace
}  // namespace certchain
