// End-to-end integration: scenario generation -> traffic simulation -> Zeek
// text serialization -> pipeline analysis -> revisit. Uses a reduced scale
// so the full path stays fast; the headline *fixed* counts (hybrid 321,
// Table 3/7 splits, 80 interception vendors) are scale-independent.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/revisit.hpp"
#include "datagen/scenario.hpp"
#include "scanner/scanner.hpp"
#include "zeek/log_io.hpp"

namespace certchain {
namespace {

using chain::ChainCategory;
using chain::NoPathCategory;

datagen::ScenarioConfig small_config() {
  datagen::ScenarioConfig config;
  config.seed = 77;
  config.chain_scale = 1.0 / 2000.0;  // tiny large-category populations
  config.total_connections = 25000;
  config.client_count = 800;
  config.include_length_outliers = true;
  return config;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = datagen::build_study_scenario(small_config()).release();
    logs_ = new netsim::GeneratedLogs(scenario_->generate_logs());
    const core::StudyPipeline pipeline(scenario_->world.stores(),
                                       scenario_->world.ct_logs(),
                                       scenario_->vendors,
                                       &scenario_->world.cross_signs());
    report_ = new core::StudyReport(
        pipeline.run(core::StudyInput::records(*logs_)));
  }

  static void TearDownTestSuite() {
    delete report_;
    delete logs_;
    delete scenario_;
    report_ = nullptr;
    logs_ = nullptr;
    scenario_ = nullptr;
  }

  static datagen::Scenario* scenario_;
  static netsim::GeneratedLogs* logs_;
  static core::StudyReport* report_;
};

datagen::Scenario* IntegrationTest::scenario_ = nullptr;
netsim::GeneratedLogs* IntegrationTest::logs_ = nullptr;
core::StudyReport* IntegrationTest::report_ = nullptr;

TEST_F(IntegrationTest, EveryEndpointChainIsObserved) {
  EXPECT_EQ(report_->unique_chains, scenario_->endpoints.size());
}

TEST_F(IntegrationTest, HybridPopulationIsExactly321) {
  EXPECT_EQ(report_->categories.at(ChainCategory::kHybrid).chains, 321u);
  EXPECT_EQ(report_->hybrid.total(), 321u);
}

TEST_F(IntegrationTest, Table3BucketsAreExact) {
  const auto& hybrid = report_->hybrid;
  EXPECT_EQ(hybrid.complete_nonpub_to_pub, 26u);
  EXPECT_EQ(hybrid.complete_pub_to_private, 10u);
  EXPECT_EQ(hybrid.contains_complete_path, 70u);
  EXPECT_EQ(hybrid.no_complete_path, 215u);
}

TEST_F(IntegrationTest, Table7BucketsAreExact) {
  const auto& buckets = report_->hybrid.no_path_categories;
  EXPECT_EQ(buckets.at(NoPathCategory::kSelfSignedLeafThenMismatches), 108u);
  EXPECT_EQ(buckets.at(NoPathCategory::kSelfSignedLeafThenValidSubchain), 13u);
  EXPECT_EQ(buckets.at(NoPathCategory::kAllPairsMismatched), 61u);
  EXPECT_EQ(buckets.at(NoPathCategory::kPartialPairsMismatched), 27u);
  EXPECT_EQ(buckets.at(NoPathCategory::kNonPubRootAppendedToValidPublicSubchain), 5u);
  EXPECT_EQ(buckets.at(NoPathCategory::kNonPubRootAndMismatches), 1u);
  EXPECT_EQ(report_->hybrid.public_leaf_without_issuer, 56u);
}

TEST_F(IntegrationTest, Table6CtComplianceAndExpiry) {
  // All 26 non-public leaves anchored to public roots are CT-logged; 3 are
  // expired.
  EXPECT_EQ(report_->hybrid.anchored_ct_logged, 26u);
  EXPECT_EQ(report_->hybrid.anchored_expired_leaf, 3u);
  // Government and Corporate rows both present.
  ASSERT_EQ(report_->hybrid.anchored_rows.size(), 2u);
  std::size_t total_chains = 0;
  for (const auto& row : report_->hybrid.anchored_rows) total_chains += row.chains;
  EXPECT_EQ(total_chains, 26u);
}

TEST_F(IntegrationTest, AppendixF2Signatures) {
  EXPECT_EQ(report_->hybrid.fake_le_chains, 14u);
  EXPECT_EQ(report_->hybrid.athenz_chains, 8u);
  EXPECT_EQ(report_->hybrid.leaf_before_path, 18u);
  EXPECT_EQ(report_->hybrid.figure4_columns.size(), 70u);
  EXPECT_EQ(report_->hybrid.mismatch_ratios.size(), 215u);
}

TEST_F(IntegrationTest, EstablishmentRatesOrderAsInPaper) {
  const auto& hybrid = report_->hybrid;
  // complete > contains > no-path (97.69% / 92.04% / ~56%).
  EXPECT_GT(hybrid.usage_complete.establish_rate(),
            hybrid.usage_contains.establish_rate());
  EXPECT_GT(hybrid.usage_contains.establish_rate(),
            hybrid.usage_no_path.establish_rate());
  EXPECT_GT(hybrid.usage_complete.establish_rate(), 0.90);
  EXPECT_LT(hybrid.usage_no_path.establish_rate(), 0.75);
}

TEST_F(IntegrationTest, InterceptionCensusMatchesTable1) {
  const auto rows = report_->interception.category_rows();
  std::map<std::string, std::size_t> issuers;
  for (const auto& row : rows) issuers[row.category] = row.issuers;
  EXPECT_EQ(issuers["Security & Network"], 31u);
  EXPECT_EQ(issuers["Business & Corporate"], 27u);
  EXPECT_EQ(issuers["Health & Education"], 10u);
  EXPECT_EQ(issuers["Government & Public Service"], 6u);
  EXPECT_EQ(issuers["Bank & Finance"], 3u);
  EXPECT_EQ(issuers["Other"], 3u);
  // Security & Network dominates connection volume.
  EXPECT_EQ(rows.front().category, "Security & Network");
}

TEST_F(IntegrationTest, Figure1ShapesHold) {
  const auto& lengths = report_->chain_lengths;
  // Public-only: mode at 2.
  {
    const auto& series = lengths.at(ChainCategory::kPublicDbOnly);
    std::map<std::size_t, std::size_t> histogram;
    for (const std::size_t length : series) ++histogram[length];
    EXPECT_GT(histogram[2], series.size() / 2);
  }
  // Non-public-only: ~80% singletons.
  {
    const auto& series = lengths.at(ChainCategory::kNonPublicDbOnly);
    std::size_t singles = 0;
    for (const std::size_t length : series) singles += (length == 1);
    EXPECT_NEAR(static_cast<double>(singles) / series.size(), 0.78, 0.08);
  }
  // Interception: >80% of chains have exactly 3 certificates.
  {
    const auto& series = lengths.at(ChainCategory::kTlsInterception);
    std::size_t threes = 0;
    for (const std::size_t length : series) threes += (length == 3);
    EXPECT_GT(static_cast<double>(threes) / series.size(), 0.75);
  }
}

TEST_F(IntegrationTest, LengthOutliersExcludedFromFigure1) {
  ASSERT_EQ(report_->excluded_outliers.size(), 3u);
  std::multiset<std::size_t> lengths;
  for (const auto& outlier : report_->excluded_outliers) {
    lengths.insert(outlier.length);
    EXPECT_EQ(outlier.connections, 1u);
    EXPECT_FALSE(outlier.established_any);
    EXPECT_EQ(outlier.category, ChainCategory::kNonPublicDbOnly);
  }
  EXPECT_EQ(lengths, (std::multiset<std::size_t>{41, 921, 3822}));
}

TEST_F(IntegrationTest, NonPublicSingleCertShape) {
  const auto& nonpub = report_->non_public;
  EXPECT_NEAR(nonpub.single_fraction(), 0.781, 0.05);
  EXPECT_NEAR(nonpub.single_self_signed_fraction(), 0.9419, 0.05);
  EXPECT_GT(nonpub.dga_chains, 0u);
  // Most single-cert traffic lacks SNI.
  EXPECT_GT(nonpub.single_no_sni_connections,
            static_cast<std::uint64_t>(0.6 * nonpub.single_connections));
}

TEST_F(IntegrationTest, Table8MatchedPathRates) {
  // At this test's tiny scale the fixed broken-chain minimums weigh more
  // than in the paper (99.76%); the dominant-matched-path shape must hold.
  EXPECT_GT(report_->non_public.is_matched_path_fraction(), 0.90);
  EXPECT_GT(report_->interception_chains.is_matched_path_fraction(), 0.95);
  EXPECT_GT(report_->interception_chains.multi_chains, 0u);
}

TEST_F(IntegrationTest, BasicConstraintsOmissionRates) {
  // Shape: omission is common, and later positions omit at least as often
  // as first positions (55.31% vs 78.32% in the paper). The small multi-cert
  // population at this scale makes the later-position rate noisy, so the
  // exact-percentage band is only checked for the first position.
  EXPECT_NEAR(report_->non_public.bc_omitted_first_fraction(), 0.5531, 0.15);
  EXPECT_GT(report_->non_public.bc_omitted_later_fraction(), 0.40);
  EXPECT_GT(report_->non_public.bc_omitted_later_fraction(),
            report_->non_public.bc_omitted_first_fraction() - 0.05);
}

TEST_F(IntegrationTest, PortDistributionsFollowTable4) {
  // Hybrid: 443 dominates.
  const auto& hybrid_ports = report_->ports_hybrid;
  EXPECT_GT(hybrid_ports.count(443), hybrid_ports.total() * 9 / 10);
  // Interception: non-standard ports dominate.
  const auto& int_ports = report_->interception_chains.ports_multi;
  EXPECT_GT(int_ports.count(8013) + int_ports.count(4437) + int_ports.count(14430),
            int_ports.count(443));
}

TEST_F(IntegrationTest, ComplexPkiStructuresPresent) {
  EXPECT_FALSE(report_->non_public_graph.complex_intermediates().empty());
  EXPECT_FALSE(report_->interception_graph.complex_intermediates().empty());
  EXPECT_GT(report_->hybrid_graph.node_count(), 100u);
}

TEST_F(IntegrationTest, ZeekTextRoundTripMatchesInMemoryRun) {
  // Serialize to Zeek TSV and re-analyze from text: identical report shape.
  zeek::SslLogWriter ssl_writer;
  for (const auto& record : logs_->ssl) ssl_writer.add(record);
  zeek::X509LogWriter x509_writer;
  for (const auto& record : logs_->x509) x509_writer.add(record);

  const core::StudyPipeline pipeline(scenario_->world.stores(),
                                     scenario_->world.ct_logs(),
                                     scenario_->vendors,
                                     &scenario_->world.cross_signs());
  const std::string ssl_text = ssl_writer.finish();
  const std::string x509_text = x509_writer.finish();
  const core::StudyReport from_text =
      pipeline.run(core::StudyInput::text(ssl_text, x509_text));
  EXPECT_EQ(from_text.unique_chains, report_->unique_chains);
  EXPECT_EQ(from_text.hybrid.total(), report_->hybrid.total());
  EXPECT_EQ(from_text.hybrid.no_complete_path, report_->hybrid.no_complete_path);
  EXPECT_EQ(from_text.categories.at(ChainCategory::kTlsInterception).chains,
            report_->categories.at(ChainCategory::kTlsInterception).chains);
  EXPECT_EQ(from_text.totals.connections, report_->totals.connections);
}

TEST_F(IntegrationTest, RevisitReproducesSection5) {
  const scanner::ActiveScanner scanner(scenario_->endpoints);
  const core::RevisitAnalyzer analyzer(scenario_->world.stores(),
                                       &scenario_->world.cross_signs());

  std::vector<const netsim::ServerEndpoint*> hybrid_servers;
  std::vector<const netsim::ServerEndpoint*> nonpub_servers;
  for (const auto& endpoint : scenario_->endpoints) {
    if (endpoint.label.rfind("hybrid/", 0) == 0) hybrid_servers.push_back(&endpoint);
    if (endpoint.label.rfind("nonpub/", 0) == 0) nonpub_servers.push_back(&endpoint);
  }

  const auto hybrid = analyzer.analyze_hybrid(hybrid_servers, scanner);
  EXPECT_EQ(hybrid.previous_servers, 321u);
  EXPECT_EQ(hybrid.reachable, 270u);
  EXPECT_EQ(hybrid.now_all_public, 231u);
  EXPECT_GT(hybrid.now_lets_encrypt, hybrid.now_all_public / 2);  // LE majority
  EXPECT_EQ(hybrid.now_all_non_public, 4u);
  EXPECT_EQ(hybrid.still_hybrid, 35u);
  EXPECT_EQ(hybrid.still_complete_no_extras, 9u);
  EXPECT_EQ(hybrid.still_complete_with_extras, 3u);
  EXPECT_EQ(hybrid.still_no_path, 23u);

  const auto nonpub = analyzer.analyze_non_public(nonpub_servers, scanner, 0, 0);
  EXPECT_GT(nonpub.scannable_servers, 0u);
  // All still non-public; >60% of previously-single servers went multi.
  EXPECT_EQ(nonpub.still_non_public, nonpub.reachable);
  const double multi_share = static_cast<double>(nonpub.now_multi_cert) /
                             static_cast<double>(nonpub.reachable);
  EXPECT_NEAR(multi_share, 0.794, 0.12);
  const double complete_share =
      static_cast<double>(nonpub.now_multi_complete_matched) /
      static_cast<double>(nonpub.now_multi_cert);
  EXPECT_GT(complete_share, 0.90);
}

TEST_F(IntegrationTest, DatagenLabelsAreRecoveredByClassifier) {
  // For each labeled structural intent, the analyzer must classify the
  // delivered chain accordingly.
  const auto& stores = scenario_->world.stores();
  const auto* registry = &scenario_->world.cross_signs();
  for (const auto& endpoint : scenario_->endpoints) {
    if (endpoint.label.rfind("hybrid/complete/nonpub-to-pub", 0) == 0) {
      const auto verdict = chain::classify_hybrid(endpoint.chain, stores, registry);
      EXPECT_EQ(verdict.structure, chain::HybridStructure::kCompleteNonPubToPub)
          << endpoint.domain;
    } else if (endpoint.label.rfind("hybrid/contains/", 0) == 0) {
      const auto verdict = chain::classify_hybrid(endpoint.chain, stores, registry);
      EXPECT_EQ(verdict.structure, chain::HybridStructure::kContainsCompletePath)
          << endpoint.label << " " << endpoint.domain;
    } else if (endpoint.label == "public/cross-signed") {
      // The cross-sign registry rescues the textual mismatch.
      const auto without = chain::match_chain(endpoint.chain, nullptr);
      const auto with = chain::match_chain(endpoint.chain, registry);
      EXPECT_FALSE(without.all_matched());
      EXPECT_TRUE(with.all_matched());
    }
  }
}

}  // namespace
}  // namespace certchain
