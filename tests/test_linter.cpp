// Chain linter: findings, severities and recommendations per chain shape.
#include "chain/linter.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "obs/run_context.hpp"

namespace certchain::chain {
namespace {

using certchain::testing::TestPki;
using certchain::testing::dn;
using certchain::testing::make_chain;
using certchain::testing::self_signed;
using certchain::testing::test_validity;

const util::SimTime kNow = util::make_time(2021, 3, 1);

TEST(Linter, WellFormedChainIsClean) {
  TestPki pki;
  const LintReport report = lint_chain(pki.chain_for("ok.example", true), {kNow});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].code, LintCode::kWellFormed);
  EXPECT_FALSE(report.has_errors());
}

TEST(Linter, EmptyChainIsAnError) {
  const LintReport report = lint_chain(CertificateChain{});
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.count(LintCode::kNoCompletePath), 1u);
}

TEST(Linter, SingleSelfSignedAndSingleOrphan) {
  TestPki pki;
  const LintReport self = lint_chain(make_chain({self_signed("box")}), {kNow});
  EXPECT_EQ(self.count(LintCode::kSingleSelfSigned), 1u);
  EXPECT_FALSE(self.has_errors());  // warning, not error

  const LintReport orphan = lint_chain(make_chain({pki.leaf("alone.example")}), {kNow});
  EXPECT_EQ(orphan.count(LintCode::kSingleWithoutIssuer), 1u);
}

TEST(Linter, UnnecessaryCertificateFlaggedWithPosition) {
  TestPki pki;
  auto chain = pki.chain_for("extra.example", true);
  chain.push_back(self_signed("extra"));
  const LintReport report = lint_chain(chain, {kNow});
  ASSERT_EQ(report.count(LintCode::kUnnecessaryCertificate), 1u);
  for (const LintFinding& finding : report.findings) {
    if (finding.code == LintCode::kUnnecessaryCertificate) {
      EXPECT_EQ(finding.position, 3u);
      EXPECT_FALSE(finding.recommendation.empty());
    }
  }
}

TEST(Linter, StagingCertificateIsAnError) {
  TestPki pki;
  x509::CertificateAuthority fake_root(dn("CN=Fake LE Root X1"), "lint-fake");
  x509::CertificateAuthority fake_int(dn("CN=Fake LE Intermediate X1"), "lint-fake-i");
  auto chain = pki.chain_for("staging.example", true);
  chain.push_back(fake_root.issue_intermediate(fake_int, test_validity()));
  const LintReport report = lint_chain(chain, {kNow});
  EXPECT_GE(report.count(LintCode::kStagingCertificate), 1u);
  EXPECT_TRUE(report.has_errors());
}

TEST(Linter, LeafNotFirstIsAnError) {
  TestPki pki;
  x509::Certificate stray = self_signed("old-leaf");
  stray.issuer = dn("CN=Old Issuer");
  auto certs = pki.chain_for("order.example", true).certs();
  certs.insert(certs.begin(), stray);
  const LintReport report = lint_chain(make_chain(std::move(certs)), {kNow});
  EXPECT_EQ(report.count(LintCode::kLeafNotFirst), 1u);
  EXPECT_EQ(report.count(LintCode::kUnnecessaryCertificate), 1u);
}

TEST(Linter, NoPathReportsEveryMismatch) {
  const auto chain = make_chain({self_signed("a"), self_signed("b"), self_signed("c")});
  const LintReport report = lint_chain(chain, {kNow});
  EXPECT_EQ(report.count(LintCode::kNoCompletePath), 1u);
  EXPECT_EQ(report.count(LintCode::kMissingIntermediate), 2u);
  EXPECT_TRUE(report.has_errors());
}

TEST(Linter, ExpiryAndClockFindings) {
  TestPki pki;
  x509::DistinguishedName subject;
  subject.add("CN", "old.example");
  const x509::Certificate expired = pki.intermediate_ca.issue_leaf(
      subject, "old.example",
      {util::make_time(2015, 1, 1), util::make_time(2016, 1, 1)});
  const LintReport report =
      lint_chain(make_chain({expired, pki.intermediate_cert}), {kNow});
  EXPECT_EQ(report.count(LintCode::kExpiredCertificate), 1u);

  const x509::Certificate future = pki.intermediate_ca.issue_leaf(
      subject, "old.example",
      {util::make_time(2030, 1, 1), util::make_time(2031, 1, 1)});
  const LintReport future_report =
      lint_chain(make_chain({future, pki.intermediate_cert}), {kNow});
  EXPECT_EQ(future_report.count(LintCode::kNotYetValid), 1u);

  // now == 0 disables validity findings entirely.
  const LintReport disabled = lint_chain(make_chain({expired, pki.intermediate_cert}));
  EXPECT_EQ(disabled.count(LintCode::kExpiredCertificate), 0u);
}

TEST(Linter, DuplicateCertificates) {
  TestPki pki;
  auto certs = pki.chain_for("dup.example").certs();
  certs.push_back(certs[1]);  // intermediate twice
  const LintReport report = lint_chain(make_chain(std::move(certs)), {kNow});
  EXPECT_EQ(report.count(LintCode::kDuplicateCertificate), 1u);
}

TEST(Linter, CrossSignRegistrySuppressesFalseMismatch) {
  TestPki pki;
  x509::CertificateAuthority cross(dn("CN=Cross Anchor"), "lint-cross");
  const auto chain =
      make_chain({pki.leaf("cs.example"), cross.make_root(test_validity())});

  const LintReport without = lint_chain(chain, {kNow});
  EXPECT_TRUE(without.has_errors());

  CrossSignRegistry registry;
  registry.add_equivalence(pki.intermediate_ca.name(), cross.name());
  LintOptions options;
  options.now = kNow;
  options.registry = &registry;
  const LintReport with = lint_chain(chain, options);
  EXPECT_FALSE(with.has_errors());
}

TEST(Linter, NamesAreDefined) {
  EXPECT_EQ(lint_severity_name(LintSeverity::kError), "error");
  EXPECT_EQ(lint_code_name(LintCode::kStagingCertificate), "staging-certificate");
}


TEST(Linter, UniformEntryMatchesSerialAndPublishesTelemetry) {
  TestPki pki;
  auto clean = pki.chain_for("uniform-a.example", true);
  auto noisy = pki.chain_for("uniform-b.example", true);
  noisy.push_back(self_signed("stray"));
  const std::vector<const CertificateChain*> chains = {&clean, &noisy};

  const std::vector<LintReport> serial = lint_chains(chains, {kNow});
  obs::RunContext context;
  par::ExecOptions exec;
  exec.threads = 4;
  const std::vector<LintReport> uniform =
      lint_chains(chains, {kNow}, exec, &context);

  ASSERT_EQ(uniform.size(), serial.size());
  std::size_t findings = 0;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(uniform[i].findings.size(), serial[i].findings.size());
    for (std::size_t j = 0; j < serial[i].findings.size(); ++j) {
      EXPECT_EQ(uniform[i].findings[j].code, serial[i].findings[j].code);
    }
    findings += serial[i].findings.size();
  }
  EXPECT_EQ(context.metrics.counter("lint.chains_in"), 2u);
  EXPECT_EQ(context.metrics.counter("lint.findings"), findings);
  ASSERT_EQ(context.trace.node_count(), 1u);
  EXPECT_EQ(context.trace.root().children[0]->name, "lint");
  EXPECT_EQ(context.metrics.timings().count("time.lint.ms"), 1u);
}

}  // namespace
}  // namespace certchain::chain
