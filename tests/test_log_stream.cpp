// Streaming Zeek log reader: chunked feeds, split lines, rotation.
#include "zeek/log_stream.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "util/rng.hpp"
#include "zeek/joiner.hpp"

namespace certchain::zeek {
namespace {

using certchain::testing::TestPki;

std::string two_record_ssl_log() {
  SslLogWriter writer;
  for (int i = 0; i < 2; ++i) {
    SslLogRecord record;
    record.ts = 1600000000 + i;
    record.uid = "Cstream" + std::to_string(i);
    record.id_orig_h = "10.0.0.1";
    record.id_orig_p = 40000;
    record.id_resp_h = "198.51.100.1";
    record.id_resp_p = 443;
    record.version = "TLSv12";
    record.established = (i == 0);
    record.server_name = "s" + std::to_string(i) + ".example";
    writer.add(record);
  }
  return writer.finish();
}

TEST(LogStream, WholeFileInOneFeed) {
  std::vector<SslLogRecord> records;
  auto reader = make_streaming_ssl_reader(
      [&](SslLogRecord record) { records.push_back(std::move(record)); });
  reader.feed(two_record_ssl_log());
  reader.finish();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].uid, "Cstream0");
  EXPECT_EQ(records[1].uid, "Cstream1");
  EXPECT_EQ(reader.records_emitted(), 2u);
  EXPECT_EQ(reader.rotations_seen(), 1u);  // trailing #close
}

TEST(LogStream, ByteAtATimeFeedIsEquivalent) {
  const std::string log = two_record_ssl_log();
  std::vector<SslLogRecord> records;
  auto reader = make_streaming_ssl_reader(
      [&](SslLogRecord record) { records.push_back(std::move(record)); });
  for (const char c : log) reader.feed(std::string_view(&c, 1));
  reader.finish();
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(reader.lines_skipped(), 0u);
}

TEST(LogStream, RandomChunkBoundaries) {
  const std::string log = two_record_ssl_log() + two_record_ssl_log();
  util::Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t emitted = 0;
    auto reader =
        make_streaming_ssl_reader([&](SslLogRecord) { ++emitted; });
    std::size_t pos = 0;
    while (pos < log.size()) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.next_below(37), log.size() - pos);
      reader.feed(std::string_view(log).substr(pos, take));
      pos += take;
    }
    reader.finish();
    EXPECT_EQ(emitted, 4u) << "trial " << trial;
    EXPECT_EQ(reader.rotations_seen(), 2u);
  }
}

TEST(LogStream, RotationResetsHeaderState) {
  // After #close, data before the next #fields header is skipped.
  const std::string first = two_record_ssl_log();
  const std::string orphan_row = "1600000009.000000\tCorphan\t10.0.0.1\t1\t"
                                 "198.51.100.1\t443\tTLSv12\t-\t-\tF\tT\t-\t-\t-\t-\n";
  std::size_t emitted = 0;
  auto reader = make_streaming_ssl_reader([&](SslLogRecord) { ++emitted; });
  reader.feed(first);        // ends with #close
  reader.feed(orphan_row);   // no header yet: must be skipped
  reader.feed(first);        // fresh header, 2 more rows
  reader.finish();
  EXPECT_EQ(emitted, 4u);
  EXPECT_GE(reader.lines_skipped(), 1u);
}

TEST(LogStream, DamagedRowsAreCountedNotFatal) {
  std::string log = two_record_ssl_log();
  const std::size_t close_pos = log.find("#close");
  log.insert(close_pos, "not\ta\tvalid\trow\n");
  std::size_t emitted = 0;
  auto reader = make_streaming_ssl_reader([&](SslLogRecord) { ++emitted; });
  reader.feed(log);
  reader.finish();
  EXPECT_EQ(emitted, 2u);
  EXPECT_EQ(reader.lines_skipped(), 1u);
}

TEST(LogStream, X509ReaderStreamsCertificates) {
  TestPki pki;
  X509LogWriter writer;
  const auto chain = pki.chain_for("stream.example", true);
  for (std::size_t i = 0; i < chain.length(); ++i) {
    writer.add(record_from_certificate(chain.at(i), 1600000000,
                                       "Fs" + std::to_string(i)));
  }
  std::vector<X509LogRecord> records;
  auto reader = make_streaming_x509_reader(
      [&](X509LogRecord record) { records.push_back(std::move(record)); });
  const std::string log = writer.finish();
  // Feed in two uneven halves.
  reader.feed(std::string_view(log).substr(0, log.size() / 3));
  reader.feed(std::string_view(log).substr(log.size() / 3));
  reader.finish();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].fuid, "Fs2");
  // Streamed records reconstruct to the same certificates.
  EXPECT_TRUE(certificate_from_record(records[0]).subject.matches(
      chain.first().subject));
}

TEST(LogStream, MatchesBatchParserOnFullCorpus) {
  const std::string log = two_record_ssl_log();
  const auto batch = parse_ssl_log(log);
  std::vector<SslLogRecord> streamed;
  auto reader = make_streaming_ssl_reader(
      [&](SslLogRecord record) { streamed.push_back(std::move(record)); });
  reader.feed(log);
  reader.finish();
  EXPECT_EQ(streamed, batch);
}

}  // namespace
}  // namespace certchain::zeek
