// Streaming Zeek log reader: chunked feeds, split lines, rotation.
#include "zeek/log_stream.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "par/shard.hpp"
#include "util/rng.hpp"
#include "zeek/joiner.hpp"

namespace certchain::zeek {
namespace {

using certchain::testing::TestPki;

std::string two_record_ssl_log() {
  SslLogWriter writer;
  for (int i = 0; i < 2; ++i) {
    SslLogRecord record;
    record.ts = 1600000000 + i;
    record.uid = "Cstream" + std::to_string(i);
    record.id_orig_h = "10.0.0.1";
    record.id_orig_p = 40000;
    record.id_resp_h = "198.51.100.1";
    record.id_resp_p = 443;
    record.version = "TLSv12";
    record.established = (i == 0);
    record.server_name = "s" + std::to_string(i) + ".example";
    writer.add(record);
  }
  return writer.finish();
}

TEST(LogStream, WholeFileInOneFeed) {
  std::vector<SslLogRecord> records;
  auto reader = make_streaming_ssl_reader(
      [&](SslLogRecord record) { records.push_back(std::move(record)); });
  reader.feed(two_record_ssl_log());
  reader.finish();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].uid, "Cstream0");
  EXPECT_EQ(records[1].uid, "Cstream1");
  EXPECT_EQ(reader.records_emitted(), 2u);
  EXPECT_EQ(reader.rotations_seen(), 1u);  // trailing #close
}

TEST(LogStream, ByteAtATimeFeedIsEquivalent) {
  const std::string log = two_record_ssl_log();
  std::vector<SslLogRecord> records;
  auto reader = make_streaming_ssl_reader(
      [&](SslLogRecord record) { records.push_back(std::move(record)); });
  for (const char c : log) reader.feed(std::string_view(&c, 1));
  reader.finish();
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(reader.lines_skipped(), 0u);
}

TEST(LogStream, RandomChunkBoundaries) {
  const std::string log = two_record_ssl_log() + two_record_ssl_log();
  util::Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t emitted = 0;
    auto reader =
        make_streaming_ssl_reader([&](SslLogRecord) { ++emitted; });
    std::size_t pos = 0;
    while (pos < log.size()) {
      const std::size_t take =
          std::min<std::size_t>(1 + rng.next_below(37), log.size() - pos);
      reader.feed(std::string_view(log).substr(pos, take));
      pos += take;
    }
    reader.finish();
    EXPECT_EQ(emitted, 4u) << "trial " << trial;
    EXPECT_EQ(reader.rotations_seen(), 2u);
  }
}

TEST(LogStream, RotationResetsHeaderState) {
  // After #close, data before the next #fields header is skipped.
  const std::string first = two_record_ssl_log();
  const std::string orphan_row = "1600000009.000000\tCorphan\t10.0.0.1\t1\t"
                                 "198.51.100.1\t443\tTLSv12\t-\t-\tF\tT\t-\t-\t-\t-\n";
  std::size_t emitted = 0;
  auto reader = make_streaming_ssl_reader([&](SslLogRecord) { ++emitted; });
  reader.feed(first);        // ends with #close
  reader.feed(orphan_row);   // no header yet: must be skipped
  reader.feed(first);        // fresh header, 2 more rows
  reader.finish();
  EXPECT_EQ(emitted, 4u);
  EXPECT_GE(reader.lines_skipped(), 1u);
}

TEST(LogStream, DamagedRowsAreCountedNotFatal) {
  std::string log = two_record_ssl_log();
  const std::size_t close_pos = log.find("#close");
  log.insert(close_pos, "not\ta\tvalid\trow\n");
  std::size_t emitted = 0;
  auto reader = make_streaming_ssl_reader([&](SslLogRecord) { ++emitted; });
  reader.feed(log);
  reader.finish();
  EXPECT_EQ(emitted, 2u);
  EXPECT_EQ(reader.lines_skipped(), 1u);
}

TEST(LogStream, X509ReaderStreamsCertificates) {
  TestPki pki;
  X509LogWriter writer;
  const auto chain = pki.chain_for("stream.example", true);
  for (std::size_t i = 0; i < chain.length(); ++i) {
    writer.add(record_from_certificate(chain.at(i), 1600000000,
                                       "Fs" + std::to_string(i)));
  }
  std::vector<X509LogRecord> records;
  auto reader = make_streaming_x509_reader(
      [&](X509LogRecord record) { records.push_back(std::move(record)); });
  const std::string log = writer.finish();
  // Feed in two uneven halves.
  reader.feed(std::string_view(log).substr(0, log.size() / 3));
  reader.feed(std::string_view(log).substr(log.size() / 3));
  reader.finish();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].fuid, "Fs2");
  // Streamed records reconstruct to the same certificates.
  EXPECT_TRUE(certificate_from_record(records[0]).subject.matches(
      chain.first().subject));
}

TEST(LogStream, MatchesBatchParserOnFullCorpus) {
  const std::string log = two_record_ssl_log();
  const auto batch = parse_ssl_log(log);
  std::vector<SslLogRecord> streamed;
  auto reader = make_streaming_ssl_reader(
      [&](SslLogRecord record) { streamed.push_back(std::move(record)); });
  reader.feed(log);
  reader.finish();
  EXPECT_EQ(streamed, batch);
}

// --- shard-boundary correctness (scan + prime, DESIGN.md §10) --------------

/// Serial reference pass with explicit chunk size; collects full accounting.
struct ParseResult {
  std::vector<SslLogRecord> records;
  std::size_t bytes = 0;
  std::size_t lines = 0;
  std::size_t skipped = 0;
  std::size_t malformed = 0;
  std::size_t rotations = 0;
  std::vector<std::pair<std::size_t, std::string>> errors;  // (line, message)
};

void drain_reader(StreamingSslReader& reader, std::string_view text,
                  std::size_t chunk, ParseResult& out) {
  if (chunk == 0) chunk = std::max<std::size_t>(1, text.size());
  for (std::size_t pos = 0; pos < text.size(); pos += chunk) {
    reader.feed(text.substr(pos, std::min(chunk, text.size() - pos)));
  }
  reader.finish();
  out.bytes += reader.bytes_consumed();
  out.lines += reader.lines_seen();
  out.skipped += reader.lines_skipped();
  out.malformed += reader.malformed_rows();
  out.rotations += reader.rotations_seen();
  for (const auto& error : reader.errors()) {
    out.errors.emplace_back(error.line_number, error.message);
  }
}

ParseResult parse_serial(std::string_view text, std::size_t chunk) {
  ParseResult out;
  auto reader = make_streaming_ssl_reader(
      [&out](SslLogRecord record) { out.records.push_back(std::move(record)); });
  drain_reader(reader, text, chunk, out);
  return out;
}

/// The sharded parse scheme the pipeline uses: line-aligned shards, a header
/// scan per shard, serial prefix combine, one primed reader per shard. Run
/// here single-threaded — the determinism of the priming is what's under
/// test; thread-equivalence is the parallel-diff suite's job.
ParseResult parse_sharded(std::string_view text, std::size_t shard_count,
                          std::size_t chunk) {
  ParseResult out;
  const auto shards = par::split_line_aligned(text, shard_count);
  EXPECT_EQ(shards.size(), shard_count);
  bool in_body = false;
  std::size_t line_offset = 0;
  for (const par::TextShard& shard : shards) {
    const ShardHeaderScan scan =
        scan_shard_header_state(shard.text, ssl_log_fields());
    auto reader = make_streaming_ssl_reader([&out](SslLogRecord record) {
      out.records.push_back(std::move(record));
    });
    reader.prime(in_body, line_offset);
    drain_reader(reader, shard.text, chunk, out);
    if (scan.has_directive) in_body = scan.exit_in_body;
    line_offset += scan.newlines;
  }
  return out;
}

/// A stream with every boundary hazard: two rotations, a damaged row, an
/// orphan row after #close, a blank line, and no trailing newline.
std::string hazard_log() {
  std::string log = two_record_ssl_log();
  const std::size_t close_pos = log.find("#close");
  log.insert(close_pos, "not\ta\tvalid\trow\n");
  log += "1600000009.000000\tCorphan\tno header yet\n";
  log += "\n";
  log += two_record_ssl_log();
  log.pop_back();  // strip the final newline: last line ends at EOF
  return log;
}

void expect_same_parse(const ParseResult& a, const ParseResult& b) {
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.lines, b.lines);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.malformed, b.malformed);
  EXPECT_EQ(a.rotations, b.rotations);
  EXPECT_EQ(a.errors, b.errors);
}

TEST(LogStreamShards, ChunkSizeNeverChangesTheParse) {
  const std::string log = hazard_log();
  const ParseResult whole = parse_serial(log, 0);
  ASSERT_EQ(whole.records.size(), 4u);
  ASSERT_GE(whole.errors.size(), 2u);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{13}, log.size() - 1}) {
    const ParseResult chunked = parse_serial(log, chunk);
    expect_same_parse(whole, chunked);
  }
}

TEST(LogStreamShards, ShardedParseMatchesSerialAtEveryShardCount) {
  const std::string log = hazard_log();
  const ParseResult serial = parse_serial(log, 0);
  for (const std::size_t shard_count : {1u, 2u, 3u, 5u, 8u, 64u}) {
    const ParseResult sharded = parse_sharded(log, shard_count, 0);
    expect_same_parse(serial, sharded);
  }
}

TEST(LogStreamShards, ShardingAndTinyChunksCompose) {
  const std::string log = hazard_log();
  const ParseResult serial = parse_serial(log, 0);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}}) {
    expect_same_parse(serial, parse_sharded(log, 4, chunk));
  }
}

TEST(LogStreamShards, PrimedErrorLineNumbersStayAbsolute) {
  // Damage near the end so the error lands in a late shard.
  std::string log = two_record_ssl_log() + two_record_ssl_log();
  const std::size_t close_pos = log.rfind("#close");
  log.insert(close_pos, "late\tdamage\n");
  const ParseResult serial = parse_serial(log, 0);
  ASSERT_EQ(serial.errors.size(), 1u);
  const ParseResult sharded = parse_sharded(log, 6, 0);
  ASSERT_EQ(sharded.errors.size(), 1u);
  EXPECT_EQ(sharded.errors[0].first, serial.errors[0].first);
  EXPECT_GT(serial.errors[0].first, 10u);  // genuinely beyond the first shard
}

TEST(LogStreamShards, SplitLineAlignedInvariants) {
  const std::string log = hazard_log();
  for (const std::size_t shard_count : {1u, 2u, 3u, 7u, 100u}) {
    const auto shards = par::split_line_aligned(log, shard_count);
    ASSERT_EQ(shards.size(), shard_count);
    std::string reassembled;
    std::size_t offset = 0;
    for (const auto& shard : shards) {
      EXPECT_EQ(shard.offset, offset);
      // Boundaries only at the start of the text or right after a newline.
      if (shard.offset > 0 && !shard.text.empty()) {
        EXPECT_EQ(log[shard.offset - 1], '\n');
      }
      reassembled.append(shard.text);
      offset += shard.text.size();
    }
    EXPECT_EQ(reassembled, log);
  }
  // Degenerate inputs.
  EXPECT_EQ(par::split_line_aligned("", 3).size(), 3u);
  const auto one_line = par::split_line_aligned("no newline at all", 4);
  std::size_t non_empty = 0;
  for (const auto& shard : one_line) non_empty += shard.text.empty() ? 0 : 1;
  EXPECT_EQ(non_empty, 1u);
}

TEST(LogStreamShards, HeaderScanMirrorsConsumeLine) {
  const std::string fields = ssl_log_fields();
  const std::string header = "#fields\t" + fields + "\n";

  ShardHeaderScan scan = scan_shard_header_state(header, fields);
  EXPECT_EQ(scan.newlines, 1u);
  EXPECT_TRUE(scan.has_directive);
  EXPECT_TRUE(scan.exit_in_body);

  scan = scan_shard_header_state(header + "#close\t2020\n", fields);
  EXPECT_EQ(scan.newlines, 2u);
  EXPECT_TRUE(scan.has_directive);
  EXPECT_FALSE(scan.exit_in_body);

  // A wrong layout enters "skip" state, exactly like the reader.
  scan = scan_shard_header_state("#fields\twrong\tlayout\n", fields);
  EXPECT_TRUE(scan.has_directive);
  EXPECT_FALSE(scan.exit_in_body);

  // Plain data (or other directives) carries no state change.
  scan = scan_shard_header_state("row\tone\nrow\ttwo\n#open\t2020\n", fields);
  EXPECT_EQ(scan.newlines, 3u);
  EXPECT_FALSE(scan.has_directive);
}

}  // namespace
}  // namespace certchain::zeek
