// RFC 6962 Merkle tree: root computation, inclusion and consistency proofs.
#include "ct/merkle.hpp"

#include <gtest/gtest.h>

#include <string>

namespace certchain::ct {
namespace {

std::string leaf_data(std::size_t i) { return "leaf-" + std::to_string(i); }

MerkleTree build_tree(std::size_t n) {
  MerkleTree tree;
  for (std::size_t i = 0; i < n; ++i) tree.append(leaf_data(i));
  return tree;
}

TEST(MerkleTree, EmptyTreeRootIsHashOfEmptyString) {
  MerkleTree tree;
  EXPECT_EQ(tree.root_hash(), util::digest256(""));
}

TEST(MerkleTree, SingleLeafRootIsLeafHash) {
  MerkleTree tree;
  tree.append("only");
  EXPECT_EQ(tree.root_hash(), leaf_hash("only"));
  EXPECT_TRUE(tree.inclusion_proof(0).empty());
}

TEST(MerkleTree, LeafAndNodeHashesAreDomainSeparated) {
  // H(0x00 || x) != H(0x01 || x-ish): a leaf can't be confused with a node.
  const Digest256 as_leaf = leaf_hash("ab");
  const Digest256 as_node = node_hash(util::digest256("a"), util::digest256("b"));
  EXPECT_NE(as_leaf, as_node);
}

TEST(MerkleTree, TwoLeafRootStructure) {
  MerkleTree tree;
  tree.append("a");
  tree.append("b");
  EXPECT_EQ(tree.root_hash(), node_hash(leaf_hash("a"), leaf_hash("b")));
}

TEST(MerkleTree, RootChangesOnAppend) {
  MerkleTree tree;
  Digest256 previous = tree.root_hash();
  for (std::size_t i = 0; i < 20; ++i) {
    tree.append(leaf_data(i));
    const Digest256 current = tree.root_hash();
    EXPECT_NE(current, previous);
    previous = current;
  }
}

TEST(MerkleTree, PrefixRootMatchesIndependentTree) {
  const MerkleTree big = build_tree(37);
  for (const std::size_t n : {1u, 2u, 3u, 16u, 31u, 37u}) {
    EXPECT_EQ(big.root_hash(n), build_tree(n).root_hash()) << n;
  }
}

class MerkleInclusionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleInclusionTest, EveryLeafProvesInclusion) {
  const std::size_t n = GetParam();
  const MerkleTree tree = build_tree(n);
  const Digest256 root = tree.root_hash();
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = tree.inclusion_proof(i);
    EXPECT_TRUE(verify_inclusion(leaf_data(i), i, n, proof, root))
        << "leaf " << i << " of " << n;
    // Wrong data must not verify.
    EXPECT_FALSE(verify_inclusion("tampered", i, n, proof, root));
    // Wrong index must not verify (unless proof happens to be empty tree of 1).
    if (n > 1) {
      EXPECT_FALSE(verify_inclusion(leaf_data(i), (i + 1) % n, n, proof, root));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleInclusionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                           33, 64, 65));

class MerkleConsistencyTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MerkleConsistencyTest, OldRootIsConsistentWithNewRoot) {
  const auto [m, n] = GetParam();
  const MerkleTree tree = build_tree(n);
  const Digest256 old_root = tree.root_hash(m);
  const Digest256 new_root = tree.root_hash(n);
  const auto proof = tree.consistency_proof(m, n);
  EXPECT_TRUE(verify_consistency(m, n, old_root, new_root, proof))
      << m << " -> " << n;
  // A different old root must fail (history rewrite detection).
  if (m > 0 && m < n) {
    const Digest256 forged = util::digest256("forged-old-root");
    EXPECT_FALSE(verify_consistency(m, n, forged, new_root, proof));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizePairs, MerkleConsistencyTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{0, 8},
                      std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{1, 2},
                      std::pair<std::size_t, std::size_t>{2, 8},
                      std::pair<std::size_t, std::size_t>{3, 7},
                      std::pair<std::size_t, std::size_t>{4, 7},
                      std::pair<std::size_t, std::size_t>{6, 8},
                      std::pair<std::size_t, std::size_t>{7, 8},
                      std::pair<std::size_t, std::size_t>{8, 8},
                      std::pair<std::size_t, std::size_t>{5, 17},
                      std::pair<std::size_t, std::size_t>{16, 33},
                      std::pair<std::size_t, std::size_t>{31, 64}));

TEST(MerkleTree, RewrittenHistoryFailsConsistency) {
  // Build two trees that agree on size but not content.
  MerkleTree honest = build_tree(8);
  MerkleTree rewritten;
  for (std::size_t i = 0; i < 8; ++i) {
    rewritten.append(i == 3 ? std::string("evil") : leaf_data(i));
  }
  for (std::size_t i = 8; i < 12; ++i) rewritten.append(leaf_data(i));
  const auto proof = rewritten.consistency_proof(8, 12);
  EXPECT_FALSE(verify_consistency(8, 12, honest.root_hash(8),
                                  rewritten.root_hash(12), proof));
}

TEST(MerkleTree, ProofApiBoundsChecks) {
  MerkleTree tree = build_tree(4);
  EXPECT_THROW(tree.inclusion_proof(4, 4), std::out_of_range);
  EXPECT_THROW(tree.inclusion_proof(0, 5), std::out_of_range);
  EXPECT_THROW(tree.consistency_proof(5, 4), std::out_of_range);
  EXPECT_THROW(tree.root_hash(9), std::out_of_range);
}

TEST(MerkleTree, VerifyInclusionRejectsBadParameters) {
  const MerkleTree tree = build_tree(4);
  const auto proof = tree.inclusion_proof(1);
  EXPECT_FALSE(verify_inclusion(leaf_data(1), 1, 0, proof, tree.root_hash()));
  EXPECT_FALSE(verify_inclusion(leaf_data(1), 7, 4, proof, tree.root_hash()));
  // Truncated proof fails.
  auto short_proof = proof;
  short_proof.pop_back();
  EXPECT_FALSE(verify_inclusion(leaf_data(1), 1, 4, short_proof, tree.root_hash()));
}

}  // namespace
}  // namespace certchain::ct
