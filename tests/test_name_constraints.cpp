// Name constraints: subtree matching, certificate plumbing, and validator
// enforcement for technically constrained sub-CAs.
#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "validation/client_validators.hpp"
#include "x509/pem.hpp"

namespace certchain::x509 {
namespace {

using certchain::testing::TestPki;
using certchain::testing::dn;
using certchain::testing::make_chain;
using certchain::testing::test_validity;

TEST(DnsSubtree, Rfc5280Matching) {
  EXPECT_TRUE(dns_in_subtree("example.com", "example.com"));
  EXPECT_TRUE(dns_in_subtree("host.example.com", "example.com"));
  EXPECT_TRUE(dns_in_subtree("a.b.example.com", "example.com"));
  EXPECT_TRUE(dns_in_subtree("HOST.EXAMPLE.COM", "example.com"));
  EXPECT_FALSE(dns_in_subtree("notexample.com", "example.com"));
  EXPECT_FALSE(dns_in_subtree("example.org", "example.com"));
  EXPECT_FALSE(dns_in_subtree("example.com", "host.example.com"));
}

TEST(NameConstraints, AbsentAllowsEverything) {
  const NameConstraints none;
  EXPECT_TRUE(none.allows("anything.example"));
}

TEST(NameConstraints, PermittedAndExcludedSubtrees) {
  NameConstraints constraints;
  constraints.present = true;
  constraints.permitted_dns = {"agency.gov"};
  constraints.excluded_dns = {"secret.agency.gov"};
  EXPECT_TRUE(constraints.allows("portal.agency.gov"));
  EXPECT_TRUE(constraints.allows("agency.gov"));
  EXPECT_FALSE(constraints.allows("www.example.com"));       // outside permitted
  EXPECT_FALSE(constraints.allows("x.secret.agency.gov"));   // excluded wins
}

TEST(NameConstraints, EmptyPermittedListMeansAllowAllButExcluded) {
  NameConstraints constraints;
  constraints.present = true;
  constraints.excluded_dns = {"bad.example"};
  EXPECT_TRUE(constraints.allows("anything.example"));
  EXPECT_FALSE(constraints.allows("www.bad.example"));
}

TEST(NameConstraints, SurvivePemRoundTripAndFingerprint) {
  TestPki pki;
  Certificate cert = pki.leaf("nc.example");
  const std::string before = cert.fingerprint();
  cert.name_constraints.present = true;
  cert.name_constraints.permitted_dns = {"corp.example"};
  cert.name_constraints.excluded_dns = {"blocked.corp.example"};
  EXPECT_NE(cert.fingerprint(), before);  // tbs covers the extension

  const auto decoded = decode_pem(encode_pem(cert));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cert);
}

TEST(NameConstraints, ChromeLikeEnforcesConstrainedSubCa) {
  // A technically constrained sub-CA limited to agency.gov issues one leaf
  // inside and one outside its subtree.
  TestPki pki;
  const auto stores = pki.trusted_stores();

  x509::CertificateAuthority sub_ca(dn("CN=Constrained Agency CA,O=Agency"),
                                    "constrained");
  KeyUsage usage;
  usage.present = true;
  usage.key_cert_sign = true;
  NameConstraints constraints;
  constraints.present = true;
  constraints.permitted_dns = {"agency.gov"};
  const Certificate sub_cert = CertificateBuilder()
                                   .serial(pki.root_ca.next_serial())
                                   .subject(sub_ca.name())
                                   .issuer(pki.root_ca.name())
                                   .validity(test_validity())
                                   .public_key(sub_ca.public_key())
                                   .ca(true)
                                   .key_usage(usage)
                                   .name_constraints(constraints)
                                   .sign_with(pki.root_ca.private_key());

  DistinguishedName inside_subject;
  inside_subject.add("CN", "portal.agency.gov");
  const Certificate inside =
      sub_ca.issue_leaf(inside_subject, "portal.agency.gov", test_validity());
  DistinguishedName outside_subject;
  outside_subject.add("CN", "www.victim.example");
  const Certificate outside =
      sub_ca.issue_leaf(outside_subject, "www.victim.example", test_validity());

  const validation::ChromeLikeValidator chrome(stores);
  const util::SimTime now = util::make_time(2021, 3, 1);
  EXPECT_TRUE(chrome.validate(make_chain({inside, sub_cert}), now).accepted());
  // The constrained CA cannot mint names outside its subtree: rejected.
  EXPECT_FALSE(chrome.validate(make_chain({outside, sub_cert}), now).accepted());
}

}  // namespace
}  // namespace certchain::x509
