// netsim: PKI world invariants, interception deployments, and the campus
// traffic simulator.
#include <gtest/gtest.h>

#include <set>

#include "chain/matcher.hpp"
#include "netsim/pki_world.hpp"
#include "netsim/simulator.hpp"
#include "validation/client_validators.hpp"

namespace certchain::netsim {
namespace {

class PkiWorldTest : public ::testing::Test {
 protected:
  PkiWorld world_;
};

TEST_F(PkiWorldTest, PublicRootsAreProgramAnchors) {
  for (const PublicCaHierarchy& hierarchy : world_.public_cas()) {
    EXPECT_TRUE(world_.stores().is_trust_anchor(hierarchy.root_cert))
        << hierarchy.short_name;
    EXPECT_EQ(world_.stores().classify_issuer(hierarchy.root_ca.name()),
              truststore::IssuerClass::kPublicDb);
  }
}

TEST_F(PkiWorldTest, HostStoreIsAStrictSubset) {
  std::size_t in_host = 0;
  for (const PublicCaHierarchy& hierarchy : world_.public_cas()) {
    if (world_.host_store().contains_fingerprint(hierarchy.root_cert.fingerprint())) {
      ++in_host;
      EXPECT_TRUE(hierarchy.in_host_store);
    } else {
      EXPECT_FALSE(hierarchy.in_host_store) << hierarchy.short_name;
    }
  }
  EXPECT_GT(in_host, 0u);
  EXPECT_LT(in_host, world_.public_cas().size());  // fpki/kisa/icp-brasil absent
}

TEST_F(PkiWorldTest, IntermediatesAreCcadbDisclosed) {
  for (const PublicCaHierarchy& hierarchy : world_.public_cas()) {
    for (const x509::Certificate& cert : hierarchy.intermediate_certs) {
      EXPECT_TRUE(world_.stores().ccadb().contains_subject(cert.subject))
          << hierarchy.short_name;
    }
  }
}

TEST_F(PkiWorldTest, CrossSignRegistryCoversSectigoUsertrust) {
  const auto& usertrust = world_.public_ca("usertrust");
  const auto& sectigo = world_.public_ca("sectigo");
  EXPECT_TRUE(world_.cross_signs().covers(usertrust.root_ca.name(),
                                          sectigo.root_ca.name()));
}

TEST_F(PkiWorldTest, PublicChainIsValidAndCtLogged) {
  PkiWorld world;
  const auto chain = world.issue_public_chain(
      "lets-encrypt", "www.check.example", PkiWorld::default_leaf_validity(), true);
  ASSERT_EQ(chain.length(), 3u);
  EXPECT_TRUE(chain::match_chain(chain).all_matched());
  EXPECT_TRUE(world.ct_logs().logged_anywhere(chain.first()));
  EXPECT_GE(chain.first().scts.size(), 2u);

  // The chain validates in a Chrome-like client at collection time.
  const validation::ChromeLikeValidator chrome(world.stores());
  EXPECT_TRUE(chrome.validate(chain, util::make_time(2021, 1, 1)).accepted());
}

TEST_F(PkiWorldTest, SubCaChainMatchesTable6Shape) {
  PkiWorld world;
  const auto chain = world.issue_sub_ca_chain("veterans-affairs", "portal.va.example",
                                              PkiWorld::default_leaf_validity());
  ASSERT_GE(chain.length(), 3u);
  // Leaf issued by a non-public issuer...
  EXPECT_EQ(world.stores().classify_certificate(chain.first()),
            truststore::IssuerClass::kNonPublicDb);
  // ...anchored to a public root via a fully matched path.
  EXPECT_TRUE(chain::match_chain(chain).all_matched());
  EXPECT_TRUE(world.stores().is_trust_anchor(chain.at(chain.length() - 1)));
  // The leaf is CT-logged (§4.2 requirement).
  EXPECT_TRUE(world.ct_logs().logged_anywhere(chain.first()));
}

TEST_F(PkiWorldTest, InterceptionVendorCensusMatchesTable1) {
  const auto vendors = builtin_interception_vendors();
  EXPECT_EQ(vendors.size(), 80u);
  std::map<InterceptionCategory, std::size_t> counts;
  std::set<std::string> names;
  for (const auto& vendor : vendors) {
    ++counts[vendor.category];
    names.insert(vendor.name);
  }
  EXPECT_EQ(names.size(), 80u);  // distinct
  EXPECT_EQ(counts[InterceptionCategory::kSecurityNetwork], 31u);
  EXPECT_EQ(counts[InterceptionCategory::kBusinessCorporate], 27u);
  EXPECT_EQ(counts[InterceptionCategory::kHealthEducation], 10u);
  EXPECT_EQ(counts[InterceptionCategory::kGovernmentPublic], 6u);
  EXPECT_EQ(counts[InterceptionCategory::kBankFinance], 3u);
  EXPECT_EQ(counts[InterceptionCategory::kOther], 3u);
}

TEST_F(PkiWorldTest, ForgedChainIsThreeCertsAndNonPublic) {
  PkiWorld world;
  InterceptionDeployment& deployment = world.interception().front();
  const auto forged =
      deployment.forge_chain("victim.example", PkiWorld::default_leaf_validity());
  ASSERT_EQ(forged.length(), 3u);
  EXPECT_TRUE(chain::match_chain(forged).all_matched());
  EXPECT_TRUE(forged.first().covers_domain("victim.example"));
  for (const auto& cert : forged) {
    EXPECT_EQ(world.stores().classify_certificate(cert),
              truststore::IssuerClass::kNonPublicDb);
  }
  EXPECT_TRUE(forged.at(2).is_self_signed());
}

TEST_F(PkiWorldTest, DgaCertificatesFollowThePattern) {
  PkiWorld world;
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const x509::Certificate cert = world.make_dga_certificate(rng);
    EXPECT_FALSE(cert.is_self_signed());
    const std::string issuer = *cert.issuer.common_name();
    const std::string subject = *cert.subject.common_name();
    EXPECT_TRUE(issuer.starts_with("www") && issuer.ends_with("com"));
    EXPECT_TRUE(subject.starts_with("www") && subject.ends_with("com"));
    EXPECT_NE(issuer, subject);
    const auto lifetime = cert.validity.duration();
    EXPECT_GE(lifetime, 4 * util::kSecondsPerDay);
    EXPECT_LE(lifetime, 365 * util::kSecondsPerDay);
  }
}

TEST_F(PkiWorldTest, LocalhostCertificateMatchesFootnote5) {
  PkiWorld world;
  const x509::Certificate cert = world.make_localhost_certificate("t1");
  EXPECT_TRUE(cert.is_self_signed());
  EXPECT_EQ(cert.subject.common_name(), "localhost");
  EXPECT_EQ(cert.subject.attribute("emailAddress"), "webmaster@localhost");
  EXPECT_EQ(cert.subject.attribute("L"), "Sometown");
  EXPECT_FALSE(cert.basic_constraints.present);
  // Distinct instances differ (serial/key), same identity.
  const x509::Certificate other = world.make_localhost_certificate("t2");
  EXPECT_NE(cert.fingerprint(), other.fingerprint());
  EXPECT_TRUE(cert.subject.matches(other.subject));
}

TEST_F(PkiWorldTest, EnterpriseCaIsMemoized) {
  PkiWorld world;
  PrivateCaHierarchy& first = world.make_enterprise_ca("Acme", true);
  PrivateCaHierarchy& second = world.make_enterprise_ca("Acme", true);
  EXPECT_EQ(&first, &second);
  EXPECT_TRUE(first.intermediate_ca.has_value());
}

TEST_F(PkiWorldTest, DeterministicAcrossInstances) {
  PkiWorld a(7);
  PkiWorld b(7);
  EXPECT_EQ(a.public_ca("digicert").root_cert.fingerprint(),
            b.public_ca("digicert").root_cert.fingerprint());
  EXPECT_EQ(a.fake_le_intermediate().fingerprint(),
            b.fake_le_intermediate().fingerprint());
}

// --- simulator -----------------------------------------------------------------

ServerEndpoint simple_endpoint(PkiWorld& world, const std::string& domain,
                               double popularity) {
  ServerEndpoint endpoint;
  endpoint.ip = "198.51.100.1";
  endpoint.port = 443;
  endpoint.domain = domain;
  endpoint.chain =
      world.issue_public_chain("digicert", domain, PkiWorld::default_leaf_validity());
  endpoint.popularity = popularity;
  endpoint.establish_probability = 1.0;
  endpoint.tls13_fraction = 0.0;
  return endpoint;
}

TEST(CampusSimulator, DeterministicInSeed) {
  PkiWorld world;
  std::vector<ServerEndpoint> endpoints{simple_endpoint(world, "a.example", 1.0),
                                        simple_endpoint(world, "b.example", 2.0)};
  const CampusSimulator simulator(endpoints);
  TrafficConfig config;
  config.connections = 500;
  const GeneratedLogs first = simulator.run(config);
  const GeneratedLogs second = simulator.run(config);
  ASSERT_EQ(first.ssl.size(), second.ssl.size());
  EXPECT_EQ(first.ssl, second.ssl);
  EXPECT_EQ(first.x509, second.x509);

  config.seed += 1;
  const GeneratedLogs third = simulator.run(config);
  EXPECT_NE(first.ssl, third.ssl);
}

TEST(CampusSimulator, CoverageGuaranteesEveryEndpointOnce) {
  PkiWorld world;
  std::vector<ServerEndpoint> endpoints;
  for (int i = 0; i < 20; ++i) {
    endpoints.push_back(
        simple_endpoint(world, "cov" + std::to_string(i) + ".example",
                        i == 0 ? 1.0 : 1e-9));  // all weight on endpoint 0
  }
  const CampusSimulator simulator(endpoints);
  TrafficConfig config;
  config.connections = 100;
  const GeneratedLogs logs = simulator.run(config);
  std::set<std::string> servers;
  for (const auto& ssl : logs.ssl) {
    if (!ssl.server_name.empty()) servers.insert(ssl.server_name);
  }
  EXPECT_EQ(servers.size(), 20u);  // the sweep reached everyone
}

TEST(CampusSimulator, Tls13HidesCertificates) {
  PkiWorld world;
  auto endpoint = simple_endpoint(world, "tls13.example", 1.0);
  endpoint.tls13_fraction = 1.0;
  const CampusSimulator simulator({endpoint});
  TrafficConfig config;
  config.connections = 50;
  const GeneratedLogs logs = simulator.run(config);
  std::size_t with_certs = 0;
  for (const auto& ssl : logs.ssl) {
    if (!ssl.cert_chain_fuids.empty()) {
      ++with_certs;
      EXPECT_EQ(ssl.version, "TLSv12");  // only the coverage sweep
    } else {
      EXPECT_EQ(ssl.version, "TLSv13");
    }
  }
  EXPECT_EQ(with_certs, 1u);
}

TEST(CampusSimulator, EmergentEstablishmentFollowsValidators) {
  PkiWorld world;
  // Endpoint A: well-formed chain -> browsers and strict clients accept.
  auto good = simple_endpoint(world, "em-good.example", 1.0);
  good.establish_probability = 0.0;  // must be ignored by the emergent model
  // Endpoint B: self-signed single -> only permissive clients accept.
  ServerEndpoint bad = good;
  bad.domain = "em-bad.example";
  {
    chain::CertificateChain chain;
    chain.push_back(world.make_self_signed("Em Org", "em-bad.example",
                                           PkiWorld::default_leaf_validity()));
    bad.chain = std::move(chain);
  }

  const CampusSimulator simulator({good, bad});
  TrafficConfig config;
  config.connections = 2000;
  config.establishment = EstablishmentModel::kEmergent;
  config.stores = &world.stores();
  config.host_store = &world.host_store();
  config.client_mix.browser_fraction = 0.5;
  config.client_mix.strict_fraction = 0.2;
  config.client_mix.permissive_fraction = 0.3;
  const GeneratedLogs logs = simulator.run(config);

  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> per_domain;
  for (const auto& ssl : logs.ssl) {
    auto& [total, established] = per_domain[ssl.server_name];
    ++total;
    if (ssl.established) ++established;
  }
  const auto rate = [&](const std::string& domain) {
    const auto& [total, established] = per_domain[domain];
    return static_cast<double>(established) / static_cast<double>(total);
  };
  // Good chain: everyone accepts (establish_probability=0 proves the coin
  // was not used).
  EXPECT_GT(rate("em-good.example"), 0.95);
  // Bad chain: only the permissive ~30% accept.
  EXPECT_NEAR(rate("em-bad.example"), 0.30, 0.08);
}

TEST(CampusSimulator, ResumedSessionsCarryNoCertificates) {
  PkiWorld world;
  auto endpoint = simple_endpoint(world, "resume.example", 1.0);
  endpoint.resumption_fraction = 1.0;
  const CampusSimulator simulator({endpoint});
  TrafficConfig config;
  config.connections = 60;
  const GeneratedLogs logs = simulator.run(config);
  std::size_t resumed = 0;
  for (const auto& ssl : logs.ssl) {
    if (ssl.resumed) {
      ++resumed;
      EXPECT_TRUE(ssl.cert_chain_fuids.empty());
    }
  }
  EXPECT_EQ(resumed, logs.ssl.size() - 1);  // all but the coverage sweep
}

TEST(CampusSimulator, RestrictedClientsAreHonored) {
  PkiWorld world;
  auto endpoint = simple_endpoint(world, "restricted.example", 1.0);
  endpoint.restricted_clients = {"10.9.9.1", "10.9.9.2"};
  const CampusSimulator simulator({endpoint});
  TrafficConfig config;
  config.connections = 200;
  const GeneratedLogs logs = simulator.run(config);
  for (const auto& ssl : logs.ssl) {
    EXPECT_TRUE(ssl.id_orig_h == "10.9.9.1" || ssl.id_orig_h == "10.9.9.2");
  }
}

TEST(CampusSimulator, X509RowsAreDeduplicatedByCertificate) {
  PkiWorld world;
  const CampusSimulator simulator({simple_endpoint(world, "dedupe.example", 1.0)});
  TrafficConfig config;
  config.connections = 300;
  const GeneratedLogs logs = simulator.run(config);
  EXPECT_EQ(logs.x509.size(), 2u);  // leaf + intermediate, once each
  std::set<std::string> fuids;
  for (const auto& record : logs.x509) fuids.insert(record.fuid);
  EXPECT_EQ(fuids.size(), logs.x509.size());
}

TEST(CampusSimulator, TimestampsStayInWindow) {
  PkiWorld world;
  const CampusSimulator simulator({simple_endpoint(world, "window.example", 1.0)});
  TrafficConfig config;
  config.connections = 200;
  const GeneratedLogs logs = simulator.run(config);
  for (const auto& ssl : logs.ssl) {
    EXPECT_TRUE(config.window.contains(ssl.ts)) << ssl.ts;
  }
}

TEST(CampusSimulator, EmptyInputs) {
  const CampusSimulator simulator({});
  TrafficConfig config;
  config.connections = 10;
  EXPECT_TRUE(simulator.run(config).ssl.empty());

  PkiWorld world;
  const CampusSimulator one({simple_endpoint(world, "x.example", 1.0)});
  config.connections = 0;
  EXPECT_TRUE(one.run(config).ssl.empty());
}

TEST(ClientPool, ShapeAndDeterminism) {
  const ClientPool pool = make_campus_client_pool(300);
  EXPECT_EQ(pool.ips.size(), 300u);
  EXPECT_EQ(pool.ips[0], "10.0.0.0");
  std::set<std::string> unique(pool.ips.begin(), pool.ips.end());
  EXPECT_EQ(unique.size(), 300u);
}

}  // namespace
}  // namespace certchain::netsim
