// Unit tests for the src/obs/ telemetry subsystem: registry semantics,
// histogram percentile edge cases, span nesting, the JSON writer/parser
// round trip, and manifest reconciliation.
#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/run_context.hpp"
#include "obs/span.hpp"
#include "obs/stopwatch.hpp"

namespace {

using namespace certchain::obs;

TEST(MetricSlug, LowercasesAndReplacesSeparators) {
  EXPECT_EQ(metric_slug("TLS interception"), "tls_interception");
  EXPECT_EQ(metric_slug("connect-timeout"), "connect_timeout");
  EXPECT_EQ(metric_slug("stage.join.in"), "stage.join.in");
  EXPECT_EQ(metric_slug("Public DB only"), "public_db_only");
  EXPECT_EQ(metric_slug(""), "");
}

TEST(MetricsRegistry, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("never.touched"), 0u);
  EXPECT_TRUE(registry.empty());
  registry.count("a.b");
  registry.count("a.b", 4);
  registry.count("a.c", 0);  // creates the series even with delta 0
  EXPECT_EQ(registry.counter("a.b"), 5u);
  EXPECT_EQ(registry.counter("a.c"), 0u);
  EXPECT_EQ(registry.counters().size(), 2u);
  EXPECT_FALSE(registry.empty());
  registry.clear();
  EXPECT_TRUE(registry.empty());
}

TEST(MetricsRegistry, GaugesLastWriteWins) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.gauge("g"), 0.0);
  registry.set_gauge("g", 3.5);
  registry.set_gauge("g", -1.25);
  EXPECT_DOUBLE_EQ(registry.gauge("g"), -1.25);
}

TEST(MetricsRegistry, TimingsStaySeparateFromCounters) {
  MetricsRegistry registry;
  registry.observe_timing("time.join.ms", 12.5);
  EXPECT_TRUE(registry.counters().empty());
  EXPECT_TRUE(registry.histograms().empty());
  ASSERT_EQ(registry.timings().size(), 1u);
  EXPECT_EQ(registry.timings().at("time.join.ms").count(), 1u);
}

TEST(FixedHistogram, EmptyReportsZeroEverywhere) {
  FixedHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.p50(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.p99(), 0.0);
}

TEST(FixedHistogram, SingleSampleIsExactAtEveryQuantile) {
  FixedHistogram histogram;
  histogram.observe(7.25);
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_DOUBLE_EQ(histogram.min(), 7.25);
  EXPECT_DOUBLE_EQ(histogram.max(), 7.25);
  EXPECT_DOUBLE_EQ(histogram.percentile(0.0), 7.25);
  EXPECT_DOUBLE_EQ(histogram.p50(), 7.25);
  EXPECT_DOUBLE_EQ(histogram.p90(), 7.25);
  EXPECT_DOUBLE_EQ(histogram.p99(), 7.25);
  EXPECT_DOUBLE_EQ(histogram.percentile(1.0), 7.25);
}

TEST(FixedHistogram, PercentilesAreMonotonicAndClamped) {
  FixedHistogram histogram({1, 2, 5, 10, 100});
  for (int value = 1; value <= 100; ++value) {
    histogram.observe(static_cast<double>(value));
  }
  EXPECT_EQ(histogram.count(), 100u);
  const double p50 = histogram.p50();
  const double p90 = histogram.p90();
  const double p99 = histogram.p99();
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GE(p50, histogram.min());
  EXPECT_LE(p99, histogram.max());
  // The median of 1..100 sits in the (10, 100] bucket; interpolation should
  // put it within that bucket, in the right half of the range.
  EXPECT_GT(p50, 10.0);
  EXPECT_LT(p50, 100.0);
}

TEST(FixedHistogram, OverflowBucketCatchesValuesAboveAllBounds) {
  FixedHistogram histogram({1, 10});
  histogram.observe(0.5);
  histogram.observe(5);
  histogram.observe(1e9);
  ASSERT_EQ(histogram.bucket_counts().size(), 3u);
  EXPECT_EQ(histogram.bucket_counts()[0], 1u);
  EXPECT_EQ(histogram.bucket_counts()[1], 1u);
  EXPECT_EQ(histogram.bucket_counts()[2], 1u);  // +inf overflow
  // Percentiles stay clamped to the observed max even in the overflow bucket.
  EXPECT_LE(histogram.p99(), histogram.max());
}

TEST(FixedHistogram, RegistryKeepsFirstBounds) {
  MetricsRegistry registry;
  registry.histogram("h", {1, 2, 3});
  registry.observe("h", 2.5);
  FixedHistogram& again = registry.histogram("h", {99});  // bounds ignored
  EXPECT_EQ(again.upper_bounds(), (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(again.count(), 1u);
}

TEST(Trace, SpansNestByScope) {
  Trace trace;
  {
    Span outer = trace.span("pipeline");
    {
      Span inner = trace.span("join");
      Span sibling_child = trace.span("join.dedupe");
      sibling_child.stop();
      inner.stop();
    }
    Span second = trace.span("enrich");
  }
  const Trace::Node& root = trace.root();
  ASSERT_EQ(root.children.size(), 1u);
  const Trace::Node& pipeline = *root.children[0];
  EXPECT_EQ(pipeline.name, "pipeline");
  ASSERT_EQ(pipeline.children.size(), 2u);
  EXPECT_EQ(pipeline.children[0]->name, "join");
  EXPECT_EQ(pipeline.children[1]->name, "enrich");
  ASSERT_EQ(pipeline.children[0]->children.size(), 1u);
  EXPECT_EQ(pipeline.children[0]->children[0]->name, "join.dedupe");
  EXPECT_EQ(trace.node_count(), 4u);
  EXPECT_TRUE(pipeline.closed);
  EXPECT_GE(trace.total_ms(), 0.0);
}

TEST(Trace, StopIsIdempotentAndRenderListsEveryNode) {
  Trace trace;
  Span span = trace.span("only");
  span.stop();
  span.stop();  // second stop is a no-op
  EXPECT_EQ(trace.node_count(), 1u);
  const std::string text = trace.render();
  EXPECT_NE(text.find("only"), std::string::npos);
}

TEST(StageTimer, RecordsSpanAndTimingUnderOneName) {
  RunContext context;
  {
    StageTimer timer(context, "join");
    EXPECT_GE(timer.elapsed_ms(), 0.0);
  }
  ASSERT_EQ(context.trace.node_count(), 1u);
  EXPECT_EQ(context.trace.root().children[0]->name, "join");
  ASSERT_EQ(context.metrics.timings().count("time.join.ms"), 1u);
  EXPECT_EQ(context.metrics.timings().at("time.join.ms").count(), 1u);
  // Timing never leaks into the exact-counter namespace.
  EXPECT_TRUE(context.metrics.counters().empty());
}

TEST(Stopwatch, ElapsedIsNonNegativeAndRestartable) {
  Stopwatch watch;
  EXPECT_GE(watch.elapsed_ms(), 0.0);
  watch.restart();
  EXPECT_GE(watch.elapsed_seconds(), 0.0);
}

TEST(Manifest, DiscoversStagesFromReservedTriple) {
  RunContext context;
  context.set_config("seed", std::uint64_t{42});
  {
    StageTimer join(context, "join");
    context.metrics.count("stage.join.in", 100);
    context.metrics.count("stage.join.admitted", 90);
    context.metrics.count("stage.join.dropped", 10);
  }
  context.metrics.count("stage.enrich.in", 90);
  context.metrics.count("stage.enrich.admitted", 90);
  context.metrics.count("stage.enrich.dropped", 0);

  const RunManifest manifest = build_run_manifest(context);
  EXPECT_EQ(manifest.config.at("seed"), "42");
  ASSERT_EQ(manifest.stages.size(), 2u);
  // join appears in the trace, so it orders first; enrich follows.
  EXPECT_EQ(manifest.stages[0].name, "join");
  EXPECT_TRUE(manifest.stages[0].timed);
  EXPECT_EQ(manifest.stages[0].records_in, 100u);
  EXPECT_EQ(manifest.stages[0].admitted, 90u);
  EXPECT_EQ(manifest.stages[0].dropped, 10u);
  EXPECT_EQ(manifest.stages[1].name, "enrich");
  EXPECT_FALSE(manifest.stages[1].timed);
  EXPECT_TRUE(manifest.reconciles());
  ASSERT_NE(manifest.stage("join"), nullptr);
  EXPECT_EQ(manifest.stage("missing"), nullptr);
}

TEST(Manifest, FlagsStagesThatDoNotReconcile) {
  RunContext context;
  context.metrics.count("stage.leaky.in", 10);
  context.metrics.count("stage.leaky.admitted", 7);
  context.metrics.count("stage.leaky.dropped", 1);  // 2 records vanished
  const RunManifest manifest = build_run_manifest(context);
  ASSERT_EQ(manifest.stages.size(), 1u);
  EXPECT_FALSE(manifest.stages[0].reconciles());
  EXPECT_FALSE(manifest.reconciles());
  const std::string text = render_metrics_text(context);
  EXPECT_NE(text.find("DOES NOT RECONCILE"), std::string::npos);
}

TEST(Json, WriterProducesParseableDocuments) {
  json::Writer writer;
  writer.begin_object();
  writer.key("name");
  writer.value_string("with \"quotes\" and \\ and \n newline");
  writer.key("count");
  writer.value_uint(18446744073709551615ull);
  writer.key("ratio");
  writer.value_number(0.5);
  writer.key("whole");
  writer.value_number(3.0);  // integral doubles print without a fraction
  writer.key("flag");
  writer.value_bool(true);
  writer.key("nothing");
  writer.value_null();
  writer.key("list");
  writer.begin_array();
  writer.value_number(1);
  writer.value_number(2);
  writer.end_array();
  writer.end_object();
  const std::string text = std::move(writer).str();
  EXPECT_NE(text.find("\"whole\":3"), std::string::npos);
  EXPECT_EQ(text.find("3.000000"), std::string::npos);

  std::string error;
  const auto parsed = json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->find("name")->string, "with \"quotes\" and \\ and \n newline");
  EXPECT_DOUBLE_EQ(parsed->find("ratio")->num, 0.5);
  EXPECT_TRUE(parsed->find("flag")->boolean);
  EXPECT_EQ(parsed->find("nothing")->kind, json::Value::Kind::kNull);
  ASSERT_TRUE(parsed->find("list")->is_array());
  EXPECT_EQ(parsed->find("list")->array.size(), 2u);
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_FALSE(json::parse("").has_value());
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("{} trailing").has_value());
  EXPECT_FALSE(json::parse("{\"a\":}").has_value());
  EXPECT_FALSE(json::parse("[1,]").has_value());
  EXPECT_FALSE(json::parse("nulll").has_value());
  std::string error;
  EXPECT_FALSE(json::parse("{\"a\" 1}", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Export, JsonRoundTripCarriesEverySection) {
  RunContext context;
  context.set_config("tool", "test");
  {
    StageTimer stage(context, "join");
    context.metrics.count("stage.join.in", 12);
    context.metrics.count("stage.join.admitted", 11);
    context.metrics.count("stage.join.dropped", 1);
    context.metrics.count("pipeline.connections", 12);
  }
  context.metrics.set_gauge("load", 0.75);
  context.metrics.observe("pipeline.chain_length", 3);
  context.metrics.observe("pipeline.chain_length", 3);
  context.metrics.observe("pipeline.chain_length", 8);

  const std::string text = export_metrics_json(context);
  std::string error;
  const auto doc = json::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  EXPECT_EQ(doc->find("schema")->string, std::string(kMetricsSchemaName));
  EXPECT_DOUBLE_EQ(doc->find("schema_version")->num,
                   static_cast<double>(kMetricsSchemaVersion));

  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("pipeline.connections")->num, 12.0);
  EXPECT_DOUBLE_EQ(counters->find("stage.join.in")->num, 12.0);

  EXPECT_DOUBLE_EQ(doc->find("gauges")->find("load")->num, 0.75);

  const json::Value* lengths =
      doc->find("histograms")->find("pipeline.chain_length");
  ASSERT_NE(lengths, nullptr);
  EXPECT_DOUBLE_EQ(lengths->find("count")->num, 3.0);
  EXPECT_DOUBLE_EQ(lengths->find("sum")->num, 14.0);

  // Timings are present but live under their own key, apart from counters.
  ASSERT_NE(doc->find("timings_ms")->find("time.join.ms"), nullptr);

  const json::Value* manifest = doc->find("manifest");
  ASSERT_NE(manifest, nullptr);
  EXPECT_EQ(manifest->find("config")->find("tool")->string, "test");
  const json::Value* stages = manifest->find("stages");
  ASSERT_TRUE(stages->is_array());
  ASSERT_EQ(stages->array.size(), 1u);
  const json::Value& join = stages->array[0];
  EXPECT_EQ(join.find("name")->string, "join");
  EXPECT_DOUBLE_EQ(join.find("in")->num, 12.0);
  EXPECT_DOUBLE_EQ(join.find("admitted")->num, 11.0);
  EXPECT_DOUBLE_EQ(join.find("dropped")->num, 1.0);
  EXPECT_TRUE(join.find("reconciles")->boolean);

  const json::Value* trace = doc->find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->find("children")->is_array());
  EXPECT_EQ(trace->find("children")->array[0].find("name")->string, "join");
}

TEST(Export, TextRendersCountersAndManifest) {
  RunContext context;
  context.metrics.count("stage.s.in", 2);
  context.metrics.count("stage.s.admitted", 2);
  context.metrics.count("stage.s.dropped", 0);
  context.set_config("seed", std::uint64_t{7});
  const std::string text = render_metrics_text(context);
  EXPECT_NE(text.find("stage.s.in = 2"), std::string::npos);
  EXPECT_NE(text.find("seed = 7"), std::string::npos);
  EXPECT_NE(text.find("s: in=2 admitted=2 dropped=0"), std::string::npos);
  EXPECT_EQ(text.find("DOES NOT RECONCILE"), std::string::npos);
}

// --- registry merging (the sharded pipeline's metric reduction) ------------

TEST(MetricsRegistryMerge, EmptyRegistryIsIdentityOnBothSides) {
  MetricsRegistry populated;
  populated.count("stage.join.in", 7);
  populated.set_gauge("load", 0.5);
  populated.observe("pipeline.chain_length", 3.0);
  populated.observe_timing("time.join.ms", 1.25);

  // Merging an empty registry in changes nothing.
  const MetricsRegistry empty;
  populated.merge_from(empty);
  EXPECT_EQ(populated.counter("stage.join.in"), 7u);
  EXPECT_DOUBLE_EQ(populated.gauge("load"), 0.5);
  EXPECT_EQ(populated.histograms().at("pipeline.chain_length").count(), 1u);
  EXPECT_EQ(populated.timings().at("time.join.ms").count(), 1u);

  // Merging into an empty registry reproduces the source exactly.
  MetricsRegistry target;
  target.merge_from(populated);
  EXPECT_EQ(target.counters(), populated.counters());
  EXPECT_EQ(target.gauges(), populated.gauges());
  ASSERT_EQ(target.histograms().size(), 1u);
  EXPECT_EQ(target.histograms().at("pipeline.chain_length").bucket_counts(),
            populated.histograms().at("pipeline.chain_length").bucket_counts());
  ASSERT_EQ(target.timings().size(), 1u);
}

TEST(MetricsRegistryMerge, CountersSumAndGaugesTakeTheMergedValue) {
  MetricsRegistry a;
  a.count("ingest.ssl.records", 10);
  a.count("only.in.a", 1);
  a.set_gauge("load", 0.25);

  MetricsRegistry b;
  b.count("ingest.ssl.records", 32);
  b.count("only.in.b", 2);
  b.set_gauge("load", 0.75);
  b.set_gauge("only.in.b", 1.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("ingest.ssl.records"), 42u);
  EXPECT_EQ(a.counter("only.in.a"), 1u);
  EXPECT_EQ(a.counter("only.in.b"), 2u);
  // Last write wins: merging shard registries in shard order keeps the
  // semantics a serial run would have had.
  EXPECT_DOUBLE_EQ(a.gauge("load"), 0.75);
  EXPECT_DOUBLE_EQ(a.gauge("only.in.b"), 1.0);
}

TEST(FixedHistogramMerge, SameBoundsAddBucketwiseIncludingBoundaryValues) {
  FixedHistogram a({1.0, 10.0, 100.0});
  FixedHistogram b({1.0, 10.0, 100.0});
  // Values exactly on a bucket's upper bound belong to that bucket
  // (lower_bound placement) — the merge must keep them there.
  a.observe(1.0);
  a.observe(10.0);
  b.observe(1.0);
  b.observe(100.0);
  b.observe(1000.0);  // overflow bucket

  a.merge_from(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.sum(), 1112.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 1000.0);
  const std::vector<std::uint64_t> expected{2, 1, 1, 1};
  EXPECT_EQ(a.bucket_counts(), expected);
}

TEST(FixedHistogramMerge, DifferentBoundsRefileButKeepTotalsExact) {
  FixedHistogram coarse({100.0});
  coarse.observe(50.0);

  FixedHistogram fine({1.0, 10.0});
  fine.observe(0.5);
  fine.observe(5.0);
  fine.observe(20.0);  // fine's overflow bucket, refiled at fine.max()

  coarse.merge_from(fine);
  // The exact aggregates survive any grid mismatch.
  EXPECT_EQ(coarse.count(), 4u);
  EXPECT_DOUBLE_EQ(coarse.sum(), 75.5);
  EXPECT_DOUBLE_EQ(coarse.min(), 0.5);
  EXPECT_DOUBLE_EQ(coarse.max(), 50.0);
  // Each foreign bucket was refiled at its upper bound (1.0 and 10.0), the
  // foreign overflow at the foreign max (20.0) — all <= 100.
  const std::vector<std::uint64_t> expected{4, 0};
  EXPECT_EQ(coarse.bucket_counts(), expected);
}

TEST(MetricsRegistryMerge, TimingsStayInTheTimingMap) {
  MetricsRegistry a;
  a.observe_timing("time.join.ms", 2.0);
  MetricsRegistry b;
  b.observe_timing("time.join.ms", 3.0);
  b.observe_timing("time.enrich.ms", 1.0);
  b.observe("pipeline.chain_length", 4.0);

  a.merge_from(b);
  EXPECT_EQ(a.timings().at("time.join.ms").count(), 2u);
  EXPECT_DOUBLE_EQ(a.timings().at("time.join.ms").sum(), 5.0);
  EXPECT_EQ(a.timings().at("time.enrich.ms").count(), 1u);
  // Wall time never crosses into the deterministic histogram map.
  EXPECT_EQ(a.histograms().count("time.join.ms"), 0u);
  EXPECT_EQ(a.histograms().at("pipeline.chain_length").count(), 1u);
  EXPECT_EQ(a.timings().count("pipeline.chain_length"), 0u);
}

TEST(Trace, AttachClosedNestsUnderTheOpenSpan) {
  Trace trace;
  {
    Span stage = trace.span("join");
    trace.attach_closed("join.shard0", 1.5);
    trace.attach_closed("join.shard1", 2.5);
  }
  trace.attach_closed("loose", 0.5);  // no open span -> child of the root

  const Trace::Node& root = trace.root();
  ASSERT_EQ(root.children.size(), 2u);
  const Trace::Node& join = *root.children[0];
  EXPECT_EQ(join.name, "join");
  ASSERT_EQ(join.children.size(), 2u);
  EXPECT_EQ(join.children[0]->name, "join.shard0");
  EXPECT_TRUE(join.children[0]->closed);
  EXPECT_DOUBLE_EQ(join.children[0]->wall_ms, 1.5);
  EXPECT_EQ(join.children[1]->name, "join.shard1");
  EXPECT_EQ(root.children[1]->name, "loose");
  EXPECT_TRUE(root.children[1]->closed);
}

}  // namespace
