// Unit tests for the execution layer under the sharded pipeline
// (DESIGN.md §10): thread resolution, the batch-barrier pool contract
// (every task runs, writes are visible after the barrier, lowest-index
// exception wins), and the exact chunk geometry of parallel_for_chunks.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "par/thread_pool.hpp"

namespace certchain::par {
namespace {

TEST(ResolveThreads, ZeroMeansHardwareAndIsAtLeastOne) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(6), 6u);
}

TEST(ThreadPool, RunsEveryTaskAndWritesAreVisibleAfterTheBarrier) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);

  constexpr std::size_t kTasks = 64;
  std::vector<int> slots(kTasks, 0);  // plain ints: the barrier must fence
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  pool.run_batch(std::move(tasks));

  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1) << "task " << i;
  }
}

TEST(ThreadPool, SurvivesBackToBackBatches) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back([&total] { ++total; });
    pool.run_batch(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPool, RethrowsTheLowestIndexException) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("task 1 failed"); });
  tasks.push_back([] { throw std::runtime_error("task 2 failed"); });
  std::atomic<bool> last_ran{false};
  tasks.push_back([&last_ran] { last_ran = true; });

  try {
    pool.run_batch(std::move(tasks));
    FAIL() << "expected the batch to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 1 failed");
  }
  // The barrier drains the whole batch before rethrowing — the failure must
  // not leave later tasks unscheduled or racing against unwound stack state.
  EXPECT_TRUE(last_ran.load());
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  pool.run_batch({});  // must not hang on the barrier
}

TEST(ParallelForChunks, ChunkGeometryIsExactAndCoversEveryIndex) {
  ThreadPool pool(3);
  for (const std::size_t total : {0u, 1u, 7u, 8u, 100u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 8u, 13u}) {
      std::vector<std::pair<std::size_t, std::size_t>> ranges(
          chunks, {std::size_t{1}, std::size_t{0}});
      std::atomic<std::size_t> calls{0};
      parallel_for_chunks(&pool, total, chunks,
                          [&](std::size_t chunk, std::size_t begin,
                              std::size_t end) {
                            ranges[chunk] = {begin, end};
                            ++calls;
                          });
      ASSERT_EQ(calls.load(), chunks) << total << "/" << chunks;
      // Contiguous cover of [0, total), in chunk-index order, empty chunks
      // included, sizes within one of each other.
      std::size_t cursor = 0;
      const std::size_t lo = total / chunks;
      for (std::size_t k = 0; k < chunks; ++k) {
        EXPECT_EQ(ranges[k].first, cursor) << total << "/" << chunks;
        EXPECT_GE(ranges[k].second, ranges[k].first);
        const std::size_t size = ranges[k].second - ranges[k].first;
        EXPECT_GE(size, lo) << total << "/" << chunks;
        EXPECT_LE(size, lo + 1) << total << "/" << chunks;
        cursor = ranges[k].second;
      }
      EXPECT_EQ(cursor, total) << total << "/" << chunks;
    }
  }
}

TEST(ParallelForChunks, NullPoolAndSingleChunkRunInlineInOrder)  {
  // With no pool the body must run on the calling thread, chunk 0 first —
  // observable via an order log no synchronization protects.
  std::vector<std::size_t> order;
  parallel_for_chunks(nullptr, 10, 4,
                      [&order](std::size_t chunk, std::size_t, std::size_t) {
                        order.push_back(chunk);
                      });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));

  ThreadPool pool(4);
  order.clear();
  parallel_for_chunks(&pool, 10, 1,
                      [&order](std::size_t chunk, std::size_t begin,
                               std::size_t end) {
                        order.push_back(chunk);
                        EXPECT_EQ(begin, 0u);
                        EXPECT_EQ(end, 10u);
                      });
  EXPECT_EQ(order, (std::vector<std::size_t>{0}));
}

TEST(ParallelForChunks, RethrowsByChunkIndex) {
  ThreadPool pool(4);
  try {
    parallel_for_chunks(&pool, 8, 4,
                        [](std::size_t chunk, std::size_t, std::size_t) {
                          if (chunk >= 1) {
                            throw std::runtime_error("chunk " +
                                                     std::to_string(chunk));
                          }
                        });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "chunk 1");
  }
}

}  // namespace
}  // namespace certchain::par
