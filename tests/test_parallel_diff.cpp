// Differential proof of the sharded pipeline (DESIGN.md §10): for every
// scenario and every worker count, the parallel path must reproduce the
// serial path **byte for byte** — rendered report text, every deterministic
// metric (counters, gauges, histogram contents), and a reconciling
// RunManifest with identical per-stage accounting. Wall times and the
// `par.threads` config entry are the only permitted differences.
//
// Scenarios cover the populations the paper's analysis hinges on (hybrid,
// TLS interception, DGA cluster), a second seed, a hand-built mini corpus
// with TLS 1.3 / incomplete-join / SNI-less hazards, and a deterministically
// fault-corrupted corpus driven through lenient ingestion — plus strict-mode
// failure equivalence (identical IngestError text at every thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "../tests/helpers.hpp"
#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "ct/ct_log.hpp"
#include "datagen/scenario.hpp"
#include "obs/manifest.hpp"
#include "obs/run_context.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"

namespace certchain {
namespace {

constexpr std::size_t kThreadCounts[] = {2, 4, 8};

void expect_same_histograms(
    const std::map<std::string, obs::FixedHistogram>& actual,
    const std::map<std::string, obs::FixedHistogram>& expected,
    std::size_t threads) {
  ASSERT_EQ(actual.size(), expected.size()) << threads << " threads";
  auto it = actual.begin();
  for (const auto& [name, reference] : expected) {
    ASSERT_EQ(it->first, name) << threads << " threads";
    const obs::FixedHistogram& histogram = it->second;
    EXPECT_EQ(histogram.count(), reference.count()) << name;
    EXPECT_DOUBLE_EQ(histogram.sum(), reference.sum()) << name;
    EXPECT_EQ(histogram.bucket_counts(), reference.bucket_counts()) << name;
    ++it;
  }
}

void expect_same_manifest(const obs::RunManifest& actual,
                          const obs::RunManifest& expected,
                          std::size_t threads) {
  EXPECT_TRUE(actual.reconciles()) << threads << " threads";
  ASSERT_EQ(actual.stages.size(), expected.stages.size()) << threads;
  for (std::size_t i = 0; i < expected.stages.size(); ++i) {
    EXPECT_EQ(actual.stages[i].name, expected.stages[i].name) << threads;
    EXPECT_EQ(actual.stages[i].records_in, expected.stages[i].records_in)
        << threads << " threads, stage " << expected.stages[i].name;
    EXPECT_EQ(actual.stages[i].admitted, expected.stages[i].admitted)
        << threads << " threads, stage " << expected.stages[i].name;
    EXPECT_EQ(actual.stages[i].dropped, expected.stages[i].dropped)
        << threads << " threads, stage " << expected.stages[i].name;
  }
}

/// The differential assertion: serial vs every thread count, raw-text path.
/// Returns the serial report so callers can assert scenario preconditions.
core::StudyReport expect_equivalent_from_text(
    const core::StudyPipeline& pipeline, std::string_view ssl_text,
    std::string_view x509_text, const core::IngestOptions& ingest = {}) {
  core::ReportTextOptions text_options;
  text_options.graphs = true;

  obs::RunContext serial_ctx;
  core::RunOptions serial_options;
  serial_options.ingest = ingest;
  serial_options.threads = 1;
  const core::StudyReport serial = pipeline.run(
      core::StudyInput::text(ssl_text, x509_text), serial_options, &serial_ctx);
  const std::string serial_text = render_report_text(serial, text_options);
  const obs::RunManifest serial_manifest = build_run_manifest(serial_ctx);

  for (const std::size_t threads : kThreadCounts) {
    obs::RunContext ctx;
    core::RunOptions options;
    options.ingest = ingest;
    options.threads = threads;
    const core::StudyReport report =
        pipeline.run(core::StudyInput::text(ssl_text, x509_text), options, &ctx);

    EXPECT_EQ(render_report_text(report, text_options), serial_text)
        << threads << " threads";
    EXPECT_EQ(ctx.metrics.counters(), serial_ctx.metrics.counters())
        << threads << " threads";
    EXPECT_EQ(ctx.metrics.gauges(), serial_ctx.metrics.gauges())
        << threads << " threads";
    expect_same_histograms(ctx.metrics.histograms(),
                           serial_ctx.metrics.histograms(), threads);
    expect_same_manifest(build_run_manifest(ctx), serial_manifest, threads);
  }
  return serial;
}

/// Same contract for the parsed-records entry point.
void expect_equivalent_from_records(const core::StudyPipeline& pipeline,
                                    const netsim::GeneratedLogs& logs) {
  core::ReportTextOptions text_options;
  text_options.graphs = true;

  obs::RunContext serial_ctx;
  const core::StudyReport serial =
      pipeline.run(core::StudyInput::records(logs), {}, &serial_ctx);
  const std::string serial_text = render_report_text(serial, text_options);

  for (const std::size_t threads : kThreadCounts) {
    obs::RunContext ctx;
    core::RunOptions options;
    options.threads = threads;
    const core::StudyReport report =
        pipeline.run(core::StudyInput::records(logs), options, &ctx);
    EXPECT_EQ(render_report_text(report, text_options), serial_text)
        << threads << " threads";
    EXPECT_EQ(ctx.metrics.counters(), serial_ctx.metrics.counters())
        << threads << " threads";
    expect_same_histograms(ctx.metrics.histograms(),
                           serial_ctx.metrics.histograms(), threads);
  }
}

/// Deterministic, seeded log-text corruption: garbage rows at line
/// boundaries, a stray wrong-layout header, and a truncated final line.
std::string corrupt(std::string text, std::uint64_t seed) {
  util::Rng rng(seed);
  for (int i = 0; i < 5; ++i) {
    const std::size_t at = text.find('\n', rng.next_below(text.size()));
    if (at == std::string::npos) continue;
    text.insert(at + 1, "garbage\trow\tnumber\t" + std::to_string(i) + "\n");
  }
  const std::size_t mid = text.find('\n', text.size() / 2);
  if (mid != std::string::npos) {
    text.insert(mid + 1, "#fields\tnot\tthe\texpected\tlayout\n");
  }
  text.resize(text.size() - std::min<std::size_t>(text.size(), 7));
  return text;
}

class ParallelDiffTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 20200901;
    config.chain_scale = 1.0 / 4000.0;
    config.total_connections = 4000;
    config.client_count = 300;
    config.include_length_outliers = false;
    scenario_ = datagen::build_study_scenario(config).release();
    logs_ = new netsim::GeneratedLogs(scenario_->generate_logs());

    zeek::SslLogWriter ssl_writer;
    for (const auto& record : logs_->ssl) ssl_writer.add(record);
    ssl_text_ = new std::string(ssl_writer.finish());
    zeek::X509LogWriter x509_writer;
    for (const auto& record : logs_->x509) x509_writer.add(record);
    x509_text_ = new std::string(x509_writer.finish());

    pipeline_ = new core::StudyPipeline(
        scenario_->world.stores(), scenario_->world.ct_logs(),
        scenario_->vendors, &scenario_->world.cross_signs());
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    delete x509_text_;
    delete ssl_text_;
    delete logs_;
    delete scenario_;
    pipeline_ = nullptr;
    x509_text_ = nullptr;
    ssl_text_ = nullptr;
    logs_ = nullptr;
    scenario_ = nullptr;
  }

  static datagen::Scenario* scenario_;
  static netsim::GeneratedLogs* logs_;
  static std::string* ssl_text_;
  static std::string* x509_text_;
  static core::StudyPipeline* pipeline_;
};

datagen::Scenario* ParallelDiffTest::scenario_ = nullptr;
netsim::GeneratedLogs* ParallelDiffTest::logs_ = nullptr;
std::string* ParallelDiffTest::ssl_text_ = nullptr;
std::string* ParallelDiffTest::x509_text_ = nullptr;
core::StudyPipeline* ParallelDiffTest::pipeline_ = nullptr;

TEST_F(ParallelDiffTest, StudyScenarioWithInterceptionHybridAndDga) {
  const core::StudyReport serial =
      expect_equivalent_from_text(*pipeline_, *ssl_text_, *x509_text_);
  // The scenario must actually exercise the populations the equivalence
  // claim is about — otherwise this diff proves less than it says.
  EXPECT_FALSE(serial.interception.findings.empty());
  EXPECT_GT(serial.categories.at(chain::ChainCategory::kHybrid).chains, 0u);
  EXPECT_GT(serial.non_public.dga_chains, 0u);
  EXPECT_GT(serial.totals.tls13_connections, 0u);
}

TEST_F(ParallelDiffTest, ParsedRecordsPathMatchesToo) {
  expect_equivalent_from_records(*pipeline_, *logs_);
}

TEST_F(ParallelDiffTest, FaultCorruptedCorpusUnderLenientIngest) {
  const std::string damaged_ssl = corrupt(*ssl_text_, 0xFA01);
  const std::string damaged_x509 = corrupt(*x509_text_, 0xFA02);
  const core::StudyReport serial =
      expect_equivalent_from_text(*pipeline_, damaged_ssl, damaged_x509);
  // The corruption must be visible in the accounting, and the sample errors
  // (absolute line numbers) must have survived the shard merge.
  EXPECT_GT(serial.ingest.skipped_total(), 0u);
  EXPECT_FALSE(serial.ingest.sample_errors.empty());
}

TEST_F(ParallelDiffTest, StrictModeFailsIdenticallyAtEveryThreadCount) {
  const std::string damaged_ssl = corrupt(*ssl_text_, 0xFA01);
  core::IngestOptions strict;
  strict.mode = core::IngestMode::kStrict;

  std::string serial_message;
  try {
    core::RunOptions options;
    options.ingest = strict;
    pipeline_->run(core::StudyInput::text(damaged_ssl, *x509_text_), options);
    FAIL() << "strict serial run accepted a damaged corpus";
  } catch (const core::IngestError& error) {
    serial_message = error.what();
  }
  ASSERT_FALSE(serial_message.empty());

  for (const std::size_t threads : kThreadCounts) {
    try {
      core::RunOptions options;
      options.ingest = strict;
      options.threads = threads;
      pipeline_->run(core::StudyInput::text(damaged_ssl, *x509_text_), options);
      FAIL() << "strict run accepted a damaged corpus at " << threads
             << " threads";
    } catch (const core::IngestError& error) {
      EXPECT_EQ(std::string(error.what()), serial_message)
          << threads << " threads";
    }
  }
}

TEST(ParallelDiffScenarios, SecondSeedScenario) {
  datagen::ScenarioConfig config;
  config.seed = 777;
  config.chain_scale = 1.0 / 8000.0;
  config.total_connections = 2500;
  config.client_count = 200;
  config.include_length_outliers = false;
  const auto scenario = datagen::build_study_scenario(config);
  const netsim::GeneratedLogs logs = scenario->generate_logs();

  zeek::SslLogWriter ssl_writer;
  for (const auto& record : logs.ssl) ssl_writer.add(record);
  zeek::X509LogWriter x509_writer;
  for (const auto& record : logs.x509) x509_writer.add(record);

  const core::StudyPipeline pipeline(
      scenario->world.stores(), scenario->world.ct_logs(), scenario->vendors,
      &scenario->world.cross_signs());
  expect_equivalent_from_text(pipeline, ssl_writer.finish(),
                              x509_writer.finish());
}

TEST(ParallelDiffScenarios, HandBuiltMiniCorpusWithJoinHazards) {
  certchain::testing::TestPki pki;
  const truststore::TrustStoreSet stores = pki.trusted_stores();
  const ct::CtLogSet ct_logs{2};
  const core::VendorDirectory vendors;
  const core::StudyPipeline pipeline(stores, ct_logs, vendors, nullptr);

  zeek::SslLogWriter ssl_writer;
  zeek::X509LogWriter x509_writer;
  std::set<std::string> seen_fuids;
  std::size_t uid = 0;
  const auto add = [&](const chain::CertificateChain& chain, bool established,
                       const std::string& sni, bool tls13 = false,
                       bool drop_leaf_record = false) {
    zeek::SslLogRecord ssl;
    ssl.ts = util::make_time(2021, 3, 1) + static_cast<util::SimTime>(uid);
    ssl.uid = util::zeek_style_conn_uid(uid++, 9);
    ssl.id_orig_h = "10.1.0." + std::to_string(uid % 10);
    ssl.id_resp_h = "198.51.100.40";
    ssl.id_resp_p = 443;
    ssl.version = tls13 ? "TLSv13" : "TLSv12";
    ssl.established = established;
    ssl.server_name = sni;
    if (!tls13) {
      for (std::size_t i = 0; i < chain.length(); ++i) {
        const auto& cert = chain.at(i);
        const std::string fuid = util::zeek_style_fuid(cert.fingerprint());
        ssl.cert_chain_fuids.push_back(fuid);
        // The leaf fuid is unique to this domain, so dropping its X509 row
        // guarantees a missing-fuid join (intermediates are shared between
        // chains and may already be registered).
        if (i == 0 && drop_leaf_record) continue;
        if (seen_fuids.insert(fuid).second) {
          x509_writer.add(zeek::record_from_certificate(cert, ssl.ts, fuid));
        }
      }
    }
    ssl_writer.add(ssl);
  };

  // Hybrid: public path + a private appendage.
  auto hybrid = pki.chain_for("hyb.example");
  hybrid.push_back(certchain::testing::self_signed("corp-extra"));
  add(hybrid, true, "hyb.example");
  add(hybrid, false, "hyb.example");
  // Interception-shaped: a lone self-signed middlebox certificate, SNI-less.
  add(certchain::testing::make_chain(
          {certchain::testing::self_signed("mitm-box")}),
      false, "");
  // Clean public chain, repeated from two clients.
  add(pki.chain_for("pub.example", true), true, "pub.example");
  add(pki.chain_for("pub.example", true), true, "pub.example");
  // TLS 1.3: certificates invisible.
  add(hybrid, true, "hidden.example", /*tls13=*/true);
  // Incomplete join: last fuid never gets an X509 row.
  add(pki.chain_for("partial.example"), true, "partial.example",
      /*tls13=*/false, /*drop_leaf_record=*/true);

  const core::StudyReport serial = expect_equivalent_from_text(
      pipeline, ssl_writer.finish(), x509_writer.finish());
  EXPECT_GT(serial.totals.tls13_connections, 0u);
  EXPECT_GT(serial.totals.incomplete_joins, 0u);
  EXPECT_GT(serial.categories.at(chain::ChainCategory::kHybrid).chains, 0u);
}

}  // namespace
}  // namespace certchain
