// StudyPipeline unit tests on tiny hand-crafted inputs (the full-corpus
// behaviour is covered by test_integration.cpp).
#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "core/pipeline.hpp"
#include "obs/manifest.hpp"
#include "obs/run_context.hpp"
#include "util/hash.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"

namespace certchain::core {
namespace {

using certchain::testing::TestPki;
using certchain::testing::make_chain;
using certchain::testing::self_signed;

class PipelineUnitTest : public ::testing::Test {
 protected:
  PipelineUnitTest()
      : stores_(pki_.trusted_stores()),
        pipeline_(stores_, ct_logs_, vendors_, nullptr) {}

  /// Appends one connection delivering `chain` to the log pair.
  void add_connection(const chain::CertificateChain& chain, bool established,
                      const std::string& sni, std::uint16_t port = 443) {
    zeek::SslLogRecord ssl;
    ssl.ts = util::make_time(2021, 1, 1) + static_cast<util::SimTime>(ssl_.size());
    ssl.uid = util::zeek_style_conn_uid(ssl_.size(), 9);
    ssl.id_orig_h = "10.0.0." + std::to_string(ssl_.size() % 250);
    ssl.id_resp_h = "198.51.100.9";
    ssl.id_resp_p = port;
    ssl.version = "TLSv12";
    ssl.established = established;
    ssl.server_name = sni;
    for (const auto& cert : chain) {
      const std::string fuid = util::zeek_style_fuid(cert.fingerprint());
      ssl.cert_chain_fuids.push_back(fuid);
      if (seen_fuids_.insert(fuid).second) {
        x509_.push_back(zeek::record_from_certificate(cert, ssl.ts, fuid));
      }
    }
    ssl_.push_back(std::move(ssl));
  }

  TestPki pki_;
  truststore::TrustStoreSet stores_;
  ct::CtLogSet ct_logs_{2};
  VendorDirectory vendors_;
  StudyPipeline pipeline_;
  std::vector<zeek::SslLogRecord> ssl_;
  std::vector<zeek::X509LogRecord> x509_;
  std::set<std::string> seen_fuids_;
};

TEST_F(PipelineUnitTest, EmptyInputsProduceEmptyReport) {
  const StudyReport report = pipeline_.run(StudyInput::records(ssl_, x509_));
  EXPECT_EQ(report.unique_chains, 0u);
  EXPECT_EQ(report.totals.connections, 0u);
  EXPECT_TRUE(report.categories.empty());
  EXPECT_TRUE(report.hybrid.records.empty());
}

TEST_F(PipelineUnitTest, CategorizesMixedMiniCorpus) {
  add_connection(pki_.chain_for("pub.example"), true, "pub.example");
  add_connection(make_chain({self_signed("appliance")}), false, "");
  auto hybrid = pki_.chain_for("hyb.example");
  hybrid.push_back(self_signed("corp-extra"));
  add_connection(hybrid, true, "hyb.example");
  add_connection(hybrid, false, "hyb.example");  // same chain again

  const StudyReport report = pipeline_.run(StudyInput::records(ssl_, x509_));
  EXPECT_EQ(report.unique_chains, 3u);
  EXPECT_EQ(report.categories.at(chain::ChainCategory::kPublicDbOnly).chains, 1u);
  EXPECT_EQ(report.categories.at(chain::ChainCategory::kNonPublicDbOnly).chains, 1u);
  EXPECT_EQ(report.categories.at(chain::ChainCategory::kHybrid).chains, 1u);
  EXPECT_EQ(report.categories.at(chain::ChainCategory::kHybrid).connections, 2u);
  EXPECT_EQ(report.hybrid.contains_complete_path, 1u);
  EXPECT_EQ(report.hybrid.usage_contains.established, 1u);
}

TEST_F(PipelineUnitTest, OutlierRuleNeedsBothLengthAndSingleObservation) {
  // A long chain observed twice is NOT excluded; a long chain observed once is.
  std::vector<x509::Certificate> long_certs;
  for (int i = 0; i < 35; ++i) {
    long_certs.push_back(self_signed("junk-" + std::to_string(i)));
  }
  const auto long_chain = make_chain(long_certs);
  add_connection(long_chain, false, "");
  add_connection(long_chain, false, "");  // second observation

  std::vector<x509::Certificate> outlier_certs;
  for (int i = 0; i < 40; ++i) {
    outlier_certs.push_back(self_signed("outlier-" + std::to_string(i)));
  }
  add_connection(make_chain(outlier_certs), false, "");

  const StudyReport report = pipeline_.run(StudyInput::records(ssl_, x509_));
  ASSERT_EQ(report.excluded_outliers.size(), 1u);
  EXPECT_EQ(report.excluded_outliers[0].length, 40u);
  // The twice-observed long chain stays in the Figure 1 series.
  const auto& lengths =
      report.chain_lengths.at(chain::ChainCategory::kNonPublicDbOnly);
  EXPECT_NE(std::find(lengths.begin(), lengths.end(), 35u), lengths.end());
  EXPECT_EQ(std::find(lengths.begin(), lengths.end(), 40u), lengths.end());
}

TEST_F(PipelineUnitTest, InterceptionSliceUsesDetectorOutput) {
  // Genuine cert in CT; forged chain from a directory-known vendor.
  const x509::Certificate genuine = pki_.leaf("site.example");
  ct_logs_.log(0).submit(genuine, 1);
  x509::CertificateAuthority middlebox(
      x509::DistinguishedName::parse_or_die("CN=Proxy SSL CA,O=ProxyCo"), "proxyco");
  vendors_[middlebox.name().canonical()] =
      VendorInfo{"ProxyCo", "Security & Network"};

  x509::DistinguishedName subject;
  subject.add("CN", "site.example");
  const auto forged = make_chain({middlebox.issue_leaf(
      subject, "site.example", certchain::testing::test_validity())});
  add_connection(forged, true, "site.example", 8013);

  const StudyReport report = pipeline_.run(StudyInput::records(ssl_, x509_));
  EXPECT_EQ(report.categories.at(chain::ChainCategory::kTlsInterception).chains, 1u);
  EXPECT_EQ(report.interception.findings.size(), 1u);
  EXPECT_EQ(report.interception_chains.chains, 1u);
  EXPECT_EQ(report.interception_chains.ports_single.count(8013), 1u);
}

TEST_F(PipelineUnitTest, RunFromTextEqualsRunFromRecords) {
  add_connection(pki_.chain_for("text.example"), true, "text.example");
  add_connection(make_chain({self_signed("loner")}), false, "");

  zeek::SslLogWriter ssl_writer;
  for (const auto& record : ssl_) ssl_writer.add(record);
  zeek::X509LogWriter x509_writer;
  for (const auto& record : x509_) x509_writer.add(record);

  const StudyReport from_records = pipeline_.run(StudyInput::records(ssl_, x509_));
  const std::string ssl_text = ssl_writer.finish();
  const std::string x509_text = x509_writer.finish();
  const StudyReport from_text =
      pipeline_.run(StudyInput::text(ssl_text, x509_text));
  EXPECT_EQ(from_text.unique_chains, from_records.unique_chains);
  EXPECT_EQ(from_text.totals.connections, from_records.totals.connections);
  EXPECT_EQ(from_text.totals.distinct_certificates,
            from_records.totals.distinct_certificates);
}

TEST_F(PipelineUnitTest, TelemetryManifestReconcilesWithReport) {
  add_connection(pki_.chain_for("pub.example"), true, "pub.example");
  add_connection(make_chain({self_signed("appliance")}), false, "");
  auto hybrid = pki_.chain_for("hyb.example");
  hybrid.push_back(self_signed("corp-extra"));
  add_connection(hybrid, true, "hyb.example");
  // One connection whose chain never arrives: an incomplete join.
  zeek::SslLogRecord dangling;
  dangling.ts = util::make_time(2021, 3, 1);
  dangling.uid = "Cdangling000000001";
  dangling.id_orig_h = "10.0.0.7";
  dangling.id_resp_h = "198.51.100.9";
  dangling.id_resp_p = 443;
  dangling.version = "TLSv12";
  dangling.cert_chain_fuids = {"FnEverSeen0000001"};
  ssl_.push_back(dangling);

  obs::RunContext telemetry;
  const StudyReport report =
      pipeline_.run(StudyInput::records(ssl_, x509_), {}, &telemetry);

  // Every stage triple reconciles, and the join stage matches the report's
  // own totals exactly — one accounting, two views.
  const obs::RunManifest manifest = obs::build_run_manifest(telemetry);
  EXPECT_TRUE(manifest.reconciles());
  const obs::StageManifest* join = manifest.stage("join");
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->records_in, report.totals.connections);
  EXPECT_EQ(join->admitted, report.totals.with_certificates);
  EXPECT_EQ(join->records_in - join->admitted,
            report.totals.connections - report.totals.with_certificates);

  const auto& counters = telemetry.metrics;
  EXPECT_EQ(counters.counter("pipeline.connections"), report.totals.connections);
  EXPECT_EQ(counters.counter("pipeline.unique_chains"), report.unique_chains);
  EXPECT_EQ(counters.counter("pipeline.connections.incomplete_joins"),
            report.totals.incomplete_joins);

  // Per-category chain counters sum back to the unique-chain total.
  std::uint64_t categorized = 0;
  for (const auto& [name, value] : counters.counters()) {
    if (name.rfind("categorize.chains.", 0) == 0) categorized += value;
  }
  EXPECT_EQ(categorized, report.unique_chains);

  // figure1 drops are exactly the excluded outliers (none in this corpus).
  const obs::StageManifest* figure1 = manifest.stage("figure1");
  ASSERT_NE(figure1, nullptr);
  EXPECT_EQ(figure1->dropped, report.excluded_outliers.size());

  // The chain-length histogram saw every unique chain.
  EXPECT_EQ(counters.histograms().at("pipeline.chain_length").count(),
            report.unique_chains);
}

TEST_F(PipelineUnitTest, RunFromTextPublishesIngestCountersMatchingReport) {
  add_connection(pki_.chain_for("counted.example"), true, "counted.example");
  zeek::SslLogWriter ssl_writer;
  for (const auto& record : ssl_) ssl_writer.add(record);
  zeek::X509LogWriter x509_writer;
  for (const auto& record : x509_) x509_writer.add(record);
  const std::string ssl_text = ssl_writer.finish();
  // Damage one stream: a truncated row (inside the body, before #close) that
  // the lenient reader must count as malformed and skip.
  std::string x509_text = x509_writer.finish();
  const std::size_t close_at = x509_text.rfind("#close");
  ASSERT_NE(close_at, std::string::npos);
  x509_text.insert(close_at, "not\ta\tvalid\trow\n");

  obs::RunContext telemetry;
  const StudyReport report =
      pipeline_.run(StudyInput::text(ssl_text, x509_text), {}, &telemetry);

  // The report's ingest section and the registry counters are the same
  // numbers — the report is filled FROM the counters, so they cannot drift.
  const auto& metrics = telemetry.metrics;
  EXPECT_EQ(metrics.counter("ingest.ssl.records"), report.ingest.ssl.records);
  EXPECT_EQ(metrics.counter("ingest.ssl.lines"), report.ingest.ssl.lines);
  EXPECT_EQ(metrics.counter("ingest.ssl.bytes_consumed"), report.ingest.ssl.bytes);
  EXPECT_EQ(report.ingest.ssl.bytes, ssl_text.size());
  EXPECT_EQ(metrics.counter("ingest.x509.records"), report.ingest.x509.records);
  EXPECT_EQ(metrics.counter("ingest.x509.rows_malformed"),
            report.ingest.x509.malformed_rows);
  EXPECT_EQ(report.ingest.x509.malformed_rows, 1u);
  EXPECT_EQ(report.ingest.x509.bytes, x509_text.size());

  // The ingest stage triple reconciles: data rows in = records + skipped.
  const obs::RunManifest manifest = obs::build_run_manifest(telemetry);
  const obs::StageManifest* ingest = manifest.stage("ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_TRUE(ingest->reconciles());
  EXPECT_EQ(ingest->admitted,
            report.ingest.ssl.records + report.ingest.x509.records);
  EXPECT_EQ(ingest->dropped, report.ingest.skipped_total());
}

TEST_F(PipelineUnitTest, Tls13ConnectionsCountedButNotCategorized) {
  zeek::SslLogRecord tls13;
  tls13.ts = util::make_time(2021, 2, 1);
  tls13.uid = "Ctls13aaaaaaaaaaaa";
  tls13.id_orig_h = "10.0.0.1";
  tls13.id_resp_h = "198.51.100.9";
  tls13.id_resp_p = 443;
  tls13.version = "TLSv13";
  tls13.established = true;
  ssl_.push_back(tls13);

  const StudyReport report = pipeline_.run(StudyInput::records(ssl_, x509_));
  EXPECT_EQ(report.totals.connections, 1u);
  EXPECT_EQ(report.totals.tls13_connections, 1u);
  EXPECT_EQ(report.unique_chains, 0u);
}

}  // namespace
}  // namespace certchain::core
