// Property-based tests: invariants over randomized inputs, seeded and
// parameterized so failures are reproducible.
#include <gtest/gtest.h>

#include <set>

#include "../tests/helpers.hpp"
#include "chain/matcher.hpp"
#include "core/pipeline.hpp"
#include "obs/manifest.hpp"
#include "obs/run_context.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "x509/pem.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"

namespace certchain {
namespace {

using certchain::testing::test_validity;

// --- random generators -----------------------------------------------------

std::string random_dn_value(util::Rng& rng) {
  static constexpr char kPool[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,+\"\\<>;=#.";
  const std::size_t length = 1 + rng.next_below(24);
  std::string out;
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kPool[rng.next_below(sizeof(kPool) - 1)]);
  }
  return out;
}

x509::DistinguishedName random_dn(util::Rng& rng) {
  static const char* kTypes[] = {"CN", "O", "OU", "C", "ST", "L", "emailAddress"};
  x509::DistinguishedName name;
  const std::size_t rdn_count = 1 + rng.next_below(5);
  for (std::size_t i = 0; i < rdn_count; ++i) {
    name.add(kTypes[rng.next_below(std::size(kTypes))], random_dn_value(rng));
  }
  return name;
}

x509::Certificate random_certificate(util::Rng& rng) {
  const auto keys = crypto::generate_keypair(
      static_cast<crypto::KeyAlgorithm>(rng.next_below(5)),
      "prop/" + std::to_string(rng.next_u64()));
  x509::CertificateBuilder builder;
  builder.serial(rng.hex_string(1 + rng.next_below(20)))
      .subject(random_dn(rng))
      .issuer(random_dn(rng))
      .validity({static_cast<util::SimTime>(rng.next_below(1u << 30)),
                 static_cast<util::SimTime>((1u << 30) + rng.next_below(1u << 30))})
      .public_key(keys.public_key);
  if (rng.bernoulli(0.5)) {
    builder.ca(rng.bernoulli(0.5),
               rng.bernoulli(0.3) ? std::optional<int>(int(rng.next_below(4)))
                                  : std::nullopt);
  } else {
    builder.no_basic_constraints();
  }
  const std::size_t san_count = rng.next_below(3);
  for (std::size_t i = 0; i < san_count; ++i) {
    builder.add_san(rng.alpha_string(8) + ".example");
  }
  if (rng.bernoulli(0.2)) {
    builder.add_sct({rng.hex_string(16), static_cast<util::SimTime>(rng.next_below(1u << 30))});
  }
  if (rng.bernoulli(0.1)) builder.malformed_encoding(true);
  x509::Certificate cert = builder.sign_with(keys.private_key);
  if (rng.bernoulli(0.1)) cert.public_key.malformed = true;
  return cert;
}

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

// --- DN round-trip property -----------------------------------------------------

TEST_P(PropertyTest, DnSerializeParseRoundTrips) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const x509::DistinguishedName original = random_dn(rng);
    const std::string serialized = original.to_string();
    const auto parsed = x509::DistinguishedName::parse(serialized);
    ASSERT_TRUE(parsed.has_value()) << serialized;
    EXPECT_EQ(*parsed, original) << serialized;
    // Canonical form is stable across a round trip.
    EXPECT_EQ(parsed->canonical(), original.canonical());
  }
}

// --- PEM round-trip property ------------------------------------------------------

TEST_P(PropertyTest, PemRoundTripsArbitraryCertificates) {
  util::Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 60; ++i) {
    const x509::Certificate original = random_certificate(rng);
    const auto decoded = x509::decode_pem(x509::encode_pem(original));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, original);
    EXPECT_EQ(decoded->fingerprint(), original.fingerprint());
  }
}

// --- matcher invariants -------------------------------------------------------------

chain::CertificateChain random_chain(util::Rng& rng, std::size_t max_length) {
  const std::size_t length = 1 + rng.next_below(max_length);
  std::vector<x509::Certificate> certs;
  certchain::testing::TestPki pki;
  for (std::size_t i = 0; i < length; ++i) {
    switch (rng.next_below(4)) {
      case 0: certs.push_back(random_certificate(rng)); break;
      case 1: certs.push_back(pki.leaf(rng.alpha_string(6) + ".example")); break;
      case 2: certs.push_back(pki.intermediate_cert); break;
      default: certs.push_back(pki.root_cert); break;
    }
  }
  return chain::CertificateChain(std::move(certs));
}

TEST_P(PropertyTest, PathAnalysisInvariants) {
  util::Rng rng(GetParam() ^ 0xCAFE);
  for (int i = 0; i < 150; ++i) {
    const chain::CertificateChain chain = random_chain(rng, 8);
    for (const bool require_leaf : {true, false}) {
      const chain::PathAnalysis analysis =
          chain::analyze_paths(chain, nullptr, require_leaf);

      // Invariant 1: mismatch ratio bounded.
      const double ratio = analysis.match.mismatch_ratio();
      EXPECT_GE(ratio, 0.0);
      EXPECT_LE(ratio, 1.0);

      // Invariant 2: pair count is length-1.
      EXPECT_EQ(analysis.match.pairs.size(), chain.length() - 1);

      // Invariant 3: runs partition the chain contiguously in order.
      std::size_t cursor = 0;
      for (const chain::MatchedRun& run : analysis.runs) {
        EXPECT_EQ(run.begin, cursor);
        EXPECT_LE(run.begin, run.end);
        cursor = run.end + 1;
      }
      EXPECT_EQ(cursor, chain.length());

      // Invariant 4: runs break exactly at mismatched pairs.
      for (const chain::PairMatch& pair : analysis.match.pairs) {
        bool boundary = false;
        for (const chain::MatchedRun& run : analysis.runs) {
          if (run.end == pair.index) boundary = true;
        }
        EXPECT_EQ(boundary, !pair.matched) << "pair " << pair.index;
      }

      // Invariant 5: the complete path is one of the runs, spans >= 2 certs,
      // and unnecessary certificates are exactly its complement.
      if (analysis.complete_path) {
        EXPECT_GE(analysis.complete_path->cert_count(), 2u);
        bool is_a_run = false;
        for (const chain::MatchedRun& run : analysis.runs) {
          if (run == *analysis.complete_path) is_a_run = true;
        }
        EXPECT_TRUE(is_a_run);
        std::set<std::size_t> outside(analysis.unnecessary_certificates.begin(),
                                      analysis.unnecessary_certificates.end());
        for (std::size_t index = 0; index < chain.length(); ++index) {
          const bool inside = index >= analysis.complete_path->begin &&
                              index <= analysis.complete_path->end;
          EXPECT_NE(inside, outside.contains(index)) << index;
        }
      } else {
        EXPECT_TRUE(analysis.unnecessary_certificates.empty());
      }

      // Invariant 6: hybrid-mode complete paths are a subset of the
      // no-leaf-test mode's (relaxing the test can only help).
      if (require_leaf) {
        const chain::PathAnalysis relaxed =
            chain::analyze_paths(chain, nullptr, false);
        if (analysis.complete_path) {
          EXPECT_TRUE(relaxed.complete_path.has_value());
        }
      }
    }
  }
}

TEST_P(PropertyTest, MatcherAgreesWithPairwiseDefinition) {
  util::Rng rng(GetParam() ^ 0xD00D);
  for (int i = 0; i < 100; ++i) {
    const chain::CertificateChain chain = random_chain(rng, 6);
    const chain::MatchResult result = chain::match_chain(chain);
    for (const chain::PairMatch& pair : result.pairs) {
      const bool expected =
          chain.at(pair.index).issuer.matches(chain.at(pair.index + 1).subject);
      EXPECT_EQ(pair.matched, expected) << "pair " << pair.index;
      EXPECT_FALSE(pair.via_cross_sign);  // no registry supplied
    }
  }
}

// --- chain id properties --------------------------------------------------------------

TEST_P(PropertyTest, ChainIdIsInjectiveOnContent) {
  util::Rng rng(GetParam() ^ 0xF00D);
  std::map<std::string, std::string> seen;  // id -> debug
  for (int i = 0; i < 100; ++i) {
    const chain::CertificateChain chain = random_chain(rng, 5);
    std::string content;
    for (const auto& cert : chain) content += cert.fingerprint() + "|";
    const auto [it, inserted] = seen.emplace(chain.id(), content);
    if (!inserted) {
      EXPECT_EQ(it->second, content);  // same id => same content
    }
  }
}

// --- sharded-pipeline accounting invariance ---------------------------------

/// Whatever the corpus and whatever the damage, the shard count is an
/// execution detail: the RunManifest's per-stage in/admitted/dropped totals
/// must be exactly the serial run's for every worker count.
TEST_P(PropertyTest, ShardCountNeverChangesManifestAccounting) {
  util::Rng rng(GetParam() ^ 0x5EED);
  certchain::testing::TestPki pki;
  const truststore::TrustStoreSet stores = pki.trusted_stores();
  const ct::CtLogSet ct_logs{2};
  const core::VendorDirectory vendors;
  const core::StudyPipeline pipeline(stores, ct_logs, vendors, nullptr);

  // A random mini corpus: mixed chain shapes, some SNI-less, repeated chains.
  zeek::SslLogWriter ssl_writer;
  zeek::X509LogWriter x509_writer;
  std::set<std::string> seen_fuids;
  std::vector<chain::CertificateChain> pool;
  const std::size_t distinct = 2 + rng.next_below(4);
  for (std::size_t i = 0; i < distinct; ++i) {
    if (rng.bernoulli(0.3)) {
      pool.push_back(certchain::testing::make_chain(
          {certchain::testing::self_signed("box-" + std::to_string(i))}));
    } else {
      auto chain = pki.chain_for(rng.alpha_string(6) + ".example",
                                 rng.bernoulli(0.5));
      if (rng.bernoulli(0.3)) {
        chain.push_back(certchain::testing::self_signed("extra"));
      }
      pool.push_back(std::move(chain));
    }
  }
  const std::size_t connections = 5 + rng.next_below(20);
  for (std::size_t i = 0; i < connections; ++i) {
    const chain::CertificateChain& chain = pool[rng.next_below(pool.size())];
    zeek::SslLogRecord ssl;
    ssl.ts = util::make_time(2021, 1, 1) + static_cast<util::SimTime>(i);
    ssl.uid = util::zeek_style_conn_uid(i, 9);
    ssl.id_orig_h = "10.0.0." + std::to_string(rng.next_below(12));
    ssl.id_resp_h = "198.51.100.7";
    ssl.id_resp_p = 443;
    ssl.version = rng.bernoulli(0.2) ? "TLSv13" : "TLSv12";
    ssl.established = rng.bernoulli(0.8);
    if (rng.bernoulli(0.7)) ssl.server_name = rng.alpha_string(5) + ".example";
    if (!(ssl.version == "TLSv13")) {
      for (const auto& cert : chain) {
        const std::string fuid = util::zeek_style_fuid(cert.fingerprint());
        ssl.cert_chain_fuids.push_back(fuid);
        if (seen_fuids.insert(fuid).second) {
          x509_writer.add(zeek::record_from_certificate(cert, ssl.ts, fuid));
        }
      }
    }
    ssl_writer.add(ssl);
  }
  std::string ssl_text = ssl_writer.finish();
  std::string x509_text = x509_writer.finish();

  // Random line-aligned damage in both streams.
  const auto damage = [&rng](std::string& text) {
    const std::size_t lines = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < lines; ++i) {
      const std::size_t at = text.find('\n', rng.next_below(text.size()));
      if (at == std::string::npos) continue;
      text.insert(at + 1, "damaged\trow\n");
    }
  };
  damage(ssl_text);
  damage(x509_text);

  const auto run_with = [&](std::size_t threads) {
    obs::RunContext telemetry;
    core::RunOptions options;
    options.threads = threads;
    pipeline.run(core::StudyInput::text(ssl_text, x509_text), options, &telemetry);
    return obs::build_run_manifest(telemetry);
  };

  const obs::RunManifest serial = run_with(1);
  EXPECT_TRUE(serial.reconciles());
  for (const std::size_t threads : {2u, 3u, 8u}) {
    const obs::RunManifest sharded = run_with(threads);
    EXPECT_TRUE(sharded.reconciles()) << threads << " threads";
    ASSERT_EQ(sharded.stages.size(), serial.stages.size()) << threads;
    for (std::size_t i = 0; i < serial.stages.size(); ++i) {
      EXPECT_EQ(sharded.stages[i].name, serial.stages[i].name) << threads;
      EXPECT_EQ(sharded.stages[i].records_in, serial.stages[i].records_in)
          << threads << " threads, stage " << serial.stages[i].name;
      EXPECT_EQ(sharded.stages[i].admitted, serial.stages[i].admitted)
          << threads << " threads, stage " << serial.stages[i].name;
      EXPECT_EQ(sharded.stages[i].dropped, serial.stages[i].dropped)
          << threads << " threads, stage " << serial.stages[i].name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace certchain
