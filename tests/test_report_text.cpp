// StudyReport text rendering.
#include "core/report_text.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "util/hash.hpp"
#include "zeek/joiner.hpp"

namespace certchain::core {
namespace {

using certchain::testing::TestPki;
using certchain::testing::make_chain;
using certchain::testing::self_signed;

StudyReport tiny_report(TestPki& pki) {
  const truststore::TrustStoreSet stores = pki.trusted_stores();
  static ct::CtLogSet ct_logs(2);
  static VendorDirectory vendors;
  const StudyPipeline pipeline(stores, ct_logs, vendors, nullptr);

  std::vector<zeek::SslLogRecord> ssl;
  std::vector<zeek::X509LogRecord> x509;
  const auto add = [&](const chain::CertificateChain& chain, bool established) {
    zeek::SslLogRecord record;
    record.ts = 1600000000 + static_cast<util::SimTime>(ssl.size());
    record.uid = util::zeek_style_conn_uid(ssl.size(), 4);
    record.id_orig_h = "10.0.0.1";
    record.id_resp_h = "198.51.100.4";
    record.id_resp_p = 443;
    record.version = "TLSv12";
    record.established = established;
    for (const auto& cert : chain) {
      const std::string fuid = util::zeek_style_fuid(cert.fingerprint());
      record.cert_chain_fuids.push_back(fuid);
      x509.push_back(zeek::record_from_certificate(cert, record.ts, fuid));
    }
    ssl.push_back(std::move(record));
  };
  add(pki.chain_for("r1.example"), true);
  auto hybrid = pki.chain_for("r2.example");
  hybrid.push_back(self_signed("extra"));
  add(hybrid, false);
  add(make_chain({self_signed("lonely")}), true);
  return pipeline.run(StudyInput::records(ssl, x509));
}

TEST(ReportText, AllSectionsRender) {
  TestPki pki;
  const StudyReport report = tiny_report(pki);
  ReportTextOptions options;
  options.graphs = true;
  const std::string text = render_report_text(report, options);
  EXPECT_NE(text.find("== Corpus =="), std::string::npos);
  EXPECT_NE(text.find("Chain categories"), std::string::npos);
  EXPECT_NE(text.find("TLS interception"), std::string::npos);
  EXPECT_NE(text.find("Hybrid chain structures"), std::string::npos);
  EXPECT_NE(text.find("Non-public-DB-only"), std::string::npos);
  EXPECT_NE(text.find("CT compliance by issuer category"), std::string::npos);
  EXPECT_NE(text.find("PKI graphs"), std::string::npos);
  EXPECT_NE(text.find("unique chains: 3"), std::string::npos);
  EXPECT_NE(text.find("Public-DB-only"), std::string::npos);
}

TEST(ReportText, SectionsAreToggleable) {
  TestPki pki;
  const StudyReport report = tiny_report(pki);
  ReportTextOptions options;
  options.totals = false;
  options.interception = false;
  options.hybrid = false;
  options.non_public = false;
  const std::string text = render_report_text(report, options);
  EXPECT_EQ(text.find("== Corpus =="), std::string::npos);
  EXPECT_EQ(text.find("TLS interception"), std::string::npos);
  EXPECT_NE(text.find("Chain categories"), std::string::npos);
}

TEST(ReportText, EmptyReportRendersSafely) {
  const StudyReport report;
  const std::string text = render_report_text(report);
  EXPECT_NE(text.find("unique chains: 0"), std::string::npos);
}

}  // namespace
}  // namespace certchain::core
