// Fault injection + resilient scanning + graceful ingestion degradation.
//
// Covers the determinism contract (same FaultPlan seed + retry config =>
// byte-identical ledgers and results; zero faults => identical to
// ActiveScanner), salvage of truncated/corrupted bundles, the revisit
// analyzer's scan-health accounting, and strict-vs-lenient pipeline
// ingestion.
#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "core/revisit.hpp"
#include "netsim/faults.hpp"
#include "netsim/pki_world.hpp"
#include "obs/metrics.hpp"
#include "scanner/resilient_scanner.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"
#include "zeek/log_io.hpp"
#include "zeek/log_stream.hpp"

namespace certchain {
namespace {

using netsim::FaultKind;
using netsim::FaultPlan;
using netsim::FaultRates;
using netsim::PkiWorld;
using netsim::ServerEndpoint;
using scanner::ActiveScanner;
using scanner::ResilientScanner;
using scanner::ResilientScanResult;
using scanner::RetryPolicy;
using scanner::ScanError;
using scanner::ScanLedger;

/// A small revisit population: `alive` 3-cert servers, a couple of dead
/// ones, and one IP-only service.
class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto validity = PkiWorld::default_leaf_validity();
    for (int i = 0; i < 12; ++i) {
      ServerEndpoint endpoint;
      endpoint.ip = "198.51.100." + std::to_string(10 + i);
      endpoint.port = 443;
      endpoint.domain = "srv" + std::to_string(i) + ".example";
      endpoint.chain = world_.issue_public_chain("digicert", endpoint.domain,
                                                 validity, true);
      endpoint.revisit_chain = world_.issue_public_chain(
          "lets-encrypt", endpoint.domain,
          {util::make_time(2024, 10, 1), util::make_time(2025, 1, 1)}, true);
      endpoints_.push_back(std::move(endpoint));
    }
    // Two servers gone by the revisit epoch.
    for (int i = 0; i < 2; ++i) {
      ServerEndpoint gone;
      gone.ip = "198.51.100." + std::to_string(40 + i);
      gone.domain = "gone" + std::to_string(i) + ".example";
      gone.chain = world_.issue_public_chain("digicert", gone.domain, validity);
      gone.revisit_chain = std::nullopt;
      endpoints_.push_back(std::move(gone));
    }
    // One IP-only service.
    ServerEndpoint unnamed;
    unnamed.ip = "198.51.100.60";
    unnamed.port = 8443;
    unnamed.chain = world_.issue_public_chain("godaddy", "ipsvc.example", validity);
    unnamed.revisit_chain = unnamed.chain;
    endpoints_.push_back(std::move(unnamed));
  }

  PkiWorld world_;
  std::vector<ServerEndpoint> endpoints_;
};

TEST_F(ResilienceTest, ZeroFaultPlanMatchesActiveScanner) {
  const ActiveScanner inner(endpoints_);
  const FaultPlan no_faults;  // default: injects nothing
  ResilientScanner resilient(inner, no_faults);

  const auto pristine = inner.scan_all_ips();
  const auto observed = resilient.scan_all_ips();
  ASSERT_EQ(pristine.size(), observed.size());
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    EXPECT_EQ(observed[i].scan.reachable, pristine[i].reachable);
    EXPECT_EQ(observed[i].scan.target, pristine[i].target);
    EXPECT_EQ(observed[i].scan.pem_bundle, pristine[i].pem_bundle);
    EXPECT_EQ(observed[i].scan.chain, pristine[i].chain);
    EXPECT_FALSE(observed[i].degraded);
  }

  const ScanLedger& ledger = resilient.ledger();
  EXPECT_TRUE(ledger.reconciles());
  EXPECT_EQ(ledger.salvaged, 0u);
  EXPECT_EQ(ledger.targets, pristine.size());
  // Reachable targets succeed on attempt one; dead ones exhaust the budget.
  std::size_t dead = 0;
  for (const auto& result : pristine) {
    if (!result.reachable) ++dead;
  }
  EXPECT_EQ(ledger.failures, dead);
  EXPECT_EQ(ledger.successes, pristine.size() - dead);
}

TEST_F(ResilienceTest, SameSeedProducesByteIdenticalLedgers) {
  const ActiveScanner inner(endpoints_);
  const FaultPlan plan_a(0xFA01, FaultRates::uniform(0.15));
  const FaultPlan plan_b(0xFA01, FaultRates::uniform(0.15));

  ResilientScanner first(inner, plan_a);
  ResilientScanner second(inner, plan_b);
  const auto results_a = first.scan_all_ips();
  const auto results_b = second.scan_all_ips();

  EXPECT_EQ(first.ledger().to_string(), second.ledger().to_string());
  ASSERT_EQ(results_a.size(), results_b.size());
  for (std::size_t i = 0; i < results_a.size(); ++i) {
    EXPECT_EQ(results_a[i].scan.pem_bundle, results_b[i].scan.pem_bundle);
    EXPECT_EQ(results_a[i].scan.chain, results_b[i].scan.chain);
    EXPECT_EQ(results_a[i].attempts, results_b[i].attempts);
    EXPECT_EQ(results_a[i].elapsed_ms, results_b[i].elapsed_ms);
    EXPECT_EQ(results_a[i].error, results_b[i].error);
    EXPECT_EQ(results_a[i].degraded, results_b[i].degraded);
  }

  // A different seed must change *some* outcome (schedule actually seeded).
  const FaultPlan plan_c(0x0DD5EED, FaultRates::uniform(0.15));
  ResilientScanner third(inner, plan_c);
  (void)third.scan_all_ips();
  EXPECT_NE(first.ledger().to_string(), third.ledger().to_string());
}

TEST_F(ResilienceTest, PersistentUnreachabilityExhaustsTheAttemptBudget) {
  const ActiveScanner inner(endpoints_);
  FaultRates rates;
  rates.persistent_unreachable = 1.0;
  const FaultPlan plan(7, rates);
  RetryPolicy policy;
  policy.max_attempts = 3;
  ResilientScanner resilient(inner, plan, policy);

  const ResilientScanResult result = resilient.scan_domain("srv0.example");
  EXPECT_FALSE(result.scan.reachable);
  EXPECT_EQ(result.error, ScanError::kUnreachable);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_EQ(resilient.ledger().failures, 1u);
  EXPECT_GT(resilient.ledger().backoff_ms_total, 0u);
}

TEST_F(ResilienceTest, TruncatedBundlesSalvageThePrefixChain) {
  const ActiveScanner inner(endpoints_);
  FaultRates rates;
  rates.truncated_handshake = 1.0;
  const FaultPlan plan(0x7121C, rates);
  ResilientScanner resilient(inner, plan);

  std::size_t salvaged_results = 0;
  for (const auto& endpoint : endpoints_) {
    if (endpoint.domain.empty() || !endpoint.revisit_chain.has_value()) continue;
    const auto pristine = inner.scan_domain(endpoint.domain, endpoint.port);
    const auto result = resilient.scan_domain(endpoint.domain, endpoint.port);
    if (!result.scan.reachable) {
      // Every attempt truncated inside the first PEM block: nothing usable.
      EXPECT_EQ(result.error, ScanError::kTruncatedBundle);
      continue;
    }
    ++salvaged_results;
    EXPECT_TRUE(result.degraded);
    EXPECT_EQ(result.error, ScanError::kTruncatedBundle);
    // The salvaged chain is a strict prefix of the pristine chain.
    ASSERT_LE(result.scan.chain.length(), pristine.chain.length());
    for (std::size_t i = 0; i < result.scan.chain.length(); ++i) {
      EXPECT_EQ(result.scan.chain.at(i), pristine.chain.at(i));
    }
    EXPECT_EQ(result.salvaged_certs, result.scan.chain.length());
  }
  EXPECT_GT(salvaged_results, 0u);
  EXPECT_EQ(resilient.ledger().salvaged, salvaged_results);
  EXPECT_TRUE(resilient.ledger().reconciles());
}

TEST_F(ResilienceTest, TransientFaultsAreAbsorbedByRetries) {
  const ActiveScanner inner(endpoints_);
  FaultRates rates;
  rates.transient_unreachable = 0.35;
  rates.connect_timeout = 0.15;
  const FaultPlan plan(0x7247, rates);
  ResilientScanner resilient(inner, plan);

  std::size_t retried_successes = 0;
  for (const auto& result : resilient.scan_all_domains()) {
    if (result.scan.reachable && result.attempts > 1) ++retried_successes;
  }
  // With a 50% per-attempt fault rate and 4 attempts, some targets must have
  // recovered on a retry (seed-stable).
  EXPECT_GT(retried_successes, 0u);
  EXPECT_GT(resilient.ledger().retries, 0u);
  EXPECT_TRUE(resilient.ledger().reconciles());
}

TEST_F(ResilienceTest, DeadlineBoundsSlowResponses) {
  const ActiveScanner inner(endpoints_);
  FaultRates rates;
  rates.slow_response = 1.0;
  const FaultPlan plan(3, rates);
  RetryPolicy policy;
  policy.target_deadline_ms = 400;  // every injected delay is >= 500ms
  ResilientScanner resilient(inner, plan, policy);

  const ResilientScanResult result = resilient.scan_domain("srv1.example");
  EXPECT_FALSE(result.scan.reachable);
  EXPECT_EQ(result.error, ScanError::kDeadlineExceeded);
  EXPECT_LT(result.attempts, resilient.policy().max_attempts + 1);
}

TEST_F(ResilienceTest, RevisitReportsIdenticalWithAndWithoutResilienceAtZeroFaults) {
  const ActiveScanner inner(endpoints_);
  const core::RevisitAnalyzer analyzer(world_.stores());
  std::vector<const ServerEndpoint*> servers;
  for (const auto& endpoint : endpoints_) servers.push_back(&endpoint);

  const core::HybridRevisitReport plain = analyzer.analyze_hybrid(servers, inner);

  const FaultPlan no_faults;
  ResilientScanner resilient(inner, no_faults);
  const core::HybridRevisitReport hardened =
      analyzer.analyze_hybrid(servers, resilient);

  EXPECT_EQ(hardened.previous_servers, plain.previous_servers);
  EXPECT_EQ(hardened.reachable, plain.reachable);
  EXPECT_EQ(hardened.now_all_public, plain.now_all_public);
  EXPECT_EQ(hardened.now_lets_encrypt, plain.now_lets_encrypt);
  EXPECT_EQ(hardened.now_all_non_public, plain.now_all_non_public);
  EXPECT_EQ(hardened.still_hybrid, plain.still_hybrid);

  EXPECT_TRUE(hardened.scan_health.reconciles());
  EXPECT_EQ(hardened.scan_health.reachable_degraded, 0u);
  EXPECT_EQ(hardened.scan_health.ledger.targets, servers.size());
}

TEST_F(ResilienceTest, RevisitScanHealthAccountsForEveryTarget) {
  const ActiveScanner inner(endpoints_);
  const core::RevisitAnalyzer analyzer(world_.stores());
  std::vector<const ServerEndpoint*> servers;
  for (const auto& endpoint : endpoints_) servers.push_back(&endpoint);

  const FaultPlan plan(0xBEA7, FaultRates::uniform(0.2));
  ResilientScanner resilient(inner, plan);
  const core::HybridRevisitReport report = analyzer.analyze_hybrid(servers, resilient);

  EXPECT_EQ(report.scan_health.scanned, servers.size());
  EXPECT_TRUE(report.scan_health.reconciles());
  EXPECT_TRUE(report.scan_health.ledger.reconciles());
  EXPECT_EQ(report.scan_health.ledger.targets, servers.size());
  EXPECT_EQ(report.reachable, report.scan_health.reachable_clean +
                                  report.scan_health.reachable_degraded);
  // The rendered health block mentions each population.
  const std::string text = core::render_scan_health(report.scan_health);
  EXPECT_NE(text.find("degraded"), std::string::npos);
  EXPECT_NE(text.find("attempts"), std::string::npos);

  // Campaign-scoped ledger: a second campaign on the same scanner reports
  // only its own share.
  const core::NonPublicRevisitReport second =
      analyzer.analyze_non_public(servers, resilient, 100, 50);
  EXPECT_EQ(second.scan_health.ledger.targets, second.scan_health.scanned);
}

TEST_F(ResilienceTest, RegistryCountersMirrorTheLedgerExactly) {
  const ActiveScanner inner(endpoints_);
  const FaultPlan plan(0xBEA7, FaultRates::uniform(0.2));
  obs::MetricsRegistry metrics;
  ResilientScanner resilient(inner, plan, {}, &metrics);
  (void)resilient.scan_all_domains();
  (void)resilient.scan_all_ips();

  const ScanLedger& ledger = resilient.ledger();
  ASSERT_GT(ledger.attempts, 0u);
  EXPECT_EQ(metrics.counter("scanner.targets"), ledger.targets);
  EXPECT_EQ(metrics.counter("scanner.attempts"), ledger.attempts);
  EXPECT_EQ(metrics.counter("scanner.retries"), ledger.retries);
  EXPECT_EQ(metrics.counter("scanner.backoff_ms_total"), ledger.backoff_ms_total);
  EXPECT_EQ(metrics.counter("scanner.successes"), ledger.successes);
  EXPECT_EQ(metrics.counter("scanner.failures"), ledger.failures);
  EXPECT_EQ(metrics.counter("scanner.salvaged"), ledger.salvaged);
  EXPECT_EQ(metrics.counter("scanner.certs_salvaged"), ledger.certs_salvaged);
  EXPECT_EQ(metrics.counter("scanner.certs_dropped"), ledger.certs_dropped);
  // Every attempt-error series in the ledger has a matching counter.
  for (const auto& [error, count] : ledger.error_counts) {
    const std::string name =
        "scanner.error." + obs::metric_slug(scanner::scan_error_name(error));
    EXPECT_EQ(metrics.counter(name), count) << name;
  }
  // Fault-taxonomy counters exist (the plan injected at 20% per kind) and
  // never exceed the attempt count.
  std::uint64_t faults = 0;
  for (const auto& [name, value] : metrics.counters()) {
    if (name.rfind("scanner.fault.", 0) == 0) faults += value;
  }
  EXPECT_GT(faults, 0u);
  EXPECT_LE(faults, metrics.counter("scanner.attempts"));
}

TEST_F(ResilienceTest, NullRegistryKeepsScannerBehaviourIdentical) {
  const ActiveScanner inner(endpoints_);
  const FaultPlan plan(0xFA01, FaultRates::uniform(0.15));
  const FaultPlan same_plan(0xFA01, FaultRates::uniform(0.15));
  obs::MetricsRegistry metrics;
  ResilientScanner instrumented(inner, plan, {}, &metrics);
  ResilientScanner bare(inner, same_plan);
  (void)instrumented.scan_all_domains();
  (void)bare.scan_all_domains();
  // Telemetry is write-through: attaching a registry must not perturb the
  // deterministic scan outcome.
  EXPECT_EQ(instrumented.ledger().to_string(), bare.ledger().to_string());
}

// --- ingestion degradation ------------------------------------------------

class IngestionTest : public ::testing::Test {
 protected:
  IngestionTest()
      : stores_(pki_.trusted_stores()), pipeline_(stores_, ct_logs_, vendors_) {}

  /// Builds a small clean SSL/X509 log pair.
  void build_logs(int connections) {
    zeek::SslLogWriter ssl_writer;
    zeek::X509LogWriter x509_writer;
    for (int i = 0; i < connections; ++i) {
      const std::string domain = "host" + std::to_string(i) + ".example";
      const auto chain = pki_.chain_for(domain);
      zeek::SslLogRecord ssl;
      ssl.ts = 1600000000 + i;
      ssl.uid = "C" + std::to_string(i);
      ssl.id_orig_h = "10.0.0.1";
      ssl.id_resp_h = "198.51.100.1";
      ssl.id_resp_p = 443;
      ssl.version = "TLSv12";
      ssl.established = true;
      ssl.server_name = domain;
      for (std::size_t c = 0; c < chain.length(); ++c) {
        const std::string fuid = "F" + std::to_string(i) + "_" + std::to_string(c);
        ssl.cert_chain_fuids.push_back(fuid);
        x509_writer.add(zeek::record_from_certificate(chain.at(c), ssl.ts, fuid));
      }
      ssl_writer.add(ssl);
    }
    ssl_text_ = ssl_writer.finish();
    x509_text_ = x509_writer.finish();
  }

  /// Runs the pipeline over the built log text through the unified entry.
  core::StudyReport run_text(const core::IngestOptions& ingest = {}) {
    core::RunOptions options;
    options.ingest = ingest;
    return pipeline_.run(core::StudyInput::text(ssl_text_, x509_text_), options);
  }

  /// Damages every `stride`-th body row by chopping it in half (guaranteed
  /// wrong column count). Returns how many rows were damaged.
  static std::size_t damage_rows(std::string& text, std::size_t stride) {
    std::vector<std::string> lines = util::split(text, '\n');
    std::size_t damaged = 0;
    std::size_t body_index = 0;
    for (std::string& line : lines) {
      if (line.empty() || line.front() == '#') continue;
      if (body_index++ % stride == 0) {
        line.resize(line.size() / 4);
        ++damaged;
      }
    }
    std::string rebuilt;
    for (const std::string& line : lines) {
      rebuilt += line;
      rebuilt.push_back('\n');
    }
    if (!text.empty() && text.back() != '\n') rebuilt.pop_back();
    text = std::move(rebuilt);
    return damaged;
  }

  testing::TestPki pki_;
  truststore::TrustStoreSet stores_;
  ct::CtLogSet ct_logs_{2};
  core::VendorDirectory vendors_;
  core::StudyPipeline pipeline_;
  std::string ssl_text_;
  std::string x509_text_;
};

TEST_F(IngestionTest, CleanLogsReportCleanIngest) {
  build_logs(10);
  const core::StudyReport report = run_text();
  EXPECT_TRUE(report.ingest.populated);
  EXPECT_TRUE(report.ingest.clean());
  EXPECT_EQ(report.ingest.ssl.records, 10u);
  EXPECT_EQ(report.ingest.ssl.rotations, 1u);  // trailing #close
  EXPECT_EQ(report.totals.connections, 10u);
}

TEST_F(IngestionTest, LenientModeCountsDamageExactly) {
  build_logs(40);  // >= 5% corrupted lines below
  const std::size_t ssl_damaged = damage_rows(ssl_text_, 10);
  const std::size_t x509_damaged = damage_rows(x509_text_, 15);
  ASSERT_GE(ssl_damaged, 2u);

  core::IngestOptions options;
  options.mode = core::IngestMode::kLenient;
  core::StudyReport report;
  ASSERT_NO_THROW(report = run_text(options));

  EXPECT_EQ(report.ingest.ssl.malformed_rows, ssl_damaged);
  EXPECT_EQ(report.ingest.x509.malformed_rows, x509_damaged);
  EXPECT_EQ(report.ingest.ssl.records, 40u - ssl_damaged);
  EXPECT_EQ(report.totals.connections, 40u - ssl_damaged);
  EXPECT_FALSE(report.ingest.sample_errors.empty());

  // The rendered report carries the data-quality section.
  const std::string text = core::render_report_text(report);
  EXPECT_NE(text.find("Data quality"), std::string::npos);
  EXPECT_NE(text.find("lenient"), std::string::npos);
}

TEST_F(IngestionTest, StrictModeSurfacesTheFirstError) {
  build_logs(20);
  damage_rows(ssl_text_, 7);
  core::IngestOptions options;
  options.mode = core::IngestMode::kStrict;
  try {
    (void)run_text(options);
    FAIL() << "strict ingestion must throw on damaged input";
  } catch (const core::IngestError& error) {
    EXPECT_NE(std::string(error.what()).find("ssl log line"), std::string::npos);
  }
}

TEST_F(IngestionTest, StrictModeAcceptsCleanLogs) {
  build_logs(5);
  core::IngestOptions options;
  options.mode = core::IngestMode::kStrict;
  core::StudyReport report;
  ASSERT_NO_THROW(report = run_text(options));
  EXPECT_EQ(report.totals.connections, 5u);
  EXPECT_TRUE(report.ingest.clean());
}

TEST_F(IngestionTest, TinyChunksMatchOneShotIngestion) {
  build_logs(15);
  core::IngestOptions tiny;
  tiny.feed_chunk_bytes = 3;
  const core::StudyReport chunked = run_text(tiny);
  const core::StudyReport oneshot = run_text();
  EXPECT_EQ(chunked.totals.connections, oneshot.totals.connections);
  EXPECT_EQ(chunked.unique_chains, oneshot.unique_chains);
  EXPECT_EQ(chunked.ingest.ssl.records, oneshot.ingest.ssl.records);
}

TEST(StreamingReaderReuse, FinishResetsHeaderStateForTheNextStream) {
  zeek::SslLogWriter writer;
  zeek::SslLogRecord record;
  record.ts = 1600000000;
  record.uid = "Creuse";
  record.id_orig_h = "10.0.0.1";
  record.id_resp_h = "198.51.100.1";
  record.id_resp_p = 443;
  record.version = "TLSv12";
  writer.add(record);
  // First stream ends mid-body: no #close, unterminated final line.
  const std::string full = writer.finish();
  const std::string headless = full.substr(0, full.find("#close"));

  std::size_t emitted = 0;
  auto reader = zeek::make_streaming_ssl_reader([&](zeek::SslLogRecord) { ++emitted; });
  reader.feed(headless);
  reader.finish();
  EXPECT_EQ(emitted, 1u);

  // Reuse the same instance on a fresh stream: rows before the new header
  // must be skipped (the header state was reset), rows after it consumed.
  const std::size_t body_start = headless.rfind("\n1", std::string::npos);
  ASSERT_NE(body_start, std::string::npos);
  const std::string bare_row = headless.substr(body_start + 1);
  const std::size_t skipped_before = reader.lines_skipped();
  reader.feed(bare_row);          // data with no preceding #fields header
  reader.feed(full);              // a complete fresh stream
  reader.finish();
  EXPECT_EQ(emitted, 2u);
  EXPECT_EQ(reader.records_emitted(), 2u);
  EXPECT_GT(reader.lines_skipped(), skipped_before);
}

}  // namespace
}  // namespace certchain
