#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace certchain::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 64; ++i) values.insert(rng.next_u64());
  EXPECT_GT(values.size(), 60u);
}

TEST(Rng, ForkDecorrelatesFromParent) {
  Rng parent(7);
  Rng child = parent.fork(1);
  // Parent continues, child starts fresh: streams should not coincide.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForksWithDistinctSaltsDiffer) {
  Rng a(7);
  Rng b(7);
  Rng child_a = a.fork(1);
  Rng child_b = b.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.next_u64() == child_b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

class RngBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundTest, NextBelowStaysInRange) {
  Rng rng(GetParam() * 1234567 + 1);
  const std::uint64_t bound = GetParam();
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST_P(RngBoundTest, NextBelowCoversRangeForSmallBounds) {
  const std::uint64_t bound = GetParam();
  if (bound > 64) GTEST_SKIP() << "coverage check only for small bounds";
  Rng rng(GetParam() + 99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.next_below(bound));
  EXPECT_EQ(seen.size(), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundTest,
                         ::testing::Values(2, 3, 7, 10, 64, 1000, 1u << 20,
                                           (1ull << 63) + 5));

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(6);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(9, 2), 9);  // lo >= hi returns lo
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(variance), 3.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, ZipfLargeSupportRejectionPath) {
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_LT(rng.zipf(1000, 1.3), 1000u);
  }
  // s <= 1 is clamped rather than spinning forever.
  for (int i = 0; i < 100; ++i) {
    ASSERT_LT(rng.zipf(1000, 0.5), 1000u);
  }
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(12);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t r = rng.zipf(16, 1.2);
    ASSERT_LT(r, 16u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[0], counts[15] * 4);
}

TEST(Rng, PickWeightedRespectsWeights) {
  Rng rng(13);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.pick_weighted({1.0, 0.0, 3.0})];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, PickWeightedAllZeroFallsBackToUniform) {
  Rng rng(14);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.pick_weighted({0.0, 0.0, 0.0}));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, StringsHaveRequestedLengthAndAlphabet) {
  Rng rng(16);
  const std::string alpha = rng.alpha_string(32);
  EXPECT_EQ(alpha.size(), 32u);
  for (const char c : alpha) EXPECT_TRUE(c >= 'a' && c <= 'z');
  const std::string hex = rng.hex_string(40);
  EXPECT_EQ(hex.size(), 40u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

TEST(StableSalt, DeterministicAndSensitive) {
  EXPECT_EQ(stable_salt("abc"), stable_salt("abc"));
  EXPECT_NE(stable_salt("abc"), stable_salt("abd"));
  EXPECT_NE(stable_salt(""), stable_salt("a"));
}

}  // namespace
}  // namespace certchain::util
