// Robustness: parsers must degrade gracefully (no crashes, no exceptions)
// under randomly mutated input — PEM bundles, Zeek TSV logs, DN strings.
#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "core/pipeline.hpp"
#include "netsim/faults.hpp"
#include "netsim/pki_world.hpp"
#include "scanner/resilient_scanner.hpp"
#include "util/base64.hpp"
#include "util/rng.hpp"
#include "x509/pem.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"

namespace certchain {
namespace {

using certchain::testing::TestPki;

/// Applies `count` random byte mutations (replace/insert/delete).
std::string mutate(std::string text, util::Rng& rng, int count) {
  for (int i = 0; i < count && !text.empty(); ++i) {
    const std::size_t pos = rng.next_below(text.size());
    switch (rng.next_below(3)) {
      case 0:
        text[pos] = static_cast<char>(rng.next_below(256));
        break;
      case 1:
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<char>(rng.next_below(256)));
        break;
      default:
        text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
    }
  }
  return text;
}

class RobustnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RobustnessTest, PemDecoderNeverThrows) {
  util::Rng rng(GetParam());
  TestPki pki;
  std::string bundle;
  for (const auto& cert : pki.chain_for("robust.example", true)) {
    bundle += x509::encode_pem(cert);
  }
  for (int i = 0; i < 150; ++i) {
    const std::string mutated = mutate(bundle, rng, 1 + int(rng.next_below(25)));
    std::size_t malformed = 0;
    EXPECT_NO_THROW({
      const auto certs = x509::decode_pem_bundle(mutated, &malformed);
      // Whatever decodes must re-encode cleanly (no corrupt state escapes).
      for (const auto& cert : certs) {
        EXPECT_NO_THROW((void)x509::encode_pem(cert));
        EXPECT_NO_THROW((void)cert.fingerprint());
      }
    });
  }
}

TEST_P(RobustnessTest, ZeekParsersNeverThrow) {
  util::Rng rng(GetParam() ^ 0x5EEC);
  TestPki pki;

  zeek::SslLogWriter ssl_writer;
  zeek::X509LogWriter x509_writer;
  for (int i = 0; i < 5; ++i) {
    zeek::SslLogRecord ssl;
    ssl.ts = 1600000000 + i;
    ssl.uid = "C" + std::to_string(i);
    ssl.id_orig_h = "10.0.0.1";
    ssl.id_resp_h = "198.51.100.1";
    ssl.id_resp_p = 443;
    ssl.version = "TLSv12";
    ssl.cert_chain_fuids = {"F" + std::to_string(i)};
    ssl.subject = "CN=robust" + std::to_string(i) + ".example";
    ssl_writer.add(ssl);
    x509_writer.add(zeek::record_from_certificate(
        pki.leaf("robust" + std::to_string(i) + ".example"), ssl.ts,
        "F" + std::to_string(i)));
  }
  const std::string ssl_text = ssl_writer.finish();
  const std::string x509_text = x509_writer.finish();

  for (int i = 0; i < 100; ++i) {
    zeek::ParseDiagnostics diagnostics;
    EXPECT_NO_THROW((void)zeek::parse_ssl_log(
        mutate(ssl_text, rng, 1 + int(rng.next_below(40))), &diagnostics));
    EXPECT_NO_THROW((void)zeek::parse_x509_log(
        mutate(x509_text, rng, 1 + int(rng.next_below(40))), &diagnostics));
  }
}

TEST_P(RobustnessTest, DnParserNeverThrowsOnGarbage) {
  util::Rng rng(GetParam() ^ 0xDDDD);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    const std::size_t length = rng.next_below(64);
    for (std::size_t c = 0; c < length; ++c) {
      garbage.push_back(static_cast<char>(rng.next_below(256)));
    }
    EXPECT_NO_THROW({
      const auto parsed = x509::DistinguishedName::parse(garbage);
      if (parsed) {
        // Anything accepted must serialize and re-parse to the same value.
        const auto again = x509::DistinguishedName::parse(parsed->to_string());
        ASSERT_TRUE(again.has_value()) << garbage;
        EXPECT_EQ(*again, *parsed);
      }
    });
  }
}

TEST_P(RobustnessTest, Base64DecoderNeverThrows) {
  util::Rng rng(GetParam() ^ 0xB64);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    const std::size_t length = rng.next_below(128);
    for (std::size_t c = 0; c < length; ++c) {
      garbage.push_back(static_cast<char>(rng.next_below(256)));
    }
    EXPECT_NO_THROW((void)util::base64_decode(garbage));
  }
}

TEST_P(RobustnessTest, LenientPipelineNeverThrowsOnMutatedLogs) {
  util::Rng rng(GetParam() ^ 0x919E);
  TestPki pki;
  truststore::TrustStoreSet stores = pki.trusted_stores();
  ct::CtLogSet ct_logs(2);
  core::VendorDirectory vendors;
  const core::StudyPipeline pipeline(stores, ct_logs, vendors);

  zeek::SslLogWriter ssl_writer;
  zeek::X509LogWriter x509_writer;
  for (int i = 0; i < 8; ++i) {
    const std::string domain = "pipe" + std::to_string(i) + ".example";
    zeek::SslLogRecord ssl;
    ssl.ts = 1600000000 + i;
    ssl.uid = "C" + std::to_string(i);
    ssl.id_orig_h = "10.0.0.1";
    ssl.id_resp_h = "198.51.100.1";
    ssl.id_resp_p = 443;
    ssl.version = "TLSv12";
    ssl.established = true;
    ssl.server_name = domain;
    const auto chain = pki.chain_for(domain);
    for (std::size_t c = 0; c < chain.length(); ++c) {
      const std::string fuid = "F" + std::to_string(i) + "_" + std::to_string(c);
      ssl.cert_chain_fuids.push_back(fuid);
      x509_writer.add(zeek::record_from_certificate(chain.at(c), ssl.ts, fuid));
    }
    ssl_writer.add(ssl);
  }
  const std::string ssl_text = ssl_writer.finish();
  const std::string x509_text = x509_writer.finish();

  for (int i = 0; i < 40; ++i) {
    const std::string bad_ssl = mutate(ssl_text, rng, 1 + int(rng.next_below(60)));
    const std::string bad_x509 = mutate(x509_text, rng, 1 + int(rng.next_below(60)));
    EXPECT_NO_THROW({
      const core::StudyReport report =
          pipeline.run(core::StudyInput::text(bad_ssl, bad_x509));
      // Accounting must be self-consistent no matter the damage.
      EXPECT_LE(report.ingest.ssl.malformed_rows, report.ingest.ssl.skipped_lines);
      EXPECT_LE(report.ingest.ssl.records + report.ingest.ssl.skipped_lines,
                report.ingest.ssl.lines);
      EXPECT_LE(report.ingest.x509.malformed_rows, report.ingest.x509.skipped_lines);
    });
  }
}

TEST_P(RobustnessTest, ResilientScannerNeverThrowsUnderRandomFaultPlans) {
  util::Rng rng(GetParam() ^ 0xFA17);
  netsim::PkiWorld world;
  std::vector<netsim::ServerEndpoint> endpoints;
  for (int i = 0; i < 10; ++i) {
    netsim::ServerEndpoint endpoint;
    endpoint.ip = "203.0.113." + std::to_string(i + 1);
    endpoint.port = 443;
    endpoint.domain = "fuzz" + std::to_string(i) + ".example";
    endpoint.chain = world.issue_public_chain("digicert", endpoint.domain,
                                              netsim::PkiWorld::default_leaf_validity());
    endpoint.revisit_chain =
        (i % 3 == 0) ? std::nullopt : std::make_optional(endpoint.chain);
    endpoints.push_back(std::move(endpoint));
  }
  const scanner::ActiveScanner inner(endpoints);

  for (int round = 0; round < 10; ++round) {
    netsim::FaultRates rates;
    rates.connect_timeout = rng.uniform(0.0, 0.4);
    rates.connection_reset = rng.uniform(0.0, 0.4);
    rates.truncated_handshake = rng.uniform(0.0, 0.4);
    rates.byte_corruption = rng.uniform(0.0, 0.4);
    rates.transient_unreachable = rng.uniform(0.0, 0.4);
    rates.persistent_unreachable = rng.uniform(0.0, 0.3);
    rates.slow_response = rng.uniform(0.0, 0.4);
    netsim::FaultPlan plan(rng.next_u64(), rates);
    plan.set_epoch(static_cast<std::uint32_t>(round));

    scanner::RetryPolicy policy;
    policy.max_attempts = 1 + static_cast<std::uint32_t>(rng.next_below(5));
    policy.target_deadline_ms = 200 + static_cast<std::uint32_t>(rng.next_below(20000));
    scanner::ResilientScanner resilient(inner, plan, policy);

    EXPECT_NO_THROW({
      const auto by_domain = resilient.scan_all_domains();
      const auto by_ip = resilient.scan_all_ips();
      EXPECT_EQ(by_domain.size() + by_ip.size(), resilient.ledger().targets);
    });
    // Every target ends in exactly one bucket, whatever the fault mix.
    EXPECT_TRUE(resilient.ledger().reconciles())
        << "round " << round << "\n" << resilient.ledger().to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace certchain
