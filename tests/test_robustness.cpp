// Robustness: parsers must degrade gracefully (no crashes, no exceptions)
// under randomly mutated input — PEM bundles, Zeek TSV logs, DN strings.
#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "util/base64.hpp"
#include "util/rng.hpp"
#include "x509/pem.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"

namespace certchain {
namespace {

using certchain::testing::TestPki;

/// Applies `count` random byte mutations (replace/insert/delete).
std::string mutate(std::string text, util::Rng& rng, int count) {
  for (int i = 0; i < count && !text.empty(); ++i) {
    const std::size_t pos = rng.next_below(text.size());
    switch (rng.next_below(3)) {
      case 0:
        text[pos] = static_cast<char>(rng.next_below(256));
        break;
      case 1:
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<char>(rng.next_below(256)));
        break;
      default:
        text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
    }
  }
  return text;
}

class RobustnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RobustnessTest, PemDecoderNeverThrows) {
  util::Rng rng(GetParam());
  TestPki pki;
  std::string bundle;
  for (const auto& cert : pki.chain_for("robust.example", true)) {
    bundle += x509::encode_pem(cert);
  }
  for (int i = 0; i < 150; ++i) {
    const std::string mutated = mutate(bundle, rng, 1 + int(rng.next_below(25)));
    std::size_t malformed = 0;
    EXPECT_NO_THROW({
      const auto certs = x509::decode_pem_bundle(mutated, &malformed);
      // Whatever decodes must re-encode cleanly (no corrupt state escapes).
      for (const auto& cert : certs) {
        EXPECT_NO_THROW((void)x509::encode_pem(cert));
        EXPECT_NO_THROW((void)cert.fingerprint());
      }
    });
  }
}

TEST_P(RobustnessTest, ZeekParsersNeverThrow) {
  util::Rng rng(GetParam() ^ 0x5EEC);
  TestPki pki;

  zeek::SslLogWriter ssl_writer;
  zeek::X509LogWriter x509_writer;
  for (int i = 0; i < 5; ++i) {
    zeek::SslLogRecord ssl;
    ssl.ts = 1600000000 + i;
    ssl.uid = "C" + std::to_string(i);
    ssl.id_orig_h = "10.0.0.1";
    ssl.id_resp_h = "198.51.100.1";
    ssl.id_resp_p = 443;
    ssl.version = "TLSv12";
    ssl.cert_chain_fuids = {"F" + std::to_string(i)};
    ssl.subject = "CN=robust" + std::to_string(i) + ".example";
    ssl_writer.add(ssl);
    x509_writer.add(zeek::record_from_certificate(
        pki.leaf("robust" + std::to_string(i) + ".example"), ssl.ts,
        "F" + std::to_string(i)));
  }
  const std::string ssl_text = ssl_writer.finish();
  const std::string x509_text = x509_writer.finish();

  for (int i = 0; i < 100; ++i) {
    zeek::ParseDiagnostics diagnostics;
    EXPECT_NO_THROW((void)zeek::parse_ssl_log(
        mutate(ssl_text, rng, 1 + int(rng.next_below(40))), &diagnostics));
    EXPECT_NO_THROW((void)zeek::parse_x509_log(
        mutate(x509_text, rng, 1 + int(rng.next_below(40))), &diagnostics));
  }
}

TEST_P(RobustnessTest, DnParserNeverThrowsOnGarbage) {
  util::Rng rng(GetParam() ^ 0xDDDD);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    const std::size_t length = rng.next_below(64);
    for (std::size_t c = 0; c < length; ++c) {
      garbage.push_back(static_cast<char>(rng.next_below(256)));
    }
    EXPECT_NO_THROW({
      const auto parsed = x509::DistinguishedName::parse(garbage);
      if (parsed) {
        // Anything accepted must serialize and re-parse to the same value.
        const auto again = x509::DistinguishedName::parse(parsed->to_string());
        ASSERT_TRUE(again.has_value()) << garbage;
        EXPECT_EQ(*again, *parsed);
      }
    });
  }
}

TEST_P(RobustnessTest, Base64DecoderNeverThrows) {
  util::Rng rng(GetParam() ^ 0xB64);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    const std::size_t length = rng.next_below(128);
    for (std::size_t c = 0; c < length; ++c) {
      garbage.push_back(static_cast<char>(rng.next_below(256)));
    }
    EXPECT_NO_THROW((void)util::base64_decode(garbage));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessTest, ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace certchain
