// Active scanner and the §5 revisit analysis.
#include <gtest/gtest.h>

#include "core/revisit.hpp"
#include "netsim/pki_world.hpp"
#include "scanner/scanner.hpp"
#include "x509/pem.hpp"

namespace certchain {
namespace {

using netsim::PkiWorld;
using netsim::ServerEndpoint;
using scanner::ActiveScanner;
using scanner::ScanResult;

class ScannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Endpoint A: reachable by domain, serving a public chain at revisit.
    ServerEndpoint a;
    a.ip = "198.51.100.10";
    a.port = 443;
    a.domain = "alive.example";
    a.chain = world_.issue_public_chain("digicert", "alive.example",
                                        PkiWorld::default_leaf_validity());
    a.revisit_chain = world_.issue_public_chain(
        "lets-encrypt", "alive.example",
        {util::make_time(2024, 10, 1), util::make_time(2025, 1, 1)});
    endpoints_.push_back(a);

    // Endpoint B: gone by the revisit epoch.
    ServerEndpoint b = a;
    b.ip = "198.51.100.11";
    b.domain = "gone.example";
    b.revisit_chain = std::nullopt;
    endpoints_.push_back(b);

    // Endpoint C: IP-only service (no domain).
    ServerEndpoint c = a;
    c.ip = "198.51.100.12";
    c.port = 8443;
    c.domain.clear();
    c.revisit_chain = c.chain;
    endpoints_.push_back(c);
  }

  PkiWorld world_;
  std::vector<ServerEndpoint> endpoints_;
};

TEST_F(ScannerTest, ScanByDomain) {
  const ActiveScanner scanner(endpoints_);
  const ScanResult result = scanner.scan_domain("alive.example");
  EXPECT_TRUE(result.reachable);
  EXPECT_EQ(result.chain_length(), 2u);
  EXPECT_EQ(result.target, "alive.example:443");

  EXPECT_FALSE(scanner.scan_domain("gone.example").reachable);
  EXPECT_FALSE(scanner.scan_domain("never-existed.example").reachable);
  EXPECT_FALSE(scanner.scan_domain("alive.example", 8443).reachable);  // wrong port
}

TEST_F(ScannerTest, ScanByIp) {
  const ActiveScanner scanner(endpoints_);
  EXPECT_TRUE(scanner.scan_ip("198.51.100.12", 8443).reachable);
  EXPECT_FALSE(scanner.scan_ip("198.51.100.99", 443).reachable);
}

TEST_F(ScannerTest, PemBundleRoundTripsThroughParser) {
  const ActiveScanner scanner(endpoints_);
  const ScanResult result = scanner.scan_domain("alive.example");
  ASSERT_TRUE(result.reachable);
  const auto parsed = x509::decode_pem_bundle(result.pem_bundle);
  ASSERT_EQ(parsed.size(), result.chain_length());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i], result.chain.at(i));
  }
  // s_client cosmetics.
  EXPECT_NE(result.pem_bundle.find("CONNECTED("), std::string::npos);
  EXPECT_NE(result.pem_bundle.find(" 0 s:"), std::string::npos);
  EXPECT_NE(result.pem_bundle.find("   i:"), std::string::npos);
}

TEST_F(ScannerTest, ScanAllDomainsSkipsIpOnlyServices) {
  const ActiveScanner scanner(endpoints_);
  const auto results = scanner.scan_all_domains();
  EXPECT_EQ(results.size(), 2u);  // alive + gone; the IP-only endpoint skipped
}

TEST_F(ScannerTest, IpSweepReachesTheNamelessPopulation) {
  const ActiveScanner scanner(endpoints_);
  const auto results = scanner.scan_all_ips();
  EXPECT_EQ(results.size(), 3u);  // every endpoint, SNI or not
  std::size_t reachable = 0;
  for (const auto& result : results) {
    if (result.reachable) ++reachable;
  }
  EXPECT_EQ(reachable, 2u);  // the "gone" endpoint stays unreachable
  // The sweep covers strictly more than the SNI route (the §6.3 point).
  EXPECT_GT(results.size(), scanner.scan_all_domains().size());
}

// --- revisit analysis -----------------------------------------------------------

TEST(RevisitAnalyzer, HybridMigrationBreakdown) {
  PkiWorld world;
  std::vector<ServerEndpoint> endpoints;
  const auto validity = PkiWorld::default_leaf_validity();
  const util::TimeRange revisit{util::make_time(2024, 10, 1),
                                util::make_time(2025, 2, 1)};

  const auto hybrid_chain = [&](const std::string& domain) {
    auto chain = world.issue_public_chain("digicert", domain, validity);
    chain.push_back(world.make_self_signed("Legacy Org", "legacy-ca", validity));
    return chain;
  };

  // 1. migrated to Let's Encrypt
  ServerEndpoint le;
  le.ip = "203.0.113.1";
  le.domain = "to-le.example";
  le.chain = hybrid_chain(le.domain);
  le.revisit_chain = world.issue_public_chain("lets-encrypt", le.domain, revisit);
  endpoints.push_back(le);

  // 2. migrated to another public CA
  ServerEndpoint pub = le;
  pub.ip = "203.0.113.2";
  pub.domain = "to-pub.example";
  pub.chain = hybrid_chain(pub.domain);
  pub.revisit_chain = world.issue_public_chain("godaddy", pub.domain, revisit);
  endpoints.push_back(pub);

  // 3. went fully non-public
  ServerEndpoint priv = le;
  priv.ip = "203.0.113.3";
  priv.domain = "to-priv.example";
  priv.chain = hybrid_chain(priv.domain);
  {
    auto& hierarchy = world.make_enterprise_ca("Holdout Org", true);
    x509::DistinguishedName subject;
    subject.add("CN", priv.domain);
    chain::CertificateChain chain;
    chain.push_back(hierarchy.intermediate_ca->issue_leaf(subject, priv.domain, revisit));
    chain.push_back(*hierarchy.intermediate_cert);
    chain.push_back(hierarchy.root_cert);
    priv.revisit_chain = std::move(chain);
  }
  endpoints.push_back(priv);

  // 4. still hybrid, with extras
  ServerEndpoint still = le;
  still.ip = "203.0.113.4";
  still.domain = "still-hybrid.example";
  still.chain = hybrid_chain(still.domain);
  {
    auto chain = world.issue_public_chain("comodo", still.domain, revisit, true);
    chain.push_back(world.make_self_signed("Leftover Org", "leftover", revisit));
    still.revisit_chain = std::move(chain);
  }
  endpoints.push_back(still);

  // 5. unreachable
  ServerEndpoint dead = le;
  dead.ip = "203.0.113.5";
  dead.domain = "dead.example";
  dead.chain = hybrid_chain(dead.domain);
  dead.revisit_chain = std::nullopt;
  endpoints.push_back(dead);

  const ActiveScanner scanner(endpoints);
  std::vector<const ServerEndpoint*> servers;
  for (const auto& endpoint : endpoints) servers.push_back(&endpoint);

  const core::RevisitAnalyzer analyzer(world.stores());
  const core::HybridRevisitReport report = analyzer.analyze_hybrid(servers, scanner);
  EXPECT_EQ(report.previous_servers, 5u);
  EXPECT_EQ(report.reachable, 4u);
  EXPECT_EQ(report.now_all_public, 2u);
  EXPECT_EQ(report.now_lets_encrypt, 1u);
  EXPECT_EQ(report.now_all_non_public, 1u);
  EXPECT_EQ(report.still_hybrid, 1u);
  EXPECT_EQ(report.still_complete_with_extras, 1u);
}

TEST(RevisitAnalyzer, NonPublicUpgradeBreakdown) {
  PkiWorld world;
  const auto validity = PkiWorld::default_leaf_validity();
  std::vector<ServerEndpoint> endpoints;

  const auto upgraded_chain = [&](const std::string& org, const std::string& domain) {
    auto& hierarchy = world.make_enterprise_ca(org, true);
    x509::DistinguishedName subject;
    subject.add("CN", domain);
    chain::CertificateChain chain;
    chain.push_back(hierarchy.intermediate_ca->issue_leaf_no_bc(subject, domain, validity));
    chain.push_back(*hierarchy.intermediate_cert);
    chain.push_back(hierarchy.root_cert);
    return chain;
  };

  // Previously single self-signed -> now hierarchical.
  ServerEndpoint upgraded;
  upgraded.ip = "198.51.100.30";
  upgraded.domain = "upgraded.example";
  {
    chain::CertificateChain chain;
    chain.push_back(world.make_self_signed("Old Org", upgraded.domain, validity));
    upgraded.chain = std::move(chain);
  }
  upgraded.revisit_chain = upgraded_chain("New Org", upgraded.domain);
  endpoints.push_back(upgraded);

  // Previously multi -> still multi.
  ServerEndpoint stable;
  stable.ip = "198.51.100.31";
  stable.domain = "stable.example";
  stable.chain = upgraded_chain("Stable Org", stable.domain);
  stable.revisit_chain = stable.chain;
  endpoints.push_back(stable);

  // Still single.
  ServerEndpoint holdout;
  holdout.ip = "198.51.100.32";
  holdout.domain = "holdout.example";
  {
    chain::CertificateChain chain;
    chain.push_back(world.make_self_signed("Holdout", holdout.domain, validity));
    holdout.chain = std::move(chain);
  }
  holdout.revisit_chain = holdout.chain;
  endpoints.push_back(holdout);

  // No SNI on record: cannot be rescanned.
  ServerEndpoint unnamed = holdout;
  unnamed.ip = "198.51.100.33";
  unnamed.domain.clear();
  endpoints.push_back(unnamed);

  const ActiveScanner scanner(endpoints);
  std::vector<const ServerEndpoint*> servers;
  for (const auto& endpoint : endpoints) servers.push_back(&endpoint);

  const core::RevisitAnalyzer analyzer(world.stores());
  const core::NonPublicRevisitReport report =
      analyzer.analyze_non_public(servers, scanner, 1000, 795);
  EXPECT_EQ(report.scannable_servers, 3u);
  EXPECT_EQ(report.reachable, 3u);
  EXPECT_EQ(report.still_non_public, 3u);
  EXPECT_EQ(report.now_multi_cert, 2u);
  EXPECT_EQ(report.previously_multi, 1u);
  EXPECT_EQ(report.previously_single_self_signed, 1u);
  EXPECT_EQ(report.previously_single_distinct, 0u);
  EXPECT_EQ(report.now_multi_complete_matched, 2u);
  EXPECT_EQ(report.previous_connections, 1000u);
}

TEST(RevisitAnalyzer, LetsEncryptHeuristic) {
  PkiWorld world;
  const auto le = world.issue_public_chain("lets-encrypt", "h.example",
                                           PkiWorld::default_leaf_validity());
  const auto dc = world.issue_public_chain("digicert", "h.example",
                                           PkiWorld::default_leaf_validity());
  EXPECT_TRUE(core::RevisitAnalyzer::is_lets_encrypt_chain(le));
  EXPECT_FALSE(core::RevisitAnalyzer::is_lets_encrypt_chain(dc));
  EXPECT_FALSE(core::RevisitAnalyzer::is_lets_encrypt_chain(chain::CertificateChain()));
}

}  // namespace
}  // namespace certchain
