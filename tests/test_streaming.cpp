// Differential proof of the streaming execution engine (DESIGN.md §11): a
// run fed through LogSources in fixed-size chunks must reproduce the
// in-memory text run **byte for byte** — rendered report text, every
// deterministic counter, histogram contents, and manifest stage accounting —
// at every chunk size, for clean and fault-corrupted corpora, in lenient and
// strict mode, serial and sharded. On top of that sits the checkpoint
// contract: a run killed mid-stream and resumed from its checkpoint file
// yields exactly the report an uninterrupted run yields.
//
// Streamed runs add telemetry of their own (`stream.*` counters, the
// `mem.peak_rss_bytes` gauge, per-chunk spans); those are the only permitted
// metric differences and are filtered before comparison.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>

#include "../tests/helpers.hpp"
#include "core/log_source.hpp"
#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "core/stream_checkpoint.hpp"
#include "datagen/scenario.hpp"
#include "obs/manifest.hpp"
#include "obs/run_context.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "zeek/log_io.hpp"
#include "zeek/log_stream.hpp"

namespace certchain {
namespace {

/// Metric names the streaming engine adds on top of the serial run; the
/// equivalence contract is "identical except these".
template <typename Map>
Map drop_streaming_metrics(const Map& metrics) {
  Map out;
  for (const auto& [name, value] : metrics) {
    if (name.rfind("stream.", 0) == 0 || name.rfind("mem.", 0) == 0) continue;
    out.emplace(name, value);
  }
  return out;
}

void expect_same_manifest_stages(const obs::RunManifest& actual,
                                 const obs::RunManifest& expected,
                                 const char* label) {
  EXPECT_TRUE(actual.reconciles()) << label;
  ASSERT_EQ(actual.stages.size(), expected.stages.size()) << label;
  for (std::size_t i = 0; i < expected.stages.size(); ++i) {
    EXPECT_EQ(actual.stages[i].name, expected.stages[i].name) << label;
    EXPECT_EQ(actual.stages[i].records_in, expected.stages[i].records_in)
        << label << ", stage " << expected.stages[i].name;
    EXPECT_EQ(actual.stages[i].admitted, expected.stages[i].admitted)
        << label << ", stage " << expected.stages[i].name;
    EXPECT_EQ(actual.stages[i].dropped, expected.stages[i].dropped)
        << label << ", stage " << expected.stages[i].name;
  }
}

void expect_same_histograms(
    const std::map<std::string, obs::FixedHistogram>& actual,
    const std::map<std::string, obs::FixedHistogram>& expected,
    const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  auto it = actual.begin();
  for (const auto& [name, reference] : expected) {
    ASSERT_EQ(it->first, name) << label;
    EXPECT_EQ(it->second.count(), reference.count()) << name << " " << label;
    EXPECT_DOUBLE_EQ(it->second.sum(), reference.sum()) << name << " " << label;
    EXPECT_EQ(it->second.bucket_counts(), reference.bucket_counts())
        << name << " " << label;
    ++it;
  }
}

/// Deterministic, seeded log-text corruption (the test_parallel_diff
/// pattern): garbage rows at line boundaries, a stray wrong-layout header,
/// and a truncated final line.
std::string corrupt(std::string text, std::uint64_t seed) {
  util::Rng rng(seed);
  for (int i = 0; i < 5; ++i) {
    const std::size_t at = text.find('\n', rng.next_below(text.size()));
    if (at == std::string::npos) continue;
    text.insert(at + 1, "garbage\trow\tnumber\t" + std::to_string(i) + "\n");
  }
  const std::size_t mid = text.find('\n', text.size() / 2);
  if (mid != std::string::npos) {
    text.insert(mid + 1, "#fields\tnot\tthe\texpected\tlayout\n");
  }
  text.resize(text.size() - std::min<std::size_t>(text.size(), 7));
  return text;
}

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + "certchain_streaming_" + leaf;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  return (std::fclose(file) == 0) && ok;
}

/// LogSource over `*text` that raises after serving `kill_after` reads —
/// the in-process stand-in for a run killed mid-stream.
std::unique_ptr<core::LogSource> make_killing_source(const std::string* text,
                                                     std::size_t kill_after) {
  auto offset = std::make_shared<std::size_t>(0);
  auto reads = std::make_shared<std::size_t>(0);
  return core::make_function_source(
      [text, offset, reads, kill_after](std::string& out,
                                        std::size_t max_bytes) -> std::size_t {
        if (*reads >= kill_after) throw std::runtime_error("simulated kill");
        ++*reads;
        const std::size_t n = std::min(max_bytes, text->size() - *offset);
        out.assign(*text, *offset, n);
        *offset += n;
        return n;
      },
      "<killing>", [offset, reads] { *offset = 0; *reads = 0; });
}

class StreamingDiffTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 20200901;
    config.chain_scale = 1.0 / 4000.0;
    config.total_connections = 4000;
    config.client_count = 300;
    config.include_length_outliers = false;
    scenario_ = datagen::build_study_scenario(config).release();
    const netsim::GeneratedLogs logs = scenario_->generate_logs();
    logs_ = new netsim::GeneratedLogs(logs);

    zeek::SslLogWriter ssl_writer;
    for (const auto& record : logs.ssl) ssl_writer.add(record);
    ssl_text_ = new std::string(ssl_writer.finish());
    zeek::X509LogWriter x509_writer;
    for (const auto& record : logs.x509) x509_writer.add(record);
    x509_text_ = new std::string(x509_writer.finish());

    pipeline_ = new core::StudyPipeline(
        scenario_->world.stores(), scenario_->world.ct_logs(),
        scenario_->vendors, &scenario_->world.cross_signs());
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    delete x509_text_;
    delete ssl_text_;
    delete logs_;
    delete scenario_;
    pipeline_ = nullptr;
    x509_text_ = nullptr;
    ssl_text_ = nullptr;
    logs_ = nullptr;
    scenario_ = nullptr;
  }

  static std::string render(const core::StudyReport& report) {
    core::ReportTextOptions options;
    options.graphs = true;
    return render_report_text(report, options);
  }

  /// Reference run: the in-memory text path, serial.
  struct Reference {
    std::string text;
    obs::RunContext ctx;
    core::StudyReport report;
  };

  static std::unique_ptr<Reference> reference_run(
      std::string_view ssl, std::string_view x509,
      const core::IngestOptions& ingest = {}) {
    auto ref = std::make_unique<Reference>();
    core::RunOptions options;
    options.ingest = ingest;
    ref->report =
        pipeline_->run(core::StudyInput::text(ssl, x509), options, &ref->ctx);
    ref->text = render(ref->report);
    return ref;
  }

  /// The differential assertion: the streamed run must match the reference
  /// modulo streamed-only metrics.
  static void expect_matches_reference(const Reference& ref,
                                       const core::StudyReport& streamed,
                                       const obs::RunContext& streamed_ctx,
                                       const char* label) {
    EXPECT_EQ(render(streamed), ref.text) << label;
    EXPECT_EQ(drop_streaming_metrics(streamed_ctx.metrics.counters()),
              drop_streaming_metrics(ref.ctx.metrics.counters()))
        << label;
    EXPECT_EQ(drop_streaming_metrics(streamed_ctx.metrics.gauges()),
              drop_streaming_metrics(ref.ctx.metrics.gauges()))
        << label;
    expect_same_histograms(streamed_ctx.metrics.histograms(),
                           ref.ctx.metrics.histograms(), label);
    expect_same_manifest_stages(build_run_manifest(streamed_ctx),
                                build_run_manifest(ref.ctx), label);
  }

  static datagen::Scenario* scenario_;
  static netsim::GeneratedLogs* logs_;
  static std::string* ssl_text_;
  static std::string* x509_text_;
  static core::StudyPipeline* pipeline_;
};

datagen::Scenario* StreamingDiffTest::scenario_ = nullptr;
netsim::GeneratedLogs* StreamingDiffTest::logs_ = nullptr;
std::string* StreamingDiffTest::ssl_text_ = nullptr;
std::string* StreamingDiffTest::x509_text_ = nullptr;
core::StudyPipeline* StreamingDiffTest::pipeline_ = nullptr;

TEST_F(StreamingDiffTest, FileInputMatchesTextInputByteForByte) {
  const std::string ssl_path = temp_path("file_ssl.log");
  const std::string x509_path = temp_path("file_x509.log");
  ASSERT_TRUE(write_file(ssl_path, *ssl_text_));
  ASSERT_TRUE(write_file(x509_path, *x509_text_));

  const auto ref = reference_run(*ssl_text_, *x509_text_);
  // The scenario must exercise the populations the claim is about.
  ASSERT_FALSE(ref->report.interception.findings.empty());
  ASSERT_GT(ref->report.totals.tls13_connections, 0u);

  obs::RunContext ctx;
  core::RunOptions options;
  options.chunk_bytes = 8 * 1024;  // force many chunks
  const core::StudyReport streamed = pipeline_->run(
      core::StudyInput::files(ssl_path, x509_path), options, &ctx);
  expect_matches_reference(*ref, streamed, ctx, "files input");

  // The run was genuinely chunked and measured its own residency.
  EXPECT_GT(ctx.metrics.counter("stream.chunk.ssl"), 4u);
  EXPECT_GT(ctx.metrics.counter("stream.chunk.x509"), 4u);
  EXPECT_EQ(ctx.metrics.counter("stream.chunk.ssl_bytes"), ssl_text_->size());
  EXPECT_GT(ctx.metrics.gauges().at("mem.peak_rss_bytes"), 0.0);

  std::remove(ssl_path.c_str());
  std::remove(x509_path.c_str());
}

TEST_F(StreamingDiffTest, EveryChunkSizeReproducesTheSameReport) {
  const auto ref = reference_run(*ssl_text_, *x509_text_);
  // Chunk sizes chosen to split lines at awkward places: smaller than a row,
  // a prime, and larger than the whole stream.
  for (const std::size_t chunk_bytes : {17ul, 4099ul, 1ul << 26}) {
    obs::RunContext ctx;
    core::RunOptions options;
    options.chunk_bytes = chunk_bytes;
    const core::StudyReport streamed = pipeline_->run(
        core::StudyInput::sources(core::make_text_source(*ssl_text_),
                                  core::make_text_source(*x509_text_)),
        options, &ctx);
    expect_matches_reference(
        *ref, streamed, ctx,
        ("chunk_bytes=" + std::to_string(chunk_bytes)).c_str());
  }
}

TEST_F(StreamingDiffTest, ShardedStreamingMatchesSerialText) {
  const auto ref = reference_run(*ssl_text_, *x509_text_);
  for (const std::size_t threads : {2ul, 4ul}) {
    obs::RunContext ctx;
    core::RunOptions options;
    options.chunk_bytes = 16 * 1024;
    options.threads = threads;
    const core::StudyReport streamed = pipeline_->run(
        core::StudyInput::sources(core::make_text_source(*ssl_text_),
                                  core::make_text_source(*x509_text_)),
        options, &ctx);
    // Sharded analysis over a streamed fold: report text still byte-equal.
    EXPECT_EQ(render(streamed), ref->text) << threads << " threads";
    EXPECT_EQ(drop_streaming_metrics(ctx.metrics.counters()),
              drop_streaming_metrics(ref->ctx.metrics.counters()))
        << threads << " threads";
  }
}

TEST_F(StreamingDiffTest, ParsedRecordsRunAgreesModuloIngestAccounting) {
  obs::RunContext records_ctx;
  const core::StudyReport from_records =
      pipeline_->run(core::StudyInput::records(*logs_), {}, &records_ctx);
  obs::RunContext streamed_ctx;
  core::RunOptions options;
  options.chunk_bytes = 32 * 1024;
  const core::StudyReport streamed = pipeline_->run(
      core::StudyInput::sources(core::make_text_source(*ssl_text_),
                                core::make_text_source(*x509_text_)),
      options, &streamed_ctx);

  // Records runs have no ingestion accounting; compare the analysis body.
  core::ReportTextOptions text_options;
  text_options.graphs = true;
  text_options.data_quality = false;
  EXPECT_EQ(render_report_text(streamed, text_options),
            render_report_text(from_records, text_options));
  EXPECT_EQ(streamed.unique_chains, from_records.unique_chains);
  EXPECT_EQ(streamed.totals.connections, from_records.totals.connections);
  EXPECT_FALSE(from_records.ingest.populated);
  EXPECT_TRUE(streamed.ingest.populated);
}

TEST_F(StreamingDiffTest, FaultCorruptedCorpusStreamsIdenticallyUnderLenient) {
  const std::string damaged_ssl = corrupt(*ssl_text_, 0xFA01);
  const std::string damaged_x509 = corrupt(*x509_text_, 0xFA02);
  const auto ref = reference_run(damaged_ssl, damaged_x509);
  ASSERT_GT(ref->report.ingest.skipped_total(), 0u);
  ASSERT_FALSE(ref->report.ingest.sample_errors.empty());

  obs::RunContext ctx;
  core::RunOptions options;
  options.chunk_bytes = 4096;
  const core::StudyReport streamed = pipeline_->run(
      core::StudyInput::sources(core::make_text_source(damaged_ssl),
                                core::make_text_source(damaged_x509)),
      options, &ctx);
  expect_matches_reference(*ref, streamed, ctx, "corrupted lenient");
  // Absolute line numbers in the sample errors survive the chunking.
  EXPECT_EQ(streamed.ingest.sample_errors, ref->report.ingest.sample_errors);
}

TEST_F(StreamingDiffTest, StrictModeFailsWithTheIdenticalFirstError) {
  const std::string damaged_ssl = corrupt(*ssl_text_, 0xFA01);
  core::IngestOptions strict;
  strict.mode = core::IngestMode::kStrict;

  std::string serial_message;
  try {
    core::RunOptions options;
    options.ingest = strict;
    pipeline_->run(core::StudyInput::text(damaged_ssl, *x509_text_), options);
    FAIL() << "strict text run accepted a damaged corpus";
  } catch (const core::IngestError& error) {
    serial_message = error.what();
  }
  ASSERT_FALSE(serial_message.empty());

  try {
    core::RunOptions options;
    options.ingest = strict;
    options.chunk_bytes = 2048;
    pipeline_->run(
        core::StudyInput::sources(core::make_text_source(damaged_ssl),
                                  core::make_text_source(*x509_text_)),
        options);
    FAIL() << "strict streamed run accepted a damaged corpus";
  } catch (const core::IngestError& error) {
    EXPECT_EQ(std::string(error.what()), serial_message);
  }
}

TEST_F(StreamingDiffTest, KilledRunResumesFromCheckpointToTheExactReport) {
  const std::string checkpoint = temp_path("resume.ckpt");
  std::remove(checkpoint.c_str());
  const auto ref = reference_run(*ssl_text_, *x509_text_);

  core::RunOptions options;
  options.chunk_bytes = 8 * 1024;
  options.checkpoint_path = checkpoint;

  // First attempt dies after three SSL chunks; by then the engine has
  // written a checkpoint at each chunk boundary.
  obs::RunContext killed_ctx;
  EXPECT_THROW(
      pipeline_->run(
          core::StudyInput::sources(make_killing_source(ssl_text_, 3),
                                    core::make_text_source(*x509_text_)),
          options, &killed_ctx),
      std::runtime_error);
  EXPECT_GE(killed_ctx.metrics.counter("stream.checkpoint.written"), 1u);
  ASSERT_TRUE(core::read_file_text(checkpoint).has_value());

  // Second attempt (fresh context, same inputs) resumes and completes.
  obs::RunContext ctx;
  const core::StudyReport resumed = pipeline_->run(
      core::StudyInput::sources(core::make_text_source(*ssl_text_),
                                core::make_text_source(*x509_text_)),
      options, &ctx);
  EXPECT_EQ(ctx.metrics.counter("stream.resume.loaded"), 1u);
  EXPECT_EQ(ctx.metrics.counter("stream.resume.rejected"), 0u);
  expect_matches_reference(*ref, resumed, ctx, "killed+resumed");
  // The resumed run skipped the already-folded prefix...
  EXPECT_LT(ctx.metrics.counter("stream.chunk.ssl_bytes"), ssl_text_->size());
  // ...and the checkpoint is gone after the successful fold.
  EXPECT_EQ(ctx.metrics.counter("stream.checkpoint.removed"), 1u);
  EXPECT_FALSE(core::read_file_text(checkpoint).has_value());
}

TEST_F(StreamingDiffTest, ResumeReproducesLenientDamageAccountingExactly) {
  const std::string checkpoint = temp_path("resume_damaged.ckpt");
  std::remove(checkpoint.c_str());
  const std::string damaged_ssl = corrupt(*ssl_text_, 0xFA01);
  const std::string damaged_x509 = corrupt(*x509_text_, 0xFA02);
  const auto ref = reference_run(damaged_ssl, damaged_x509);

  core::RunOptions options;
  options.chunk_bytes = 4096;
  options.checkpoint_path = checkpoint;

  obs::RunContext killed_ctx;
  EXPECT_THROW(
      pipeline_->run(
          core::StudyInput::sources(make_killing_source(&damaged_ssl, 5),
                                    core::make_text_source(damaged_x509)),
          options, &killed_ctx),
      std::runtime_error);
  ASSERT_TRUE(core::read_file_text(checkpoint).has_value());

  obs::RunContext ctx;
  const core::StudyReport resumed = pipeline_->run(
      core::StudyInput::sources(core::make_text_source(damaged_ssl),
                                core::make_text_source(damaged_x509)),
      options, &ctx);
  EXPECT_EQ(ctx.metrics.counter("stream.resume.loaded"), 1u);
  expect_matches_reference(*ref, resumed, ctx, "damaged killed+resumed");
  // Malformed-row counts and absolute error line numbers from the prefix
  // were restored from the checkpoint, not re-observed.
  EXPECT_EQ(resumed.ingest.sample_errors, ref->report.ingest.sample_errors);
  EXPECT_EQ(resumed.ingest.ssl.malformed_rows,
            ref->report.ingest.ssl.malformed_rows);
}

TEST_F(StreamingDiffTest, CheckpointAgainstDifferentInputIsRejected) {
  const std::string checkpoint = temp_path("reject.ckpt");
  std::remove(checkpoint.c_str());

  core::RunOptions options;
  options.chunk_bytes = 8 * 1024;
  options.checkpoint_path = checkpoint;

  // Leave a checkpoint behind from a killed run over the pristine corpus.
  obs::RunContext killed_ctx;
  EXPECT_THROW(
      pipeline_->run(
          core::StudyInput::sources(make_killing_source(ssl_text_, 3),
                                    core::make_text_source(*x509_text_)),
          options, &killed_ctx),
      std::runtime_error);
  ASSERT_TRUE(core::read_file_text(checkpoint).has_value());

  // Resuming over a corpus that differs *inside the folded prefix* must
  // reject the checkpoint and restart clean. (Damage beyond the prefix would
  // legitimately resume — the prefix digest only vouches for what was
  // folded.)
  std::string damaged_ssl = *ssl_text_;
  damaged_ssl.insert(damaged_ssl.find('\n') + 1, "garbage\trow\n");
  const auto ref = reference_run(damaged_ssl, *x509_text_);
  obs::RunContext ctx;
  const core::StudyReport report = pipeline_->run(
      core::StudyInput::sources(core::make_text_source(damaged_ssl),
                                core::make_text_source(*x509_text_)),
      options, &ctx);
  EXPECT_EQ(ctx.metrics.counter("stream.resume.rejected"), 1u);
  EXPECT_EQ(ctx.metrics.counter("stream.resume.loaded"), 0u);
  expect_matches_reference(*ref, report, ctx, "rejected resume");
  std::remove(checkpoint.c_str());
}

TEST_F(StreamingDiffTest, AnalyzeOverPrebuiltCorpusMatchesUnifiedRun) {
  // The query-serving path (DESIGN.md §12) folds connections into a live
  // CorpusIndex and re-analyzes it via the public analyze() entry; the
  // result must be indistinguishable from a full run over the same records.
  const core::StudyReport reference =
      pipeline_->run(core::StudyInput::records(logs_->ssl, logs_->x509));
  const zeek::LogJoiner joiner(logs_->x509);
  core::CorpusIndex corpus;
  for (const auto& record : logs_->ssl) corpus.add(joiner.join(record));
  const core::StudyReport analyzed = pipeline_->analyze(corpus);
  EXPECT_EQ(render(analyzed), render(reference));
  EXPECT_EQ(analyzed.unique_chains, reference.unique_chains);
}

// --- LogSource units -------------------------------------------------------

TEST(StreamingSources, TextSourceChunksSeeksAndReportsSize) {
  const std::string text = "abcdefghij";
  const auto source = core::make_text_source(text, "ten");
  EXPECT_EQ(source->name(), "ten");
  EXPECT_EQ(source->size_hint(), 10u);

  std::string out;
  EXPECT_EQ(source->read(out, 4), 4u);
  EXPECT_EQ(out, "abcd");
  EXPECT_EQ(source->read(out, 4), 4u);
  EXPECT_EQ(out, "efgh");
  EXPECT_EQ(source->read(out, 4), 2u);
  EXPECT_EQ(out, "ij");
  EXPECT_EQ(source->read(out, 4), 0u);

  ASSERT_TRUE(source->seek(6));
  EXPECT_EQ(source->read(out, 100), 4u);
  EXPECT_EQ(out, "ghij");
  EXPECT_FALSE(source->seek(11));
  ASSERT_TRUE(source->seek(10));  // EOF position is addressable
  EXPECT_EQ(source->read(out, 1), 0u);
}

TEST(StreamingSources, FileSourceRoundTripsAndSeeks) {
  const std::string path = temp_path("source.bin");
  const std::string payload = "0123456789ABCDEF";
  ASSERT_TRUE(write_file(path, payload));
  const auto source = core::open_file_source(path);
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->size_hint(), payload.size());

  std::string out, all;
  while (source->read(out, 5) > 0) all += out;
  EXPECT_EQ(all, payload);
  ASSERT_TRUE(source->seek(10));
  EXPECT_EQ(source->read(out, 100), 6u);
  EXPECT_EQ(out, "ABCDEF");
  std::remove(path.c_str());

  EXPECT_EQ(core::open_file_source(temp_path("missing.bin")), nullptr);
}

TEST(StreamingSources, FunctionSourceRewindsToZeroOnly) {
  const std::string text = "stream me";
  std::size_t offset = 0;
  const auto source = core::make_function_source(
      [&text, &offset](std::string& out, std::size_t max_bytes) {
        const std::size_t n = std::min(max_bytes, text.size() - offset);
        out.assign(text, offset, n);
        offset += n;
        return n;
      },
      "cb", [&offset] { offset = 0; });

  std::string out;
  EXPECT_EQ(source->read(out, 6), 6u);
  ASSERT_TRUE(source->seek(0));
  EXPECT_EQ(source->read(out, 100), text.size());
  EXPECT_EQ(out, text);
  EXPECT_FALSE(source->seek(3));  // only a full rewind is supported
}

// --- reader + codec units --------------------------------------------------

TEST(StreamingReaderCheckpoint, RestoredReaderIsIndistinguishable) {
  // A stream with damage, rotation, and a checkpoint boundary that lands
  // mid-line: the restored reader must finish exactly like the original.
  zeek::SslLogWriter writer;
  zeek::SslLogRecord record;
  record.ts = 1600000000;
  record.uid = "Cone";
  record.id_orig_h = "10.0.0.1";
  record.id_resp_h = "198.51.100.1";
  record.id_resp_p = 443;
  record.version = "TLSv12";
  writer.add(record);
  record.uid = "Ctwo";
  writer.add(record);
  std::string text = writer.finish();
  const std::size_t cone = text.find("Cone");
  ASSERT_NE(cone, std::string::npos);
  const std::size_t body = text.rfind('\n', cone) + 1;  // line start
  text.insert(body, "damaged\trow\n");

  const auto collect = [](const std::string& stream,
                          std::size_t split) -> std::pair<std::vector<std::string>,
                                                          zeek::ReaderCheckpoint> {
    std::vector<std::string> uids;
    auto first = zeek::make_streaming_ssl_reader(
        [&uids](zeek::SslLogRecord r) { uids.push_back(r.uid); });
    first.feed(std::string_view(stream).substr(0, split));
    const zeek::ReaderCheckpoint state = first.checkpoint();

    auto second = zeek::make_streaming_ssl_reader(
        [&uids](zeek::SslLogRecord r) { uids.push_back(r.uid); });
    second.restore(state);
    second.feed(std::string_view(stream).substr(split));
    second.finish();
    zeek::ReaderCheckpoint final_state = second.checkpoint();
    final_state.buffer.clear();  // finish() consumed it
    return {uids, final_state};
  };

  // One-shot reference: split at 0 (restore of a fresh checkpoint).
  const auto [ref_uids, ref_state] = collect(text, 0);
  EXPECT_EQ(ref_uids, (std::vector<std::string>{"Cone", "Ctwo"}));
  ASSERT_EQ(ref_state.malformed_rows, 1u);

  for (const std::size_t split : {1ul, body, body + 3, text.size() - 2}) {
    const auto [uids, state] = collect(text, split);
    EXPECT_EQ(uids, ref_uids) << "split at " << split;
    EXPECT_EQ(state.lines_seen, ref_state.lines_seen) << split;
    EXPECT_EQ(state.records_emitted, ref_state.records_emitted) << split;
    EXPECT_EQ(state.malformed_rows, ref_state.malformed_rows) << split;
    EXPECT_EQ(state.rotations_seen, ref_state.rotations_seen) << split;
    ASSERT_EQ(state.errors.size(), ref_state.errors.size()) << split;
    for (std::size_t i = 0; i < state.errors.size(); ++i) {
      EXPECT_EQ(state.errors[i].line_number, ref_state.errors[i].line_number);
      EXPECT_EQ(state.errors[i].message, ref_state.errors[i].message);
    }
  }
}

TEST(StreamingCheckpointCodec, RoundTripsAndRejectsDamage) {
  core::StreamCheckpoint checkpoint;
  checkpoint.mode = core::IngestMode::kStrict;
  checkpoint.x509_digest = util::fnv1a64("x509");
  checkpoint.ssl_digest_state = util::fnv1a64("ssl");
  checkpoint.ssl_offset = 123456789;
  checkpoint.chunks_done = 7;
  checkpoint.ssl_reader.buffer = "partial\tline";
  checkpoint.ssl_reader.in_body = true;
  checkpoint.ssl_reader.line_offset = 42;
  checkpoint.ssl_reader.malformed_rows = 3;
  checkpoint.ssl_reader.errors.push_back({17, "wrong column count"});

  const core::CorpusIndex corpus;  // chains are covered by the resume tests
  const std::string encoded = core::encode_stream_checkpoint(checkpoint, corpus);

  std::map<std::string, x509::Certificate> by_fingerprint;
  core::CorpusIndex restored_corpus;
  std::string error;
  const auto decoded = core::decode_stream_checkpoint(encoded, by_fingerprint,
                                                      restored_corpus, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->mode, core::IngestMode::kStrict);
  EXPECT_EQ(decoded->x509_digest, checkpoint.x509_digest);
  EXPECT_EQ(decoded->ssl_digest_state, checkpoint.ssl_digest_state);
  EXPECT_EQ(decoded->ssl_offset, checkpoint.ssl_offset);
  EXPECT_EQ(decoded->chunks_done, checkpoint.chunks_done);
  EXPECT_EQ(decoded->ssl_reader.buffer, "partial\tline");
  EXPECT_TRUE(decoded->ssl_reader.in_body);
  EXPECT_EQ(decoded->ssl_reader.line_offset, 42u);
  EXPECT_EQ(decoded->ssl_reader.malformed_rows, 3u);
  ASSERT_EQ(decoded->ssl_reader.errors.size(), 1u);
  EXPECT_EQ(decoded->ssl_reader.errors[0].line_number, 17u);
  EXPECT_EQ(decoded->ssl_reader.errors[0].message, "wrong column count");

  // Not JSON, wrong schema, and truncation all fail with a reason.
  core::CorpusIndex scratch;
  EXPECT_FALSE(core::decode_stream_checkpoint("not json", by_fingerprint,
                                              scratch, &error));
  EXPECT_FALSE(error.empty());
  std::string wrong_schema = encoded;
  const std::size_t at = wrong_schema.find("certchain.stream.checkpoint");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, 9, "elsewhere");
  EXPECT_FALSE(core::decode_stream_checkpoint(wrong_schema, by_fingerprint,
                                              scratch, &error));
  EXPECT_FALSE(core::decode_stream_checkpoint(
      encoded.substr(0, encoded.size() / 2), by_fingerprint, scratch, &error));
}

TEST(StreamingCheckpointCodec, WriteIsAtomicAndReadableBack) {
  const std::string path = temp_path("atomic.ckpt");
  core::StreamCheckpoint checkpoint;
  checkpoint.ssl_offset = 99;
  const core::CorpusIndex corpus;
  ASSERT_TRUE(core::write_stream_checkpoint(path, checkpoint, corpus));
  const auto text = core::read_file_text(path);
  ASSERT_TRUE(text.has_value());

  std::map<std::string, x509::Certificate> by_fingerprint;
  core::CorpusIndex restored;
  std::string error;
  const auto decoded =
      core::decode_stream_checkpoint(*text, by_fingerprint, restored, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->ssl_offset, 99u);
  // No .tmp sibling left behind.
  EXPECT_FALSE(core::read_file_text(path + ".tmp").has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace certchain
