// The svc chaos harness (DESIGN.md §13.5): a fault-injecting loopback proxy
// between Client and Server, driven by the same seeded netsim::FaultPlan
// vocabulary the resilient-scanning path uses. The contracts:
//
//  * transparency — the zero-fault plan is the identity: every byte flows
//    through untouched and answers match a direct connection exactly;
//  * survival — a storm of severed, truncated, corrupted and stalled
//    connections never crashes the server, never corrupts its corpus, and
//    leaves the stage.svc.requests.{in,admitted,dropped} triple reconciling;
//  * resilience — a retrying client with an idempotency key pushes an
//    append through flaky transport and the server folds it exactly once;
//  * deadlines — a peer stalled mid-frame trips the server's request
//    deadline: typed DEADLINE_EXCEEDED (or a hangup), counted, within
//    bounded time.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "../tests/helpers.hpp"
#include "ct/ct_log.hpp"
#include "netsim/faults.hpp"
#include "svc/chaos.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service_state.hpp"
#include "svc/telemetry.hpp"
#include "zeek/log_io.hpp"

namespace certchain {
namespace {

/// One parseable SSL body row — the smallest real batch an append can carry.
std::string chaos_ssl_row() {
  zeek::SslLogRecord record;
  record.ts = 1;
  record.uid = "Cchaos1";
  record.id_orig_h = "10.0.0.1";
  record.id_orig_p = 40001;
  record.id_resp_h = "192.0.2.1";
  record.id_resp_p = 443;
  record.version = "TLSv12";
  record.server_name = "chaos.example.test";
  record.established = true;
  zeek::SslLogWriter writer;
  writer.add(record);
  const std::string text = writer.finish();
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin && text[begin] != '#') return text.substr(begin, end - begin);
    begin = end + 1;
  }
  ADD_FAILURE() << "writer produced no body row";
  return {};
}

class SvcChaosTest : public ::testing::Test {
 protected:
  void start_server(svc::ServerOptions options) {
    stores_ = pki_.trusted_stores();
    state_ = std::make_unique<svc::ServiceState>(stores_, ct_logs_, vendors_);
    state_->load({}, {});  // transport faults need no corpus
    options.workers = 2;
    server_ = std::make_unique<svc::Server>(*state_, telemetry_, options);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void start_proxy(netsim::FaultPlan plan, std::uint32_t stall_cap_ms = 0) {
    proxy_ = std::make_unique<svc::ChaosProxy>("127.0.0.1", server_->port(),
                                               std::move(plan));
    if (stall_cap_ms > 0) proxy_->set_stall_cap_ms(stall_cap_ms);
    std::string error;
    ASSERT_TRUE(proxy_->start(&error)) << error;
  }

  void TearDown() override {
    if (proxy_ != nullptr) proxy_->stop();
    if (server_ != nullptr) {
      server_->request_stop();
      server_->wait();
    }
  }

  svc::Client connect_direct() {
    svc::Client client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", server_->port(), &error)) << error;
    return client;
  }

  svc::Client connect_via_proxy(std::uint32_t timeout_ms) {
    svc::Client client;
    client.set_timeout_ms(timeout_ms);
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", proxy_->port(), &error)) << error;
    return client;
  }

  /// The FaultPlan key the proxy consults for this server.
  std::string upstream_target() const {
    return "127.0.0.1:" + std::to_string(server_->port());
  }

  void expect_triple_reconciles() {
    const std::uint64_t in = telemetry_.counter("stage.svc.requests.in");
    const std::uint64_t admitted =
        telemetry_.counter("stage.svc.requests.admitted");
    const std::uint64_t dropped =
        telemetry_.counter("stage.svc.requests.dropped");
    EXPECT_EQ(in, admitted + dropped)
        << "in=" << in << " admitted=" << admitted << " dropped=" << dropped;
  }

  testing::TestPki pki_;
  truststore::TrustStoreSet stores_;
  ct::CtLogSet ct_logs_;
  core::VendorDirectory vendors_;
  svc::SyncTelemetry telemetry_;
  std::unique_ptr<svc::ServiceState> state_;
  std::unique_ptr<svc::Server> server_;
  std::unique_ptr<svc::ChaosProxy> proxy_;
};

TEST_F(SvcChaosTest, ZeroFaultPlanIsFullyTransparent) {
  start_server({});
  start_proxy(netsim::FaultPlan{});  // the default plan injects nothing

  svc::Client direct = connect_direct();
  const auto direct_report = direct.report_section("totals");
  ASSERT_TRUE(direct_report.has_value());
  ASSERT_TRUE(direct_report->ok);

  svc::Client proxied = connect_via_proxy(2000);
  const auto pong = proxied.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);
  const auto proxied_report = proxied.report_section("totals");
  ASSERT_TRUE(proxied_report.has_value());
  ASSERT_TRUE(proxied_report->ok);
  EXPECT_EQ(proxied_report->payload.find("text")->string,
            direct_report->payload.find("text")->string);
  proxied.close();

  proxy_->stop();  // joins every link; stats are final
  const svc::ChaosStats stats = proxy_->stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.clean, 1u);
  EXPECT_EQ(stats.refused + stats.severed + stats.truncated + stats.corrupted +
                stats.stalled,
            0u);
  EXPECT_GT(stats.bytes_forwarded, 0u);
}

TEST_F(SvcChaosTest, SeededChaosSoakNeverKillsTheServer) {
  svc::ServerOptions options;
  options.request_deadline_ms = 250;
  start_server(options);

  // The corpus is read-only during the soak, so the report must be
  // byte-identical before and after no matter what the transport does.
  svc::Client direct = connect_direct();
  const auto before = direct.report_section("full");
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(before->ok);
  const std::string baseline = before->payload.find("text")->string;

  netsim::FaultRates rates;
  rates.connection_reset = 0.15;
  rates.truncated_handshake = 0.15;
  rates.byte_corruption = 0.20;
  rates.transient_unreachable = 0.10;
  rates.slow_response = 0.15;
  // Stalls capped well under the deadline: slow connections should succeed.
  start_proxy(netsim::FaultPlan(0xC11A05, rates), /*stall_cap_ms=*/50);

  constexpr int kConnections = 24;
  int answered = 0;
  for (int i = 0; i < kConnections; ++i) {
    svc::Client client = connect_via_proxy(2000);
    const auto pong = client.ping();
    if (pong.has_value() && pong->ok) ++answered;
  }

  // The server survived, still answers directly, and its corpus is intact.
  const auto pong = direct.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);
  const auto after = direct.report_section("full");
  ASSERT_TRUE(after.has_value());
  ASSERT_TRUE(after->ok);
  EXPECT_EQ(after->payload.find("text")->string, baseline);
  expect_triple_reconciles();

  proxy_->stop();
  const svc::ChaosStats stats = proxy_->stats();
  EXPECT_EQ(stats.connections, static_cast<std::uint64_t>(kConnections));
  // Every accepted connection got exactly one outcome.
  EXPECT_EQ(stats.refused + stats.severed + stats.truncated + stats.corrupted +
                stats.stalled + stats.clean,
            static_cast<std::uint64_t>(kConnections));
  // The plan really injected faults AND some requests really got through —
  // a soak where either side is silent proves nothing.
  EXPECT_GT(stats.connections - stats.clean, 0u);
  EXPECT_GT(answered, 0);
}

TEST_F(SvcChaosTest, RetryingClientFoldsAnAppendExactlyOnceThroughFlakyTransport) {
  start_server({});

  netsim::FaultRates rates;
  rates.connection_reset = 0.55;
  const std::uint64_t seed = 20250808;
  start_proxy(netsim::FaultPlan(seed, rates));

  // The proxy decides per accepted connection; the retrying client dials a
  // fresh connection per attempt, so attempt i sees connection i. Find the
  // first clean one so the retry budget is provably sufficient.
  const netsim::FaultPlan probe(seed, rates);
  std::size_t clean_at = 99;
  for (std::uint32_t i = 0; i < 10; ++i) {
    if (probe.decide(upstream_target(), i).kind == netsim::FaultKind::kNone) {
      clean_at = i;
      break;
    }
  }
  ASSERT_LT(clean_at, 10u) << "seed produced no clean connection in 10 tries";

  svc::Client client = connect_via_proxy(1000);
  svc::RetryOptions retry;
  retry.max_attempts = clean_at + 2;
  retry.base_backoff_ms = 5;
  retry.max_backoff_ms = 20;
  client.set_retry(retry);

  const std::uint64_t generation_before = state_->generation();
  const auto response = client.ingest_append({chaos_ssl_row()}, {}, "chaos-batch-1");
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->ok) << response->error_message;
  // However many times the transport made the client resend, the fold
  // happened exactly once.
  EXPECT_EQ(state_->generation(), generation_before + 1);
  if (clean_at > 0) {
    EXPECT_GT(client.retries_performed(), 0u);
  }

  // An explicit application-level retry of the same key is answered from
  // the idempotency ledger without another fold.
  const auto duplicate = client.ingest_append({chaos_ssl_row()}, {}, "chaos-batch-1");
  ASSERT_TRUE(duplicate.has_value());
  ASSERT_TRUE(duplicate->ok) << duplicate->error_message;
  const obs::json::Value* flag = duplicate->payload.find("duplicate");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(flag->kind == obs::json::Value::Kind::kBool && flag->boolean);
  EXPECT_EQ(state_->generation(), generation_before + 1);
}

TEST_F(SvcChaosTest, MidFrameStallTripsTheRequestDeadline) {
  svc::ServerOptions options;
  options.request_deadline_ms = 120;
  start_server(options);

  netsim::FaultRates rates;
  rates.slow_response = 1.0;  // every connection trickles its first chunk
  // The stall (600 ms) far exceeds the deadline (120 ms): the server must
  // give up on the half-delivered frame, not wait for the rest.
  start_proxy(netsim::FaultPlan(1, rates), /*stall_cap_ms=*/600);

  svc::Client client = connect_via_proxy(3000);
  const auto pong = client.ping();
  // Depending on whether the proxy managed to relay the server's parting
  // frame, the client sees the typed error or a dead connection — never a
  // success, and never a multi-second hang.
  if (pong.has_value()) {
    EXPECT_FALSE(pong->ok);
    EXPECT_EQ(pong->error, svc::ErrorCode::kDeadlineExceeded);
  }

  // The stall was counted; a half-frame never counts into requests.in.
  for (int waited = 0; waited < 100; ++waited) {
    if (telemetry_.counter("svc.connections.stalled_closed") > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(telemetry_.counter("svc.connections.stalled_closed"), 1u);
  EXPECT_EQ(telemetry_.counter("stage.svc.requests.in"), 0u);
  expect_triple_reconciles();

  // The server itself is unharmed: a direct request still answers.
  svc::Client direct = connect_direct();
  const auto direct_pong = direct.ping();
  ASSERT_TRUE(direct_pong.has_value());
  EXPECT_TRUE(direct_pong->ok);
}

}  // namespace
}  // namespace certchain
