// The certchain.svc.wire v1 codec contract (DESIGN.md §12.2), then the same
// contract enforced against a live server socket: malformed frames —
// truncated headers, oversized declared lengths, unknown types, wrong
// versions, wrong magic — must come back as *typed* error frames (or close
// the connection when framing is unrecoverable) and must never crash the
// server or leak its connection slots.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "../tests/helpers.hpp"
#include "ct/ct_log.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service_state.hpp"
#include "svc/telemetry.hpp"
#include "util/rng.hpp"

namespace certchain {
namespace {

using svc::DecodeResult;
using svc::ErrorCode;
using svc::Frame;
using svc::FrameReader;
using svc::MessageType;

std::optional<ErrorCode> error_code_of(const std::string& payload) {
  const auto parsed = obs::json::parse(payload);
  if (!parsed.has_value()) return std::nullopt;
  const obs::json::Value* code = parsed->find("code");
  if (code == nullptr) return std::nullopt;
  for (const ErrorCode candidate :
       {ErrorCode::kBadMagic, ErrorCode::kBadVersion, ErrorCode::kBadType,
        ErrorCode::kOversized, ErrorCode::kBadPayload, ErrorCode::kOverloaded,
        ErrorCode::kShuttingDown, ErrorCode::kInternal,
        ErrorCode::kDeadlineExceeded}) {
    if (code->string == svc::error_code_name(candidate)) return candidate;
  }
  return std::nullopt;
}

TEST(SvcProtocolTest, RoundTripsEveryRequestType) {
  for (const MessageType type :
       {MessageType::kPing, MessageType::kClassifyIssuer,
        MessageType::kCategorizeChain, MessageType::kReportSection,
        MessageType::kIngestAppend, MessageType::kMetrics,
        MessageType::kShutdown}) {
    const std::string payload = "{\"probe\":\"" +
                                std::string(message_type_name(type)) + "\"}";
    FrameReader reader;
    reader.feed(svc::encode_frame(type, payload));
    const DecodeResult decoded = reader.next();
    ASSERT_EQ(decoded.status, DecodeResult::Status::kFrame);
    EXPECT_EQ(decoded.frame.type, type);
    EXPECT_EQ(decoded.frame.payload, payload);
    EXPECT_EQ(reader.buffered_bytes(), 0u);
  }
}

TEST(SvcProtocolTest, DecodesByteByByteDelivery) {
  const std::string wire = svc::encode_frame(MessageType::kPing, "{}") +
                           svc::encode_frame(MessageType::kMetrics, "");
  FrameReader reader;
  std::vector<Frame> frames;
  for (const char byte : wire) {
    reader.feed(std::string_view(&byte, 1));
    const DecodeResult decoded = reader.next();
    if (decoded.status == DecodeResult::Status::kFrame) {
      frames.push_back(decoded.frame);
    } else {
      ASSERT_EQ(decoded.status, DecodeResult::Status::kNeedMore);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, MessageType::kPing);
  EXPECT_EQ(frames[0].payload, "{}");
  EXPECT_EQ(frames[1].type, MessageType::kMetrics);
  EXPECT_EQ(frames[1].payload, "");
}

TEST(SvcProtocolTest, TruncatedHeaderIsNeedMoreNotError) {
  const std::string wire = svc::encode_frame(MessageType::kPing, "{}");
  FrameReader reader;
  reader.feed(std::string_view(wire).substr(0, svc::kHeaderBytes - 1));
  EXPECT_EQ(reader.next().status, DecodeResult::Status::kNeedMore);
  reader.feed(std::string_view(wire).substr(svc::kHeaderBytes - 1));
  EXPECT_EQ(reader.next().status, DecodeResult::Status::kFrame);
}

TEST(SvcProtocolTest, BadMagicIsDetectedBeforeFullHeaderArrives) {
  FrameReader reader;
  reader.feed("XSV");  // three bytes, already provably not CSVC
  const DecodeResult decoded = reader.next();
  ASSERT_EQ(decoded.status, DecodeResult::Status::kError);
  EXPECT_EQ(decoded.error, ErrorCode::kBadMagic);
  EXPECT_FALSE(decoded.recoverable);
}

TEST(SvcProtocolTest, BadVersionIsUnrecoverable) {
  std::string wire = svc::encode_frame(MessageType::kPing, "{}");
  wire[4] = 99;
  FrameReader reader;
  reader.feed(wire);
  const DecodeResult decoded = reader.next();
  ASSERT_EQ(decoded.status, DecodeResult::Status::kError);
  EXPECT_EQ(decoded.error, ErrorCode::kBadVersion);
  EXPECT_FALSE(decoded.recoverable);
}

TEST(SvcProtocolTest, OversizedDeclaredLengthIsRejectedWithoutAllocating) {
  std::string wire = svc::encode_frame(MessageType::kPing, "");
  wire[8] = '\x7F';  // declares a ~2 GiB payload
  wire[9] = wire[10] = wire[11] = '\xFF';
  FrameReader reader;
  reader.feed(wire);
  const DecodeResult decoded = reader.next();
  ASSERT_EQ(decoded.status, DecodeResult::Status::kError);
  EXPECT_EQ(decoded.error, ErrorCode::kOversized);
  EXPECT_FALSE(decoded.recoverable);
}

TEST(SvcProtocolTest, UnknownTypeIsRecoverableAndStreamContinues) {
  std::string unknown = svc::encode_frame(MessageType::kPing, "{}");
  unknown[5] = 0x55;
  FrameReader reader;
  reader.feed(unknown + svc::encode_frame(MessageType::kPing, "{}"));
  const DecodeResult first = reader.next();
  ASSERT_EQ(first.status, DecodeResult::Status::kError);
  EXPECT_EQ(first.error, ErrorCode::kBadType);
  EXPECT_TRUE(first.recoverable);
  const DecodeResult second = reader.next();
  ASSERT_EQ(second.status, DecodeResult::Status::kFrame);
  EXPECT_EQ(second.frame.type, MessageType::kPing);
}

TEST(SvcProtocolTest, ErrorFramesCarryTheTypedCodeSlug) {
  FrameReader reader;
  reader.feed(svc::encode_error(ErrorCode::kOverloaded, "try later"));
  const DecodeResult decoded = reader.next();
  ASSERT_EQ(decoded.status, DecodeResult::Status::kFrame);
  ASSERT_EQ(decoded.frame.type, MessageType::kError);
  EXPECT_EQ(error_code_of(decoded.frame.payload), ErrorCode::kOverloaded);
}

// ---------------------------------------------------------------------------
// Server-level damage handling over a real loopback socket.

class SvcProtocolServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stores_ = pki_.trusted_stores();
    state_ = std::make_unique<svc::ServiceState>(stores_, ct_logs_, vendors_);
    state_->load({}, {});  // an empty corpus serves protocol probes fine
    svc::ServerOptions options;
    options.workers = 2;
    server_ = std::make_unique<svc::Server>(*state_, telemetry_, options);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override {
    server_->request_stop();
    server_->wait();
  }

  svc::Client connect() {
    svc::Client client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", server_->port(), &error)) << error;
    return client;
  }

  testing::TestPki pki_;
  truststore::TrustStoreSet stores_;
  ct::CtLogSet ct_logs_;
  core::VendorDirectory vendors_;
  svc::SyncTelemetry telemetry_;
  std::unique_ptr<svc::ServiceState> state_;
  std::unique_ptr<svc::Server> server_;
};

TEST_F(SvcProtocolServerTest, UnknownTypeGetsTypedErrorAndConnectionSurvives) {
  svc::Client client = connect();
  std::string unknown = svc::encode_frame(MessageType::kPing, "{}");
  unknown[5] = 0x42;
  ASSERT_TRUE(client.send_raw(unknown));
  const auto reply = client.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MessageType::kError);
  EXPECT_EQ(error_code_of(reply->payload), ErrorCode::kBadType);

  // Same connection keeps serving.
  const auto pong = client.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);
}

TEST_F(SvcProtocolServerTest, BadVersionGetsTypedErrorThenHangup) {
  svc::Client client = connect();
  std::string wire = svc::encode_frame(MessageType::kPing, "{}");
  wire[4] = 2;
  ASSERT_TRUE(client.send_raw(wire));
  const auto reply = client.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MessageType::kError);
  EXPECT_EQ(error_code_of(reply->payload), ErrorCode::kBadVersion);
  // Framing is lost; the server hangs up after the typed error.
  EXPECT_FALSE(client.read_frame().has_value());
}

TEST_F(SvcProtocolServerTest, BadMagicGetsTypedErrorThenHangup) {
  svc::Client client = connect();
  ASSERT_TRUE(client.send_raw("GET / HTTP/1.1\r\n\r\n"));
  const auto reply = client.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MessageType::kError);
  EXPECT_EQ(error_code_of(reply->payload), ErrorCode::kBadMagic);
  EXPECT_FALSE(client.read_frame().has_value());
}

TEST_F(SvcProtocolServerTest, OversizedDeclaredLengthGetsTypedErrorThenHangup) {
  svc::Client client = connect();
  std::string wire = svc::encode_frame(MessageType::kPing, "");
  wire[8] = '\x7F';
  wire[9] = wire[10] = wire[11] = '\xFF';
  ASSERT_TRUE(client.send_raw(wire));
  const auto reply = client.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MessageType::kError);
  EXPECT_EQ(error_code_of(reply->payload), ErrorCode::kOversized);
  EXPECT_FALSE(client.read_frame().has_value());
}

TEST_F(SvcProtocolServerTest, TruncatedHeaderThenDisconnectLeaksNothing) {
  {
    svc::Client client = connect();
    ASSERT_TRUE(client.send_raw("CSVC"));  // valid prefix, never completed
  }  // client closes mid-header
  // The server must have survived: a fresh connection works.
  svc::Client probe = connect();
  const auto pong = probe.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);
}

TEST_F(SvcProtocolServerTest, MalformedJsonPayloadGetsBadPayloadAndSurvives) {
  svc::Client client = connect();
  const auto reply =
      client.call(MessageType::kClassifyIssuer, "this is not json");
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->frame.type, MessageType::kError);
  EXPECT_EQ(reply->error, ErrorCode::kBadPayload);

  const auto pong = client.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);
}

TEST_F(SvcProtocolServerTest, MissingFieldsGetBadPayload) {
  svc::Client client = connect();
  const auto no_issuer = client.call(MessageType::kClassifyIssuer, "{}");
  ASSERT_TRUE(no_issuer.has_value());
  EXPECT_EQ(no_issuer->error, ErrorCode::kBadPayload);

  const auto empty_chain = client.call(MessageType::kCategorizeChain, "{}");
  ASSERT_TRUE(empty_chain.has_value());
  EXPECT_EQ(empty_chain->error, ErrorCode::kBadPayload);

  const auto bad_section =
      client.call(MessageType::kReportSection, "{\"section\":\"bogus\"}");
  ASSERT_TRUE(bad_section.has_value());
  EXPECT_EQ(bad_section->error, ErrorCode::kBadPayload);

  const auto empty_append = client.call(MessageType::kIngestAppend, "{}");
  ASSERT_TRUE(empty_append.has_value());
  EXPECT_EQ(empty_append->error, ErrorCode::kBadPayload);
}

TEST_F(SvcProtocolServerTest, PipelinedRequestsAnswerInArrivalOrder) {
  // Four frames in one write: two served by workers, one answered by the
  // event loop itself (the recoverable bad-type error), one more worker
  // frame. The per-connection sequence machinery must interleave
  // loop-emitted errors and worker completions back into arrival order.
  svc::Client client = connect();
  std::string bad_type = svc::encode_frame(MessageType::kPing, "{}");
  bad_type[5] = 0x42;
  const std::string wire = svc::encode_frame(MessageType::kPing, "{}") +
                           bad_type +
                           svc::encode_frame(MessageType::kMetrics, "{}") +
                           svc::encode_frame(MessageType::kPing, "{}");
  ASSERT_TRUE(client.send_raw(wire));

  const MessageType expected[] = {MessageType::kPingOk, MessageType::kError,
                                  MessageType::kMetricsOk,
                                  MessageType::kPingOk};
  for (const MessageType want : expected) {
    const auto reply = client.read_frame();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, want);
    if (want == MessageType::kError) {
      EXPECT_EQ(error_code_of(reply->payload), ErrorCode::kBadType);
    }
  }
}

TEST_F(SvcProtocolServerTest, ByteAtATimeDeliveryStillAnswersInOrder) {
  // The peer dribbles two pipelined requests one byte at a time with pauses,
  // so the loop sees dozens of partial reads and must resume the frame
  // decoder mid-header and mid-payload every time.
  svc::Client client = connect();
  const std::string wire =
      svc::encode_frame(MessageType::kPing, "{\"dribbled\":true}") +
      svc::encode_frame(MessageType::kMetrics, "");
  for (std::size_t at = 0; at < wire.size(); ++at) {
    ASSERT_TRUE(client.send_raw(std::string_view(wire).substr(at, 1)));
    if (at % 5 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto pong = client.read_frame();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->type, MessageType::kPingOk);
  const auto metrics = client.read_frame();
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->type, MessageType::kMetricsOk);
}

TEST_F(SvcProtocolServerTest,
       MidPayloadStallGetsDeadlineExceededWhileOthersKeepServing) {
  // One connection stalls halfway through a declared payload; a healthy
  // connection pings throughout. The stalled peer earns a typed
  // DEADLINE_EXCEEDED and a close; the healthy one never notices.
  svc::SyncTelemetry stall_telemetry;
  svc::ServerOptions options;
  options.workers = 2;
  options.request_deadline_ms = 120;
  svc::Server server(*state_, stall_telemetry, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  svc::Client healthy;
  ASSERT_TRUE(healthy.connect("127.0.0.1", server.port(), &error)) << error;
  svc::Client staller;
  staller.set_timeout_ms(2000);
  ASSERT_TRUE(staller.connect("127.0.0.1", server.port(), &error)) << error;

  const std::string wire =
      svc::encode_frame(MessageType::kPing, "{\"stalled\":true}");
  ASSERT_TRUE(staller.send_raw(
      std::string_view(wire).substr(0, svc::kHeaderBytes + 4)));

  std::atomic<bool> stop_pinging{false};
  std::thread pinger([&] {
    while (!stop_pinging.load()) {
      const auto pong = healthy.ping();
      ASSERT_TRUE(pong.has_value());
      EXPECT_TRUE(pong->ok);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  const auto reply = staller.read_frame();
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MessageType::kError);
  EXPECT_EQ(error_code_of(reply->payload), ErrorCode::kDeadlineExceeded);
  EXPECT_FALSE(staller.read_frame().has_value());  // then the close

  stop_pinging.store(true);
  pinger.join();
  EXPECT_EQ(stall_telemetry.counter("svc.connections.stalled_closed"), 1u);
  // The stalled frame never completed, so it never entered the admission
  // triple; everything that did was a healthy ping.
  EXPECT_EQ(stall_telemetry.counter("stage.svc.requests.in"),
            stall_telemetry.counter("stage.svc.requests.admitted"));
  server.request_stop();
  server.wait();
}

TEST_F(SvcProtocolServerTest, DamageStormNeverKillsTheServer) {
  // A burst of independently damaged connections; afterwards the server
  // still answers and its accounting still reconciles.
  const std::vector<std::string> attacks = {
      "",                                     // connect-and-close
      "C",                                    // 1-byte prefix
      "CSVC",                                 // magic only
      std::string(svc::kHeaderBytes, '\0'),   // all-zero header
      "CSVC\x01\x42\x00\x00\x00\x00\x00\x02hi",  // unknown type w/ payload
      std::string("CSVC") + '\x09' + std::string(7, '\0'),  // future version
  };
  for (const std::string& attack : attacks) {
    svc::Client client = connect();
    ASSERT_TRUE(client.connected());
    if (!attack.empty()) client.send_raw(attack);
  }
  svc::Client probe = connect();
  const auto pong = probe.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);

  const std::uint64_t in = telemetry_.counter("stage.svc.requests.in");
  const std::uint64_t admitted =
      telemetry_.counter("stage.svc.requests.admitted");
  const std::uint64_t dropped =
      telemetry_.counter("stage.svc.requests.dropped");
  EXPECT_EQ(in, admitted + dropped);
}

TEST_F(SvcProtocolServerTest, SeededRandomFrameCorpusNeverCrashesOrHangs) {
  // A seeded corpus of damaged wire bytes — truncated frames, lied-about
  // lengths, single bit flips, pure garbage — against a server with a short
  // request deadline, so even a valid-prefix-then-silence frame resolves
  // quickly. Every third connection dribbles its bytes in 1-3 byte chunks
  // with pauses (partial writes landing mid-header and mid-payload), so the
  // same damage also exercises the event loop's incremental decode path.
  // Every connection must end in a typed error frame, a real response, or a
  // clean close; never a crash, never an unbounded hang.
  svc::SyncTelemetry fuzz_telemetry;
  svc::ServerOptions options;
  options.workers = 2;
  options.request_deadline_ms = 100;
  svc::Server server(*state_, fuzz_telemetry, options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  util::Rng rng(0x5eedf2a7e5);
  for (int i = 0; i < 48; ++i) {
    std::string wire = svc::encode_frame(MessageType::kPing, "{\"n\":1}");
    switch (i % 4) {
      case 0:  // truncation at a random byte — a torn frame, then silence
        wire.resize(rng.next_below(wire.size()));
        break;
      case 1:  // a random declared length: oversized, lying, or zero
        for (std::size_t at = 8; at < 12; ++at) {
          wire[at] = static_cast<char>(rng.next_below(256));
        }
        break;
      case 2: {  // one flipped bit anywhere in the frame
        const std::size_t at = rng.next_below(wire.size());
        wire[at] ^= static_cast<char>(1u << rng.next_below(8));
        break;
      }
      default: {  // pure garbage of random length
        wire.resize(rng.next_below(64));
        for (char& byte : wire) byte = static_cast<char>(rng.next_below(256));
        break;
      }
    }

    svc::Client client;
    client.set_timeout_ms(500);  // bounds each read; a hang fails the test
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;
    if (i % 3 == 0) {
      for (std::size_t at = 0; at < wire.size();) {
        const std::size_t end =
            std::min(wire.size(), at + 1 + rng.next_below(3));
        if (!client.send_raw(std::string_view(wire).substr(at, end - at))) {
          break;  // server already hung up on provable damage — fine
        }
        at = end;
        if (at % 8 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    } else if (!wire.empty()) {
      client.send_raw(wire);
    }
    // Drain whatever comes back: every frame must be decodable, and every
    // error frame must carry a recognized typed code slug.
    for (int reads = 0; reads < 3; ++reads) {
      const auto frame = client.read_frame();
      if (!frame.has_value()) break;  // clean close (or bounded timeout)
      if (frame->type == MessageType::kError) {
        EXPECT_TRUE(error_code_of(frame->payload).has_value())
            << "iteration " << i << ": untyped error " << frame->payload;
      }
    }
  }

  // The server survived the corpus and still answers cleanly.
  svc::Client probe;
  ASSERT_TRUE(probe.connect("127.0.0.1", server.port(), &error)) << error;
  const auto pong = probe.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);
  const std::uint64_t in = fuzz_telemetry.counter("stage.svc.requests.in");
  const std::uint64_t admitted =
      fuzz_telemetry.counter("stage.svc.requests.admitted");
  const std::uint64_t dropped =
      fuzz_telemetry.counter("stage.svc.requests.dropped");
  EXPECT_EQ(in, admitted + dropped);
  server.request_stop();
  server.wait();
}

}  // namespace
}  // namespace certchain
