// The live query server's core contracts (DESIGN.md §12):
//
//  * differential — every answer the server gives (report sections, issuer
//    classes, chain categories) is byte-identical to what a batch
//    StudyPipeline run over the same records computes;
//  * concurrency — N clients querying while ingest_append folds new rows
//    never see torn state: every response carries a complete analysis
//    generation, and the final corpus equals the batch fold of all records;
//  * accounting — the stage.svc.requests.{in,admitted,dropped} triple
//    reconciles (in == admitted + dropped) at every point a test reads it;
//  * backpressure — a zero-capacity admission queue turns every request into
//    a typed OVERLOADED error, deterministically;
//  * drain — kShutdown answers, then the server drains and refuses new work.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chain/categorizer.hpp"
#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "core/study_input.hpp"
#include "datagen/scenario.hpp"
#include "obs/json.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service_state.hpp"
#include "svc/telemetry.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"

namespace certchain {
namespace {

/// Serializes one record to its raw TSV body row (what ingest_append eats).
template <typename Writer, typename Record>
std::string body_row(const Record& record) {
  Writer writer;
  writer.add(record);
  const std::string text = writer.finish();
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin && text[begin] != '#') return text.substr(begin, end - begin);
    begin = end + 1;
  }
  ADD_FAILURE() << "writer produced no body row";
  return {};
}

std::string ssl_row(const zeek::SslLogRecord& record) {
  return body_row<zeek::SslLogWriter>(record);
}

std::string x509_row(const zeek::X509LogRecord& record) {
  return body_row<zeek::X509LogWriter>(record);
}

std::uint64_t uint_field(const obs::json::Value& payload, const char* key) {
  const obs::json::Value* value = payload.find(key);
  if (value == nullptr || !value->is_number()) {
    ADD_FAILURE() << "missing numeric field " << key;
    return 0;
  }
  return static_cast<std::uint64_t>(value->num);
}

class SvcServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 20200901;
    config.chain_scale = 1.0 / 800.0;
    config.total_connections = 800;
    config.client_count = 100;
    config.include_length_outliers = false;
    scenario_ = datagen::build_study_scenario(config).release();
    logs_ = new netsim::GeneratedLogs(scenario_->generate_logs());
    pipeline_ = new core::StudyPipeline(
        scenario_->world.stores(), scenario_->world.ct_logs(),
        scenario_->vendors, &scenario_->world.cross_signs());
    batch_report_ = new core::StudyReport(
        pipeline_->run(core::StudyInput::records(logs_->ssl, logs_->x509)));
  }

  static void TearDownTestSuite() {
    delete batch_report_;
    delete pipeline_;
    delete logs_;
    delete scenario_;
    batch_report_ = nullptr;
    pipeline_ = nullptr;
    logs_ = nullptr;
    scenario_ = nullptr;
  }

  /// A fresh state + server over the given SSL prefix (all X509 records are
  /// always loaded up front so incremental SSL appends join identically to
  /// the batch fold, which indexes every certificate before joining).
  void start_server(std::size_t ssl_prefix, svc::ServerOptions options) {
    std::vector<zeek::SslLogRecord> initial(
        logs_->ssl.begin(),
        logs_->ssl.begin() + static_cast<std::ptrdiff_t>(ssl_prefix));
    state_ = std::make_unique<svc::ServiceState>(
        scenario_->world.stores(), scenario_->world.ct_logs(),
        scenario_->vendors, &scenario_->world.cross_signs());
    state_->load(initial, logs_->x509);
    telemetry_ = std::make_unique<svc::SyncTelemetry>();
    server_ = std::make_unique<svc::Server>(*state_, *telemetry_, options);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->request_stop();
      server_->wait();
    }
  }

  svc::Client connect() {
    svc::Client client;
    std::string error;
    EXPECT_TRUE(client.connect("127.0.0.1", server_->port(), &error)) << error;
    return client;
  }

  void expect_triple_reconciles() {
    const std::uint64_t in = telemetry_->counter("stage.svc.requests.in");
    const std::uint64_t admitted =
        telemetry_->counter("stage.svc.requests.admitted");
    const std::uint64_t dropped =
        telemetry_->counter("stage.svc.requests.dropped");
    EXPECT_EQ(in, admitted + dropped)
        << "in=" << in << " admitted=" << admitted << " dropped=" << dropped;
  }

  static core::StudyPipeline* pipeline_;
  static datagen::Scenario* scenario_;
  static netsim::GeneratedLogs* logs_;
  static core::StudyReport* batch_report_;

  std::unique_ptr<svc::ServiceState> state_;
  std::unique_ptr<svc::SyncTelemetry> telemetry_;
  std::unique_ptr<svc::Server> server_;
};

core::StudyPipeline* SvcServerTest::pipeline_ = nullptr;
datagen::Scenario* SvcServerTest::scenario_ = nullptr;
netsim::GeneratedLogs* SvcServerTest::logs_ = nullptr;
core::StudyReport* SvcServerTest::batch_report_ = nullptr;

TEST_F(SvcServerTest, ReportSectionsMatchBatchPipelineByteForByte) {
  start_server(logs_->ssl.size(), {});
  svc::Client client = connect();

  const auto full = client.report_section("full");
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(full->ok) << full->error_message;
  EXPECT_EQ(full->payload.find("text")->string,
            core::render_report_text(*batch_report_));

  core::ReportTextOptions categories_only;
  categories_only.totals = false;
  categories_only.interception = false;
  categories_only.hybrid = false;
  categories_only.non_public = false;
  categories_only.ct_compliance = false;
  categories_only.graphs = false;
  categories_only.data_quality = false;
  const auto categories = client.report_section("categories");
  ASSERT_TRUE(categories.has_value());
  ASSERT_TRUE(categories->ok);
  EXPECT_EQ(categories->payload.find("text")->string,
            core::render_report_text(*batch_report_, categories_only));
}

TEST_F(SvcServerTest, ClassifyIssuerMatchesTrustStoreClassification) {
  start_server(logs_->ssl.size(), {});
  svc::Client client = connect();

  std::size_t checked = 0;
  for (const zeek::X509LogRecord& record : logs_->x509) {
    if (checked >= 24) break;
    const x509::Certificate cert = zeek::certificate_from_record(record);
    const auto response = client.classify_issuer(cert.issuer.to_string());
    ASSERT_TRUE(response.has_value());
    ASSERT_TRUE(response->ok) << response->error_message;
    EXPECT_EQ(response->payload.find("class")->string,
              truststore::issuer_class_name(
                  scenario_->world.stores().classify_issuer(cert.issuer)));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(SvcServerTest, CategorizeChainMatchesBatchCategorizer) {
  start_server(logs_->ssl.size(), {});
  svc::Client client = connect();

  const chain::InterceptionIssuerSet issuers =
      batch_report_->interception.issuer_set();
  const zeek::LogJoiner joiner(logs_->x509);
  std::size_t checked = 0;
  for (const zeek::SslLogRecord& ssl : logs_->ssl) {
    if (checked >= 16) break;
    const zeek::JoinedConnection joined = joiner.join(ssl);
    if (!joined.complete() || joined.chain.empty()) continue;

    std::vector<std::string> rows;
    for (const std::string& fuid : ssl.cert_chain_fuids) {
      for (const zeek::X509LogRecord& record : logs_->x509) {
        if (record.fuid == fuid) {
          rows.push_back(x509_row(record));
          break;
        }
      }
    }
    const auto response = client.categorize_chain_rows(rows);
    ASSERT_TRUE(response.has_value());
    ASSERT_TRUE(response->ok) << response->error_message;
    EXPECT_EQ(response->payload.find("category")->string,
              chain::chain_category_name(chain::categorize_chain(
                  joined.chain, scenario_->world.stores(), issuers)));
    EXPECT_EQ(uint_field(response->payload, "length"), joined.chain.length());
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(SvcServerTest, IngestAppendFoldsRowsAndBumpsGeneration) {
  const std::size_t half = logs_->ssl.size() / 2;
  start_server(half, {});
  svc::Client client = connect();

  const auto before = client.ping();
  ASSERT_TRUE(before.has_value());
  const std::uint64_t generation_before =
      uint_field(before->payload, "generation");

  std::vector<std::string> rows;
  for (std::size_t i = half; i < half + 10 && i < logs_->ssl.size(); ++i) {
    rows.push_back(ssl_row(logs_->ssl[i]));
  }
  rows.push_back("definitely\tnot\ta\tparseable\tssl\trow");
  const auto append = client.ingest_append(rows, {});
  ASSERT_TRUE(append.has_value());
  ASSERT_TRUE(append->ok) << append->error_message;
  EXPECT_EQ(uint_field(append->payload, "ssl_added"), rows.size() - 1);
  EXPECT_EQ(uint_field(append->payload, "ssl_malformed"), 1u);
  EXPECT_EQ(uint_field(append->payload, "generation"), generation_before + 1);
}

TEST_F(SvcServerTest, ConcurrentQueriesAndIngestConvergeToTheBatchReport) {
  const std::size_t half = logs_->ssl.size() / 2;
  svc::ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 256;
  start_server(half, options);

  constexpr int kQueryThreads = 6;
  constexpr int kRequestsPerThread = 25;
  std::atomic<int> failures{0};

  std::thread ingest([&] {
    svc::Client client = connect();
    constexpr std::size_t kBatch = 40;
    for (std::size_t begin = half; begin < logs_->ssl.size(); begin += kBatch) {
      const std::size_t end = std::min(begin + kBatch, logs_->ssl.size());
      std::vector<std::string> rows;
      for (std::size_t i = begin; i < end; ++i) {
        rows.push_back(ssl_row(logs_->ssl[i]));
      }
      const auto response = client.ingest_append(rows, {});
      if (!response.has_value() || !response->ok) failures.fetch_add(1);
    }
  });

  std::vector<std::thread> queriers;
  for (int t = 0; t < kQueryThreads; ++t) {
    queriers.emplace_back([&, t] {
      svc::Client client = connect();
      std::uint64_t last_generation = 0;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        switch ((t + i) % 3) {
          case 0: {
            const auto response = client.ping();
            if (!response.has_value() || !response->ok) {
              failures.fetch_add(1);
              break;
            }
            // Generations never run backwards for any observer.
            const obs::json::Value* generation =
                response->payload.find("generation");
            if (generation == nullptr ||
                static_cast<std::uint64_t>(generation->num) < last_generation) {
              failures.fetch_add(1);
            } else {
              last_generation = static_cast<std::uint64_t>(generation->num);
            }
            break;
          }
          case 1: {
            const auto response = client.report_section("totals");
            if (!response.has_value() || !response->ok) failures.fetch_add(1);
            break;
          }
          default: {
            const auto response = client.classify_issuer(
                "CN=Test Issuing CA,O=TestPKI,C=US");
            if (!response.has_value() || !response->ok) failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }

  ingest.join();
  for (std::thread& thread : queriers) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // After the dust settles the live corpus must equal the batch fold of all
  // records — byte-identical report, same unique-chain population.
  svc::Client client = connect();
  const auto full = client.report_section("full");
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(full->ok);
  EXPECT_EQ(full->payload.find("text")->string,
            core::render_report_text(*batch_report_));

  expect_triple_reconciles();
  const std::uint64_t ingest_batches =
      static_cast<std::uint64_t>((logs_->ssl.size() - half + 39) / 40);
  const std::uint64_t query_requests =
      static_cast<std::uint64_t>(kQueryThreads) * kRequestsPerThread;
  EXPECT_EQ(telemetry_->counter("stage.svc.requests.in"),
            ingest_batches + query_requests + 1);  // +1: the report above
  const auto metrics = client.metrics();
  ASSERT_TRUE(metrics.has_value());
  ASSERT_TRUE(metrics->ok);
  EXPECT_NE(metrics->frame.payload.find("stage.svc.requests.admitted"),
            std::string::npos);
}

TEST_F(SvcServerTest, ZeroCapacityQueueRejectsEverythingWithOverloaded) {
  svc::ServerOptions options;
  options.queue_capacity = 0;
  options.workers = 1;
  start_server(0, options);

  svc::Client client = connect();
  for (int i = 0; i < 5; ++i) {
    const auto response = client.ping();
    ASSERT_TRUE(response.has_value());
    EXPECT_FALSE(response->ok);
    EXPECT_EQ(response->frame.type, svc::MessageType::kError);
    EXPECT_EQ(response->error, svc::ErrorCode::kOverloaded);
  }
  EXPECT_EQ(telemetry_->counter("stage.svc.requests.in"), 5u);
  EXPECT_EQ(telemetry_->counter("stage.svc.requests.admitted"), 0u);
  EXPECT_EQ(telemetry_->counter("stage.svc.requests.dropped"), 5u);
  expect_triple_reconciles();
}

TEST_F(SvcServerTest, ShutdownRequestDrainsAndRefusesNewWork) {
  start_server(0, {});
  svc::Client client = connect();

  const auto response = client.shutdown();
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->ok);
  // The server closes its end after answering a shutdown.
  EXPECT_FALSE(client.read_frame().has_value());

  server_->wait();
  // Fully drained: the listening socket is gone.
  svc::Client late;
  EXPECT_FALSE(late.connect("127.0.0.1", server_->port()));
  expect_triple_reconciles();
}

TEST_F(SvcServerTest, MetricsEndpointExportsTheStandardSchema) {
  start_server(0, {});
  svc::Client client = connect();
  ASSERT_TRUE(client.ping().has_value());

  const auto metrics = client.metrics();
  ASSERT_TRUE(metrics.has_value());
  ASSERT_TRUE(metrics->ok);
  const auto parsed = obs::json::parse(metrics->frame.payload);
  ASSERT_TRUE(parsed.has_value());
  const obs::json::Value* schema = parsed->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "certchain.obs.metrics");
  // The endpoint histograms ride along in the export.
  EXPECT_NE(metrics->frame.payload.find("svc.endpoint.ping.ms"),
            std::string::npos);
}

TEST_F(SvcServerTest, StalledMidFramePeerGetsDeadlineExceededAndClose) {
  svc::ServerOptions options;
  options.request_deadline_ms = 120;
  start_server(0, options);

  svc::Client client = connect();
  client.set_timeout_ms(5000);  // bounds the test, not the assertion
  const std::string wire = svc::encode_frame(svc::MessageType::kPing, "{}");
  ASSERT_TRUE(client.send_raw(wire.substr(0, wire.size() / 2)));

  // ...and then nothing. Within the deadline (plus scheduling slack) the
  // server must answer with the typed error and hang up — the reader thread
  // is never pinned by the half-delivered frame.
  const auto started = std::chrono::steady_clock::now();
  const auto reply = client.read_frame();
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, svc::MessageType::kError);
  const auto payload = obs::json::parse(reply->payload);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(payload->find("code")->string,
            svc::error_code_name(svc::ErrorCode::kDeadlineExceeded));
  EXPECT_FALSE(client.read_frame().has_value());
  EXPECT_LT(waited.count(), 2000);

  EXPECT_EQ(telemetry_->counter("svc.connections.stalled_closed"), 1u);
  // A frame that never completed never counts as a request.
  EXPECT_EQ(telemetry_->counter("stage.svc.requests.in"), 0u);
  expect_triple_reconciles();

  // The server is unharmed; a well-behaved connection still works.
  svc::Client probe = connect();
  const auto pong = probe.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->ok);
}

TEST_F(SvcServerTest, CtSthAndInclusionProofAnswerAndVerify) {
  start_server(logs_->ssl.size(), {});
  svc::Client client = connect();

  // ct_sth: one head per log, byte-identical to the in-process trees.
  const ct::CtLogSet& ct_logs = scenario_->world.ct_logs();
  const auto sth = client.ct_sth();
  ASSERT_TRUE(sth.has_value());
  ASSERT_TRUE(sth->ok) << sth->error_message;
  const obs::json::Value* heads = sth->payload.find("logs");
  ASSERT_NE(heads, nullptr);
  ASSERT_EQ(heads->array.size(), ct_logs.log_count());
  for (std::size_t i = 0; i < ct_logs.log_count(); ++i) {
    const obs::json::Value& head = heads->array[i];
    EXPECT_EQ(head.find("log_id")->string, ct_logs.log(i).log_id());
    EXPECT_EQ(uint_field(head, "tree_size"), ct_logs.log(i).size());
    EXPECT_EQ(head.find("root")->string, ct_logs.log(i).root_hash().to_hex());
  }

  // ct_prove_inclusion for a fingerprint the first log actually holds; the
  // returned proof must verify client-side against the returned head.
  const ct::CtLog& log0 = ct_logs.log(0);
  ASSERT_GT(log0.size(), 0u);
  const std::string fingerprint =
      log0.entries().front().certificate_fingerprint;
  const auto proven = client.ct_prove_inclusion(fingerprint);
  ASSERT_TRUE(proven.has_value());
  ASSERT_TRUE(proven->ok) << proven->error_message;
  EXPECT_EQ(proven->payload.find("log_id")->string, log0.log_id());
  const std::size_t index = uint_field(proven->payload, "index");
  const std::size_t tree_size = uint_field(proven->payload, "tree_size");
  EXPECT_EQ(tree_size, log0.size());
  ct::Digest256 root;
  ASSERT_TRUE(
      ct::Digest256::from_hex(proven->payload.find("root")->string, root));
  std::vector<ct::Digest256> proof;
  for (const obs::json::Value& node : proven->payload.find("proof")->array) {
    ct::Digest256 digest;
    ASSERT_TRUE(ct::Digest256::from_hex(node.string, digest));
    proof.push_back(digest);
  }
  EXPECT_TRUE(ct::verify_inclusion_hash(log0.leaf_hash_at(index), index,
                                        tree_size, proof, root));

  // A well-formed query for an unlogged fingerprint is the typed miss...
  const auto missing = client.ct_prove_inclusion("deadbeef-not-logged");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->frame.type, svc::MessageType::kError);
  EXPECT_EQ(missing->error, svc::ErrorCode::kNotFound);

  // ...and a malformed one is payload damage, not NOT_FOUND.
  const auto empty = client.ct_prove_inclusion("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->error, svc::ErrorCode::kBadPayload);

  // Constraining the search to a named log still answers.
  const auto named = client.ct_prove_inclusion(fingerprint, log0.log_id());
  ASSERT_TRUE(named.has_value());
  EXPECT_TRUE(named->ok);
  const auto wrong_log = client.ct_prove_inclusion(fingerprint, "no-such-log");
  ASSERT_TRUE(wrong_log.has_value());
  EXPECT_EQ(wrong_log->error, svc::ErrorCode::kNotFound);
  expect_triple_reconciles();
}

TEST_F(SvcServerTest, CtMonitorStatusBeforeAndAfterArming) {
  start_server(logs_->ssl.size(), {});

  svc::Client client = connect();
  const auto unarmed = client.ct_monitor_status();
  ASSERT_TRUE(unarmed.has_value());
  ASSERT_TRUE(unarmed->ok) << unarmed->error_message;
  EXPECT_FALSE(unarmed->payload.find("armed")->boolean);

  // Arm and poll twice; the endpoint must report the counters and one clean
  // checkpoint per log.
  ct::Monitor& monitor = state_->arm_ct_monitor();
  monitor.poll_once();
  monitor.poll_once();
  const auto armed = client.ct_monitor_status();
  ASSERT_TRUE(armed.has_value());
  ASSERT_TRUE(armed->ok) << armed->error_message;
  EXPECT_TRUE(armed->payload.find("armed")->boolean);
  EXPECT_EQ(uint_field(armed->payload, "polls"), 2u);
  EXPECT_EQ(uint_field(armed->payload, "violations"), 0u);
  const ct::CtLogSet& ct_logs = scenario_->world.ct_logs();
  const obs::json::Value* checkpoints = armed->payload.find("checkpoints");
  ASSERT_NE(checkpoints, nullptr);
  ASSERT_EQ(checkpoints->array.size(), ct_logs.log_count());
  for (std::size_t i = 0; i < ct_logs.log_count(); ++i) {
    EXPECT_EQ(uint_field(checkpoints->array[i], "tree_size"),
              ct_logs.log(i).size());
  }
  expect_triple_reconciles();
}

/// The handler's "totals" section selection, mirrored exactly: only the
/// totals block renders.
core::ReportTextOptions totals_only_options() {
  core::ReportTextOptions options;
  options.totals = true;
  options.categories = false;
  options.interception = false;
  options.hybrid = false;
  options.non_public = false;
  options.ct_compliance = false;
  options.graphs = false;
  options.data_quality = false;
  return options;
}

// The RCU linearizability contract (ISSUE 8 satellite): while a writer
// streams ingest_append batches, every concurrently served report_section
// response must be byte-identical to what a quiet replay of the same append
// schedule renders AT THAT RESPONSE'S GENERATION — i.e. responses are never
// torn across a publish, never mix generations, and every observer's
// generation sequence is monotone. The expected per-generation bytes come
// from an offline ServiceState fed the identical batches up front.
TEST_F(SvcServerTest, ConcurrentReadsAreByteIdenticalToTheirGenerationsBatchRun) {
  const std::size_t half = logs_->ssl.size() / 2;
  constexpr std::size_t kBatch = 40;

  // Offline oracle: replay the exact append schedule, capture every
  // generation's "totals" bytes. Generation g == expected[g].
  std::vector<std::vector<std::string>> batches;
  for (std::size_t begin = half; begin < logs_->ssl.size(); begin += kBatch) {
    const std::size_t end = std::min(begin + kBatch, logs_->ssl.size());
    std::vector<std::string> rows;
    for (std::size_t i = begin; i < end; ++i) {
      rows.push_back(ssl_row(logs_->ssl[i]));
    }
    batches.push_back(std::move(rows));
  }
  std::vector<std::string> expected;
  {
    svc::ServiceState oracle(scenario_->world.stores(),
                             scenario_->world.ct_logs(), scenario_->vendors,
                             &scenario_->world.cross_signs());
    std::vector<zeek::SslLogRecord> initial(
        logs_->ssl.begin(),
        logs_->ssl.begin() + static_cast<std::ptrdiff_t>(half));
    oracle.load(initial, logs_->x509);
    expected.push_back(oracle.report_section(totals_only_options()));
    for (const std::vector<std::string>& rows : batches) {
      oracle.ingest_append(rows, {});
      expected.push_back(oracle.report_section(totals_only_options()));
    }
  }

  svc::ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 256;
  start_server(half, options);

  constexpr int kQueryThreads = 4;
  constexpr int kRequestsPerThread = 30;
  std::atomic<int> failures{0};
  std::mutex diagnosis_mutex;
  std::string diagnosis;
  const auto report_failure = [&](const std::string& what) {
    failures.fetch_add(1);
    std::lock_guard<std::mutex> lock(diagnosis_mutex);
    if (diagnosis.empty()) diagnosis = what;
  };

  std::thread writer([&] {
    svc::Client client = connect();
    for (const std::vector<std::string>& rows : batches) {
      const auto response = client.ingest_append(rows, {});
      if (!response.has_value() || !response->ok) {
        report_failure("ingest_append failed mid-stream");
      }
    }
  });

  const std::string issuer_dn = "CN=Test Issuing CA,O=TestPKI,C=US";
  std::vector<std::thread> readers;
  for (int t = 0; t < kQueryThreads; ++t) {
    readers.emplace_back([&, t] {
      svc::Client client = connect();  // one connection = one observer
      std::uint64_t last_generation = 0;
      for (int i = 0; i < kRequestsPerThread; ++i) {
        if ((t + i) % 4 == 3) {
          // classify_issuer answers from immutable stores: generation-free,
          // but it must keep answering mid-publish without a hiccup.
          const auto response = client.classify_issuer(issuer_dn);
          if (!response.has_value() || !response->ok) {
            report_failure("classify_issuer failed under writer stress");
          }
          continue;
        }
        const auto response = client.report_section("totals");
        if (!response.has_value() || !response->ok) {
          report_failure("report_section failed under writer stress");
          continue;
        }
        const obs::json::Value* generation =
            response->payload.find("generation");
        const obs::json::Value* text = response->payload.find("text");
        if (generation == nullptr || text == nullptr) {
          report_failure("response missing generation/text");
          continue;
        }
        const std::uint64_t g = static_cast<std::uint64_t>(generation->num);
        if (g < last_generation) {
          report_failure("generation ran backwards for one observer");
          continue;
        }
        last_generation = g;
        if (g >= expected.size()) {
          report_failure("generation beyond the append schedule");
          continue;
        }
        // The heart of the test: bytes must match generation g's quiet
        // replay exactly. A torn read (text from one generation, stamp from
        // another) or a half-published analysis cannot pass this.
        if (text->string != expected[g]) {
          report_failure("generation " + std::to_string(g) +
                         " rendered bytes differ from its batch replay");
        }
      }
    });
  }

  writer.join();
  for (std::thread& thread : readers) thread.join();
  EXPECT_EQ(failures.load(), 0) << diagnosis;

  // Converged: the final generation's bytes are the full batch fold's bytes.
  svc::Client client = connect();
  const auto final_totals = client.report_section("totals");
  ASSERT_TRUE(final_totals.has_value());
  ASSERT_TRUE(final_totals->ok);
  EXPECT_EQ(final_totals->payload.find("text")->string, expected.back());
  EXPECT_EQ(uint_field(final_totals->payload, "generation"),
            static_cast<std::uint64_t>(batches.size()));
  expect_triple_reconciles();
}

// Snapshot pinning (ISSUE 8 satellite): a slow reader holding generation G's
// snapshot keeps rendering G's exact bytes while the writer publishes
// G+1..G+k; superseded generations are freed as soon as nobody holds them,
// observed through live_snapshots() and the svc.snapshot.live gauge.
TEST_F(SvcServerTest, SlowReaderPinsItsGenerationUntilReleased) {
  const std::size_t half = logs_->ssl.size() / 2;
  std::vector<zeek::SslLogRecord> initial(
      logs_->ssl.begin(),
      logs_->ssl.begin() + static_cast<std::ptrdiff_t>(half));

  svc::ServiceState state(scenario_->world.stores(), scenario_->world.ct_logs(),
                          scenario_->vendors, &scenario_->world.cross_signs());
  svc::SyncTelemetry telemetry;
  state.attach_telemetry(&telemetry);
  state.load(initial, logs_->x509);
  EXPECT_EQ(state.live_snapshots(), 1);
  EXPECT_EQ(telemetry.gauge("svc.snapshot.live"), 1.0);
  const std::uint64_t published_after_load = state.snapshots_published();

  // The slow reader grabs generation 0 and sits on it.
  svc::ServiceState::SnapshotPtr pinned = state.acquire_snapshot();
  EXPECT_EQ(pinned->generation, 0u);
  const std::string pinned_bytes =
      core::render_report_text(pinned->report, totals_only_options());
  EXPECT_EQ(state.live_snapshots(), 1) << "pinning the current snapshot "
                                          "creates no extra generation";

  // The writer publishes k newer generations underneath it.
  constexpr std::size_t kBatch = 40;
  constexpr std::size_t kPublishes = 3;
  std::size_t begin = half;
  for (std::size_t k = 0; k < kPublishes; ++k) {
    const std::size_t end = std::min(begin + kBatch, logs_->ssl.size());
    std::vector<std::string> rows;
    for (std::size_t i = begin; i < end; ++i) {
      rows.push_back(ssl_row(logs_->ssl[i]));
    }
    begin = end;
    state.ingest_append(rows, {});
  }
  EXPECT_EQ(state.generation(), kPublishes);
  EXPECT_EQ(state.snapshots_published(), published_after_load + kPublishes);

  // The pinned snapshot is untouched — same generation, same bytes — while
  // fresh acquisitions already see the new world.
  EXPECT_EQ(pinned->generation, 0u);
  EXPECT_EQ(core::render_report_text(pinned->report, totals_only_options()),
            pinned_bytes);
  EXPECT_NE(state.report_section(totals_only_options()), pinned_bytes);

  // Exactly two generations are alive: the current one and the pinned one.
  // The intermediates (G+1..G+k-1) died the moment they were superseded.
  EXPECT_EQ(state.live_snapshots(), 2);
  EXPECT_EQ(telemetry.gauge("svc.snapshot.live"), 2.0);

  // The last reader dropping generation 0 frees it on the spot.
  pinned.reset();
  EXPECT_EQ(state.live_snapshots(), 1);
  EXPECT_EQ(telemetry.gauge("svc.snapshot.live"), 1.0);
  EXPECT_EQ(telemetry.counter("svc.snapshot.published"),
            published_after_load + kPublishes);

  state.attach_telemetry(nullptr);
}

TEST_F(SvcServerTest, IdleConnectionIsClosedQuietly) {
  svc::ServerOptions options;
  options.idle_timeout_ms = 100;
  start_server(0, options);

  svc::Client client = connect();
  client.set_timeout_ms(5000);
  // No bytes at all: the idle timer closes the connection without an error
  // frame — an idle peer did nothing wrong.
  const auto started = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.read_frame().has_value());
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  EXPECT_LT(waited.count(), 2000);
  EXPECT_EQ(telemetry_->counter("svc.connections.idle_closed"), 1u);
  EXPECT_EQ(telemetry_->counter("svc.connections.stalled_closed"), 0u);

  // An active connection is NOT idle-closed while requests flow.
  svc::Client active = connect();
  for (int i = 0; i < 3; ++i) {
    const auto pong = active.ping();
    ASSERT_TRUE(pong.has_value());
    EXPECT_TRUE(pong->ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  expect_triple_reconciles();
}

}  // namespace
}  // namespace certchain
