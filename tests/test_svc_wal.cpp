// The ingest WAL and crash-recovery contracts (DESIGN.md §13):
//
//  * framing — certchain.svc.wal v1 records round-trip through replay; a
//    torn tail of ANY byte length yields exactly the intact record prefix,
//    never a partial or damaged record;
//  * damage — a checksum mismatch, length lie, or sequence break mid-file
//    ends replay at the prior record (bytes after damage have no
//    trustworthy framing);
//  * recovery — a state recovered from snapshot + WAL renders reports
//    byte-identical to a state that never crashed, proven both for a clean
//    shutdown and for a real fork()ed child killed with SIGKILL mid-append;
//  * idempotency — a retried append with the same key folds exactly once,
//    in-process and across a crash/recovery boundary;
//  * compaction — --snapshot-every bounds replay to the WAL tail, and the
//    crash window between snapshot-write and WAL-reset is harmless.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/report_text.hpp"
#include "core/stream_checkpoint.hpp"
#include "datagen/scenario.hpp"
#include "svc/service_state.hpp"
#include "svc/wal.hpp"
#include "zeek/log_io.hpp"

namespace certchain {
namespace {

/// Serializes one record to its raw TSV body row (what ingest_append eats).
template <typename Writer, typename Record>
std::string body_row(const Record& record) {
  Writer writer;
  writer.add(record);
  const std::string text = writer.finish();
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin && text[begin] != '#') return text.substr(begin, end - begin);
    begin = end + 1;
  }
  ADD_FAILURE() << "writer produced no body row";
  return {};
}

std::string temp_path(const std::string& leaf) {
  return ::testing::TempDir() + "certchain_svc_wal_" + leaf;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), file) == content.size();
  return (std::fclose(file) == 0) && ok;
}

svc::WalRecord make_record(std::uint64_t seq, const std::string& key) {
  svc::WalRecord record;
  record.seq = seq;
  record.idempotency_key = key;
  record.ssl_rows = {"ssl-row-a-" + std::to_string(seq),
                     "ssl-row-b-" + std::to_string(seq)};
  record.x509_rows = {"x509-row-" + std::to_string(seq)};
  return record;
}

// --- the framing layer, no corpus involved ----------------------------------

TEST(SvcWalFraming, ReplayOfMissingFileIsAnEmptyValidLog) {
  const std::string path = temp_path("missing.wal");
  ::unlink(path.c_str());

  std::string error;
  const auto replay = svc::WriteAheadLog::replay(path, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  EXPECT_TRUE(replay->header_valid);
  EXPECT_TRUE(replay->records.empty());
  EXPECT_EQ(replay->good_bytes, 0u);
  EXPECT_EQ(replay->torn_bytes, 0u);
}

TEST(SvcWalFraming, AppendedRecordsRoundTripThroughReplay) {
  const std::string path = temp_path("roundtrip.wal");
  ::unlink(path.c_str());

  svc::WriteAheadLog wal;
  std::string error;
  ASSERT_TRUE(wal.open(path, 0, 1, &error)) << error;
  std::vector<svc::WalRecord> written;
  for (int i = 0; i < 3; ++i) {
    svc::WalRecord record = make_record(0, i == 1 ? "" : "key-" + std::to_string(i));
    ASSERT_TRUE(wal.append(record, &error)) << error;
    EXPECT_EQ(record.seq, static_cast<std::uint64_t>(i + 1));
    written.push_back(record);
  }
  const std::uint64_t bytes = wal.bytes_on_disk();
  wal.close();

  const auto replay = svc::WriteAheadLog::replay(path, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  EXPECT_TRUE(replay->header_valid);
  EXPECT_EQ(replay->good_bytes, bytes);
  EXPECT_EQ(replay->torn_bytes, 0u);
  ASSERT_EQ(replay->records.size(), written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(replay->records[i].seq, written[i].seq);
    EXPECT_EQ(replay->records[i].idempotency_key, written[i].idempotency_key);
    EXPECT_EQ(replay->records[i].ssl_rows, written[i].ssl_rows);
    EXPECT_EQ(replay->records[i].x509_rows, written[i].x509_rows);
  }
}

TEST(SvcWalFraming, EveryTruncationPointYieldsExactlyTheIntactPrefix) {
  // The whole point of the format: whatever byte a kill -9 stops the write
  // at, replay returns complete records only and reports the rest as torn.
  const std::string path = temp_path("sweep.wal");

  std::string bytes = svc::encode_wal_header();
  std::vector<std::size_t> boundaries = {bytes.size()};
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    bytes += svc::encode_wal_record(make_record(seq, "k" + std::to_string(seq)));
    boundaries.push_back(bytes.size());
  }

  for (std::size_t length = svc::kWalHeaderBytes; length <= bytes.size();
       ++length) {
    ASSERT_TRUE(write_file(path, bytes.substr(0, length)));
    std::string error;
    const auto replay = svc::WriteAheadLog::replay(path, &error);
    ASSERT_TRUE(replay.has_value()) << "length " << length << ": " << error;

    std::size_t complete = 0;
    while (complete + 1 < boundaries.size() &&
           boundaries[complete + 1] <= length) {
      ++complete;
    }
    EXPECT_EQ(replay->records.size(), complete) << "length " << length;
    EXPECT_EQ(replay->good_bytes, boundaries[complete]) << "length " << length;
    EXPECT_EQ(replay->torn_bytes, length - boundaries[complete])
        << "length " << length;
  }
  ::unlink(path.c_str());
}

TEST(SvcWalFraming, ChecksumDamageMidFileEndsReplayAtThePriorRecord) {
  const std::string path = temp_path("damage.wal");

  std::string bytes = svc::encode_wal_header();
  bytes += svc::encode_wal_record(make_record(1, "k1"));
  const std::size_t record_two_at = bytes.size();
  bytes += svc::encode_wal_record(make_record(2, "k2"));
  bytes += svc::encode_wal_record(make_record(3, "k3"));

  // Flip one payload byte inside record 2: its checksum no longer matches,
  // and record 3 — though byte-intact — must NOT be surfaced: framing after
  // damage is untrustworthy.
  std::string damaged = bytes;
  damaged[record_two_at + svc::kWalRecordHeaderBytes + 5] ^= 0x01;
  ASSERT_TRUE(write_file(path, damaged));

  std::string error;
  const auto replay = svc::WriteAheadLog::replay(path, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].seq, 1u);
  EXPECT_EQ(replay->good_bytes, record_two_at);
  EXPECT_EQ(replay->torn_bytes, damaged.size() - record_two_at);
  ::unlink(path.c_str());
}

TEST(SvcWalFraming, SequenceRegressionEndsReplay) {
  const std::string path = temp_path("seqbreak.wal");
  std::string bytes = svc::encode_wal_header();
  bytes += svc::encode_wal_record(make_record(5, "k5"));
  bytes += svc::encode_wal_record(make_record(3, "k3"));  // goes backwards
  ASSERT_TRUE(write_file(path, bytes));

  std::string error;
  const auto replay = svc::WriteAheadLog::replay(path, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].seq, 5u);
  EXPECT_GT(replay->torn_bytes, 0u);
  ::unlink(path.c_str());
}

TEST(SvcWalFraming, ForeignHeaderRefusesReplay) {
  const std::string path = temp_path("foreign.wal");

  ASSERT_TRUE(write_file(path, "XWAL\x01\x00\x00\x00"));
  std::string error;
  EXPECT_FALSE(svc::WriteAheadLog::replay(path, &error).has_value());
  EXPECT_FALSE(error.empty());

  std::string wrong_version = svc::encode_wal_header();
  wrong_version[4] = 9;
  ASSERT_TRUE(write_file(path, wrong_version));
  EXPECT_FALSE(svc::WriteAheadLog::replay(path, &error).has_value());

  ASSERT_TRUE(write_file(path, "XWA"));  // short AND foreign: still refused
  EXPECT_FALSE(svc::WriteAheadLog::replay(path, &error).has_value());
  ::unlink(path.c_str());
}

TEST(SvcWalFraming, PartialHeaderReadsAsEmptyLogAndReopens) {
  // A crash between open(O_CREAT) and the header fsync leaves an empty or
  // partially-headered file. That must not brick the daemon: replay reads
  // it as an empty log and open() re-stamps the header.
  const std::string path = temp_path("partial_header.wal");

  for (std::size_t length = 0; length < svc::kWalHeaderBytes; ++length) {
    ASSERT_TRUE(write_file(path, svc::encode_wal_header().substr(0, length)));
    std::string error;
    const auto replay = svc::WriteAheadLog::replay(path, &error);
    ASSERT_TRUE(replay.has_value()) << "length " << length << ": " << error;
    EXPECT_TRUE(replay->header_valid) << "length " << length;
    EXPECT_TRUE(replay->records.empty());
    EXPECT_EQ(replay->good_bytes, 0u) << "length " << length;
    EXPECT_EQ(replay->torn_bytes, length);

    svc::WriteAheadLog wal;
    ASSERT_TRUE(wal.open(path, replay->good_bytes, 1, &error)) << error;
    EXPECT_EQ(wal.bytes_on_disk(), svc::kWalHeaderBytes);
    svc::WalRecord record = make_record(0, "k1");
    ASSERT_TRUE(wal.append(record, &error)) << error;
    wal.close();

    const auto reread = svc::WriteAheadLog::replay(path, &error);
    ASSERT_TRUE(reread.has_value()) << error;
    ASSERT_EQ(reread->records.size(), 1u) << "length " << length;
    EXPECT_EQ(reread->torn_bytes, 0u);
  }
  ::unlink(path.c_str());
}

TEST(SvcWalFraming, FailedAppendRollsTheFileBack) {
  // An append that tears mid-record (ENOSPC's shape) must leave no bytes
  // past the committed prefix — otherwise the next acknowledged append
  // would be written after damage and discarded by replay as torn tail.
  const std::string path = temp_path("rollback.wal");
  ::unlink(path.c_str());

  svc::WriteAheadLog wal;
  std::string error;
  ASSERT_TRUE(wal.open(path, 0, 1, &error)) << error;
  svc::WalRecord first = make_record(0, "k1");
  ASSERT_TRUE(wal.append(first, &error)) << error;
  const std::uint64_t committed = wal.bytes_on_disk();

  wal.inject_torn_append_for_test();
  svc::WalRecord torn = make_record(0, "k2");
  EXPECT_FALSE(wal.append(torn, &error));
  EXPECT_NE(error.find("rolled back"), std::string::npos) << error;
  EXPECT_FALSE(wal.poisoned());
  EXPECT_EQ(wal.bytes_on_disk(), committed);
  EXPECT_EQ(torn.seq, 0u);  // the seq was not consumed

  // The retry commits cleanly right after the rollback, on the same seq.
  svc::WalRecord retry = make_record(0, "k2");
  ASSERT_TRUE(wal.append(retry, &error)) << error;
  EXPECT_EQ(retry.seq, 2u);
  wal.close();

  const auto replay = svc::WriteAheadLog::replay(path, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[1].seq, 2u);
  EXPECT_EQ(replay->records[1].idempotency_key, "k2");
  EXPECT_EQ(replay->torn_bytes, 0u);
  ::unlink(path.c_str());
}

TEST(SvcWalFraming, FailedRollbackPoisonsTheLogUntilRecovery) {
  const std::string path = temp_path("poison.wal");
  ::unlink(path.c_str());

  svc::WriteAheadLog wal;
  std::string error;
  ASSERT_TRUE(wal.open(path, 0, 1, &error)) << error;
  svc::WalRecord first = make_record(0, "k1");
  ASSERT_TRUE(wal.append(first, &error)) << error;

  wal.inject_torn_append_for_test(/*rollback_fails=*/true);
  svc::WalRecord torn = make_record(0, "k2");
  EXPECT_FALSE(wal.append(torn, &error));
  EXPECT_NE(error.find("poisoned"), std::string::npos) << error;
  EXPECT_TRUE(wal.poisoned());

  // Fail closed: the poisoned log refuses every append, even a healthy one.
  svc::WalRecord refused = make_record(0, "k3");
  EXPECT_FALSE(wal.append(refused, &error));
  EXPECT_NE(error.find("poisoned"), std::string::npos) << error;
  wal.close();

  // Recovery sees the half-written frame as the torn tail, truncates it,
  // and the log serves appends again.
  const auto replay = svc::WriteAheadLog::replay(path, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_GT(replay->torn_bytes, 0u);
  ASSERT_TRUE(wal.open(path, replay->good_bytes,
                       replay->records.back().seq + 1, &error))
      << error;
  EXPECT_FALSE(wal.poisoned());
  svc::WalRecord after = make_record(0, "k2");
  ASSERT_TRUE(wal.append(after, &error)) << error;
  EXPECT_EQ(after.seq, 2u);
  wal.close();
  ::unlink(path.c_str());
}

TEST(SvcWalFraming, OpenTruncatesTheTornTailAndAppendsAfterIt) {
  const std::string path = temp_path("truncate.wal");

  std::string bytes = svc::encode_wal_header();
  bytes += svc::encode_wal_record(make_record(1, "k1"));
  const std::size_t good = bytes.size();
  bytes += "torn-partial-record-bytes";
  ASSERT_TRUE(write_file(path, bytes));

  std::string error;
  auto replay = svc::WriteAheadLog::replay(path, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  EXPECT_EQ(replay->good_bytes, good);
  EXPECT_GT(replay->torn_bytes, 0u);

  svc::WriteAheadLog wal;
  ASSERT_TRUE(
      wal.open(path, replay->good_bytes, replay->records.back().seq + 1, &error))
      << error;
  svc::WalRecord next = make_record(0, "k2");
  ASSERT_TRUE(wal.append(next, &error)) << error;
  EXPECT_EQ(next.seq, 2u);
  wal.close();

  replay = svc::WriteAheadLog::replay(path, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  ASSERT_EQ(replay->records.size(), 2u);
  EXPECT_EQ(replay->records[1].seq, 2u);
  EXPECT_EQ(replay->torn_bytes, 0u);
  ::unlink(path.c_str());
}

TEST(SvcWalFraming, ResetYieldsAFreshLogWithAContinuingSequence) {
  const std::string path = temp_path("reset.wal");
  ::unlink(path.c_str());

  svc::WriteAheadLog wal;
  std::string error;
  ASSERT_TRUE(wal.open(path, 0, 1, &error)) << error;
  svc::WalRecord record = make_record(0, "k1");
  ASSERT_TRUE(wal.append(record, &error)) << error;
  ASSERT_TRUE(wal.reset(&error)) << error;
  EXPECT_EQ(wal.bytes_on_disk(), svc::kWalHeaderBytes);

  // seq is global to the serving state's lifetime, not to one file.
  svc::WalRecord after = make_record(0, "k2");
  ASSERT_TRUE(wal.append(after, &error)) << error;
  EXPECT_EQ(after.seq, 2u);
  wal.close();

  const auto replay = svc::WriteAheadLog::replay(path, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].seq, 2u);
  ::unlink(path.c_str());
}

// --- recovery differentials over a real corpus ------------------------------

/// One ingest_append batch of raw TSV rows.
struct Batch {
  std::vector<std::string> ssl;
  std::vector<std::string> x509;
};

class SvcWalRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::ScenarioConfig config;
    config.seed = 20200901;
    config.chain_scale = 1.0 / 600.0;
    config.total_connections = 600;
    config.client_count = 90;
    config.include_length_outliers = false;
    scenario_ = datagen::build_study_scenario(config).release();
    netsim::GeneratedLogs logs = scenario_->generate_logs();

    // Base corpus = the first half of both logs; the second half becomes
    // three append batches. Round-robin assignment leaves some SSL rows
    // referencing X509 rows from a later batch — deliberately: incomplete
    // joins must survive recovery identically too.
    const std::size_t ssl_split = logs.ssl.size() / 2;
    const std::size_t x509_split = logs.x509.size() / 2;
    base_ssl_ = new std::vector<zeek::SslLogRecord>(
        logs.ssl.begin(),
        logs.ssl.begin() + static_cast<std::ptrdiff_t>(ssl_split));
    base_x509_ = new std::vector<zeek::X509LogRecord>(
        logs.x509.begin(),
        logs.x509.begin() + static_cast<std::ptrdiff_t>(x509_split));
    batches_ = new std::vector<Batch>(3);
    for (std::size_t i = ssl_split; i < logs.ssl.size(); ++i) {
      (*batches_)[(i - ssl_split) % 3].ssl.push_back(
          body_row<zeek::SslLogWriter>(logs.ssl[i]));
    }
    for (std::size_t i = x509_split; i < logs.x509.size(); ++i) {
      (*batches_)[(i - x509_split) % 3].x509.push_back(
          body_row<zeek::X509LogWriter>(logs.x509[i]));
    }
    ASSERT_GE((*batches_)[0].ssl.size(), 1u);
    ASSERT_GE((*batches_)[0].x509.size(), 1u);
  }

  static void TearDownTestSuite() {
    delete batches_;
    delete base_x509_;
    delete base_ssl_;
    delete scenario_;
    batches_ = nullptr;
    base_x509_ = nullptr;
    base_ssl_ = nullptr;
    scenario_ = nullptr;
  }

  static std::unique_ptr<svc::ServiceState> make_state() {
    auto state = std::make_unique<svc::ServiceState>(
        scenario_->world.stores(), scenario_->world.ct_logs(),
        scenario_->vendors, &scenario_->world.cross_signs());
    state->load(*base_ssl_, *base_x509_);
    return state;
  }

  /// A WAL path (plus its snapshot sibling) guaranteed absent.
  static std::string fresh_wal(const std::string& leaf) {
    const std::string path = temp_path(leaf);
    ::unlink(path.c_str());
    ::unlink(svc::snapshot_path_for(path).c_str());
    return path;
  }

  static std::string full_report(const svc::ServiceState& state) {
    return state.report_section(core::ReportTextOptions{});
  }

  static void ingest_all(svc::ServiceState& state) {
    for (std::size_t i = 0; i < batches_->size(); ++i) {
      state.ingest_append((*batches_)[i].ssl, (*batches_)[i].x509,
                          "batch-" + std::to_string(i + 1));
    }
  }

  static datagen::Scenario* scenario_;
  static std::vector<zeek::SslLogRecord>* base_ssl_;
  static std::vector<zeek::X509LogRecord>* base_x509_;
  static std::vector<Batch>* batches_;
};

datagen::Scenario* SvcWalRecoveryTest::scenario_ = nullptr;
std::vector<zeek::SslLogRecord>* SvcWalRecoveryTest::base_ssl_ = nullptr;
std::vector<zeek::X509LogRecord>* SvcWalRecoveryTest::base_x509_ = nullptr;
std::vector<Batch>* SvcWalRecoveryTest::batches_ = nullptr;

TEST_F(SvcWalRecoveryTest, DuplicateIdempotencyKeyFoldsExactlyOnce) {
  const std::string wal = fresh_wal("dup.wal");
  auto state = make_state();
  svc::DurabilityOptions durability;
  durability.wal_path = wal;
  std::string error;
  ASSERT_TRUE(state->recover_and_arm(durability, nullptr, &error)) << error;

  const svc::AppendResult first =
      state->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "K");
  EXPECT_FALSE(first.duplicate);
  EXPECT_EQ(first.wal_seq, 1u);
  const std::uint64_t generation = state->generation();
  EXPECT_EQ(first.generation, generation);

  // Same key again: the original result comes back, nothing re-folds, and
  // nothing new hits the WAL.
  const svc::AppendResult retry =
      state->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "K");
  EXPECT_TRUE(retry.duplicate);
  EXPECT_EQ(retry.generation, first.generation);
  EXPECT_EQ(retry.wal_seq, first.wal_seq);
  EXPECT_EQ(retry.ssl_added, first.ssl_added);
  EXPECT_EQ(retry.unique_chains, first.unique_chains);
  EXPECT_EQ(state->generation(), generation);

  const auto replay = svc::WriteAheadLog::replay(wal, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  EXPECT_EQ(replay->records.size(), 1u);

  // A different key folds normally.
  const svc::AppendResult second =
      state->ingest_append((*batches_)[1].ssl, (*batches_)[1].x509, "K2");
  EXPECT_FALSE(second.duplicate);
  EXPECT_EQ(state->generation(), generation + 1);
}

TEST_F(SvcWalRecoveryTest, RecoveredStateRendersByteIdenticalReports) {
  const std::string wal = fresh_wal("clean.wal");

  // The never-crashed reference: plain in-memory appends, no durability.
  auto reference = make_state();
  ingest_all(*reference);

  // The durable run commits the same batches through the WAL...
  {
    auto durable = make_state();
    svc::DurabilityOptions durability;
    durability.wal_path = wal;
    std::string error;
    ASSERT_TRUE(durable->recover_and_arm(durability, nullptr, &error)) << error;
    ingest_all(*durable);
    EXPECT_EQ(full_report(*durable), full_report(*reference));
  }  // durable state destroyed: only the disk remains

  // ...and a fresh process recovers to the exact same answers.
  auto recovered = make_state();
  svc::DurabilityOptions durability;
  durability.wal_path = wal;
  svc::RecoveryStats stats;
  std::string error;
  ASSERT_TRUE(recovered->recover_and_arm(durability, &stats, &error)) << error;
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.wal_records_seen, 3u);
  EXPECT_EQ(stats.wal_records_applied, 3u);
  EXPECT_EQ(stats.wal_records_skipped, 0u);
  EXPECT_EQ(stats.torn_bytes, 0u);
  EXPECT_EQ(recovered->generation(), reference->generation());
  EXPECT_EQ(recovered->unique_chains(), reference->unique_chains());
  EXPECT_EQ(full_report(*recovered), full_report(*reference));
}

TEST_F(SvcWalRecoveryTest, KillNineMidAppendRecoversByteIdentical) {
  const std::string wal = fresh_wal("kill9.wal");

  // The child lives the crash: arm durability, fold two batches, start
  // committing a third, die by SIGKILL with only 7 bytes of its record on
  // disk. _exit codes distinguish child-side setup failures from the one
  // legitimate death.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    auto state = make_state();
    svc::DurabilityOptions durability;
    durability.wal_path = wal;
    if (!state->recover_and_arm(durability, nullptr, nullptr)) _exit(10);
    state->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "batch-1");
    state->ingest_append((*batches_)[1].ssl, (*batches_)[1].x509, "batch-2");

    svc::WalRecord torn;
    torn.seq = 3;
    torn.idempotency_key = "batch-3";
    torn.ssl_rows = (*batches_)[2].ssl;
    torn.x509_rows = (*batches_)[2].x509;
    const std::string framed = svc::encode_wal_record(torn);
    const int fd = ::open(wal.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) _exit(11);
    if (::write(fd, framed.data(), 7) != 7) _exit(12);
    ::fsync(fd);
    ::raise(SIGKILL);
    _exit(13);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited with " << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  // The survivor recovers the two acknowledged batches, truncates the torn
  // third, and answers exactly like a run that folded those two batches and
  // never crashed.
  auto recovered = make_state();
  svc::DurabilityOptions durability;
  durability.wal_path = wal;
  svc::RecoveryStats stats;
  std::string error;
  ASSERT_TRUE(recovered->recover_and_arm(durability, &stats, &error)) << error;
  EXPECT_EQ(stats.wal_records_seen, 2u);
  EXPECT_EQ(stats.wal_records_applied, 2u);
  EXPECT_EQ(stats.torn_bytes, 7u);

  auto reference = make_state();
  reference->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "batch-1");
  reference->ingest_append((*batches_)[1].ssl, (*batches_)[1].x509, "batch-2");
  EXPECT_EQ(recovered->generation(), reference->generation());
  EXPECT_EQ(full_report(*recovered), full_report(*reference));

  // The interrupted batch retries against the recovered state with the same
  // idempotency key and folds exactly once — it never made it to the WAL.
  const svc::AppendResult retried =
      recovered->ingest_append((*batches_)[2].ssl, (*batches_)[2].x509,
                               "batch-3");
  EXPECT_FALSE(retried.duplicate);
  reference->ingest_append((*batches_)[2].ssl, (*batches_)[2].x509, "batch-3");
  EXPECT_EQ(full_report(*recovered), full_report(*reference));
}

TEST_F(SvcWalRecoveryTest, CompactionBoundsReplayToTheWalTail) {
  const std::string wal = fresh_wal("compact.wal");

  auto durable = make_state();
  svc::DurabilityOptions durability;
  durability.wal_path = wal;
  durability.snapshot_every = 2;
  std::string error;
  ASSERT_TRUE(durable->recover_and_arm(durability, nullptr, &error)) << error;
  ingest_all(*durable);  // batches 1+2 compact; batch 3 stays in the WAL

  ASSERT_TRUE(core::read_file_text(svc::snapshot_path_for(wal)).has_value());
  const auto replay = svc::WriteAheadLog::replay(wal, &error);
  ASSERT_TRUE(replay.has_value()) << error;
  ASSERT_EQ(replay->records.size(), 1u);
  EXPECT_EQ(replay->records[0].seq, 3u);

  auto recovered = make_state();
  svc::RecoveryStats stats;
  ASSERT_TRUE(recovered->recover_and_arm(durability, &stats, &error)) << error;
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.wal_records_seen, 1u);
  EXPECT_EQ(stats.wal_records_applied, 1u);
  EXPECT_EQ(stats.wal_records_skipped, 0u);

  auto reference = make_state();
  ingest_all(*reference);
  EXPECT_EQ(recovered->generation(), reference->generation());
  EXPECT_EQ(full_report(*recovered), full_report(*reference));

  // The idempotency ledger survives the snapshot/replay round trip: a
  // retried batch is recognized after recovery too.
  const svc::AppendResult retry =
      recovered->ingest_append((*batches_)[2].ssl, (*batches_)[2].x509,
                               "batch-3");
  EXPECT_TRUE(retry.duplicate);
  EXPECT_EQ(recovered->generation(), reference->generation());
}

TEST_F(SvcWalRecoveryTest, CrashBetweenSnapshotAndWalResetIsHarmless) {
  const std::string wal = fresh_wal("midcompact.wal");

  // Run compaction normally (snapshot written, WAL reset)...
  auto durable = make_state();
  svc::DurabilityOptions durability;
  durability.wal_path = wal;
  durability.snapshot_every = 2;
  std::string error;
  ASSERT_TRUE(durable->recover_and_arm(durability, nullptr, &error)) << error;
  durable->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "batch-1");
  durable->ingest_append((*batches_)[1].ssl, (*batches_)[1].x509, "batch-2");
  durable.reset();

  // ...then reconstruct the disk state of a crash BETWEEN the two steps:
  // the snapshot exists AND the pre-reset WAL still holds the records it
  // absorbed. The framed bytes are deterministic, so the pre-compaction WAL
  // can be rebuilt exactly.
  std::string stale = svc::encode_wal_header();
  for (std::uint64_t seq = 1; seq <= 2; ++seq) {
    svc::WalRecord record;
    record.seq = seq;
    record.idempotency_key = "batch-" + std::to_string(seq);
    record.ssl_rows = (*batches_)[seq - 1].ssl;
    record.x509_rows = (*batches_)[seq - 1].x509;
    stale += svc::encode_wal_record(record);
  }
  ASSERT_TRUE(write_file(wal, stale));

  // Recovery must skip every absorbed record (seq <= snapshot frontier) and
  // land on the same state as a clean run of the two batches.
  auto recovered = make_state();
  svc::RecoveryStats stats;
  ASSERT_TRUE(recovered->recover_and_arm(durability, &stats, &error)) << error;
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.wal_records_seen, 2u);
  EXPECT_EQ(stats.wal_records_applied, 0u);
  EXPECT_EQ(stats.wal_records_skipped, 2u);

  auto reference = make_state();
  reference->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "batch-1");
  reference->ingest_append((*batches_)[1].ssl, (*batches_)[1].x509, "batch-2");
  EXPECT_EQ(recovered->generation(), reference->generation());
  EXPECT_EQ(full_report(*recovered), full_report(*reference));
}

TEST_F(SvcWalRecoveryTest, LedgerBoundEvictsOldestKeysFirst) {
  const std::string wal = fresh_wal("ledger.wal");
  auto state = make_state();
  svc::DurabilityOptions durability;
  durability.wal_path = wal;
  durability.applied_ledger_max = 2;
  std::string error;
  ASSERT_TRUE(state->recover_and_arm(durability, nullptr, &error)) << error;

  ingest_all(*state);  // keys batch-1..batch-3; the bound keeps the last two
  const std::uint64_t generation = state->generation();

  // The most recent keys still answer as duplicates...
  EXPECT_TRUE(state
                  ->ingest_append((*batches_)[2].ssl, (*batches_)[2].x509,
                                  "batch-3")
                  .duplicate);
  EXPECT_TRUE(state
                  ->ingest_append((*batches_)[1].ssl, (*batches_)[1].x509,
                                  "batch-2")
                  .duplicate);
  EXPECT_EQ(state->generation(), generation);

  // ...while the evicted oldest key re-folds: the documented trade-off of
  // a bounded ledger (pick the bound above the client retry horizon).
  const svc::AppendResult evicted =
      state->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "batch-1");
  EXPECT_FALSE(evicted.duplicate);
  EXPECT_EQ(state->generation(), generation + 1);
}

TEST_F(SvcWalRecoveryTest, LedgerBoundSurvivesSnapshotRecovery) {
  const std::string wal = fresh_wal("ledger_recover.wal");
  svc::DurabilityOptions durability;
  durability.wal_path = wal;
  durability.snapshot_every = 2;  // snapshot carries the (bounded) ledger
  durability.applied_ledger_max = 2;
  {
    auto durable = make_state();
    std::string error;
    ASSERT_TRUE(durable->recover_and_arm(durability, nullptr, &error)) << error;
    ingest_all(*durable);
  }

  auto recovered = make_state();
  std::string error;
  ASSERT_TRUE(recovered->recover_and_arm(durability, nullptr, &error)) << error;
  const std::uint64_t generation = recovered->generation();
  EXPECT_TRUE(recovered
                  ->ingest_append((*batches_)[2].ssl, (*batches_)[2].x509,
                                  "batch-3")
                  .duplicate);
  EXPECT_EQ(recovered->generation(), generation);
  EXPECT_FALSE(recovered
                   ->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509,
                                   "batch-1")
                   .duplicate);
  EXPECT_EQ(recovered->generation(), generation + 1);
}

TEST_F(SvcWalRecoveryTest, RepeatedRowsAcrossAppendsRecoverIdentically) {
  // The snapshot records an appended X509 row only when its fuid was new to
  // the joiner (first observation wins), so overlapping batches must not
  // change what recovery rebuilds — through both the snapshot and the
  // WAL-tail replay path.
  const std::string wal = fresh_wal("repeat.wal");
  svc::DurabilityOptions durability;
  durability.wal_path = wal;
  durability.snapshot_every = 2;  // appends 1+2 compact; append 3 replays

  auto reference = make_state();
  reference->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "A");
  reference->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "B");
  reference->ingest_append((*batches_)[1].ssl, (*batches_)[1].x509, "C");

  {
    auto durable = make_state();
    std::string error;
    ASSERT_TRUE(durable->recover_and_arm(durability, nullptr, &error)) << error;
    durable->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "A");
    durable->ingest_append((*batches_)[0].ssl, (*batches_)[0].x509, "B");
    durable->ingest_append((*batches_)[1].ssl, (*batches_)[1].x509, "C");
    EXPECT_EQ(full_report(*durable), full_report(*reference));
  }

  auto recovered = make_state();
  svc::RecoveryStats stats;
  std::string error;
  ASSERT_TRUE(recovered->recover_and_arm(durability, &stats, &error)) << error;
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(recovered->generation(), reference->generation());
  EXPECT_EQ(full_report(*recovered), full_report(*reference));
}

}  // namespace
}  // namespace certchain
