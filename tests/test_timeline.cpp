// Monthly timeline analyzer.
#include "core/timeline.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"

namespace certchain::core {
namespace {

using certchain::testing::TestPki;
using certchain::testing::make_chain;
using certchain::testing::self_signed;

zeek::JoinedConnection at_time(const chain::CertificateChain& chain,
                               util::SimTime ts, bool established = true) {
  zeek::JoinedConnection connection;
  connection.ssl.ts = ts;
  connection.ssl.id_orig_h = "10.0.0.1";
  connection.ssl.id_resp_h = "198.51.100.1";
  connection.ssl.id_resp_p = 443;
  connection.ssl.version = "TLSv12";
  connection.ssl.established = established;
  connection.chain = chain;
  return connection;
}

TEST(MonthKey, Formatting) {
  EXPECT_EQ(month_key(util::make_time(2020, 9, 1)), "2020-09");
  EXPECT_EQ(month_key(util::make_time(2021, 12, 31, 23, 59, 59)), "2021-12");
}

TEST(Timeline, EmptyCorpus) {
  const CorpusIndex corpus;
  const truststore::TrustStoreSet stores;
  const TimelineReport report = build_timeline(corpus, stores, {});
  EXPECT_TRUE(report.months.empty());
  EXPECT_TRUE(report.series.empty());
}

TEST(Timeline, MonthSpanCoversWindowAndSeriesAlign) {
  TestPki pki;
  const auto stores = pki.trusted_stores();
  CorpusIndex corpus;
  // Public chain seen in September and again in December.
  const auto pub = pki.chain_for("tl.example");
  corpus.add(at_time(pub, util::make_time(2020, 9, 15)));
  corpus.add(at_time(pub, util::make_time(2020, 12, 15)));
  // Non-public single seen only in October.
  corpus.add(at_time(make_chain({self_signed("tl-box")}),
                     util::make_time(2020, 10, 2), false));

  const TimelineReport report = build_timeline(corpus, stores, {});
  ASSERT_EQ(report.months.size(), 4u);  // 2020-09 .. 2020-12
  EXPECT_EQ(report.months.front(), "2020-09");
  EXPECT_EQ(report.months.back(), "2020-12");
  for (const auto& [category, series] : report.series) {
    EXPECT_EQ(series.size(), report.months.size());
  }
}

TEST(Timeline, NewChainsAttributedToFirstMonth) {
  TestPki pki;
  const auto stores = pki.trusted_stores();
  CorpusIndex corpus;
  const auto chain = pki.chain_for("tl2.example");
  corpus.add(at_time(chain, util::make_time(2021, 2, 1)));
  corpus.add(at_time(chain, util::make_time(2021, 4, 1)));

  const TimelineReport report = build_timeline(corpus, stores, {});
  const auto& series = report.series.at(chain::ChainCategory::kPublicDbOnly);
  EXPECT_EQ(series[0].month, "2021-02");
  EXPECT_EQ(series[0].new_chains, 1u);
  EXPECT_EQ(series[1].new_chains, 0u);
  EXPECT_EQ(series[2].new_chains, 0u);
}

TEST(Timeline, ConnectionTotalsArePreservedAcrossSpread) {
  TestPki pki;
  const auto stores = pki.trusted_stores();
  CorpusIndex corpus;
  const auto chain = pki.chain_for("tl3.example");
  // 7 connections across a 3-month span: spread must sum back to 7.
  corpus.add(at_time(chain, util::make_time(2021, 1, 10)));
  for (int i = 0; i < 5; ++i) {
    corpus.add(at_time(chain, util::make_time(2021, 2, 10 + i)));
  }
  corpus.add(at_time(chain, util::make_time(2021, 3, 10)));

  const TimelineReport report = build_timeline(corpus, stores, {});
  const auto& series = report.series.at(chain::ChainCategory::kPublicDbOnly);
  std::uint64_t total = 0;
  for (const MonthlyRow& row : series) total += row.connections;
  EXPECT_EQ(total, 7u);
}

TEST(Timeline, InterceptionSetRoutesCategories) {
  TestPki pki;
  const auto stores = pki.trusted_stores();
  x509::Certificate forged = self_signed("victim.example");
  forged.issuer = certchain::testing::dn("CN=MBox SSL CA,O=MBox");
  CorpusIndex corpus;
  corpus.add(at_time(make_chain({forged}), util::make_time(2021, 5, 5)));

  chain::InterceptionIssuerSet interception{forged.issuer.canonical()};
  const TimelineReport with = build_timeline(corpus, stores, interception);
  EXPECT_TRUE(with.series.contains(chain::ChainCategory::kTlsInterception));
  const TimelineReport without = build_timeline(corpus, stores, {});
  EXPECT_TRUE(without.series.contains(chain::ChainCategory::kNonPublicDbOnly));
}

}  // namespace
}  // namespace certchain::core
