// Trust stores, CCADB eligibility, and the §3.2.1 issuer classification.
#include "truststore/trust_store.hpp"

#include <gtest/gtest.h>

#include "../tests/helpers.hpp"

namespace certchain::truststore {
namespace {

using certchain::testing::TestPki;
using certchain::testing::dn;
using certchain::testing::self_signed;
using certchain::testing::test_validity;

TEST(TrustStore, AddIsIdempotentByFingerprint) {
  TestPki pki;
  TrustStore store(RootProgram::kMozillaNss);
  store.add(pki.root_cert);
  store.add(pki.root_cert);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.contains_fingerprint(pki.root_cert.fingerprint()));
  EXPECT_TRUE(store.contains_subject(pki.root_cert.subject));
}

TEST(TrustStore, FindBySubjectReturnsAllMatches) {
  TestPki pki;
  TrustStore store(RootProgram::kApple);
  store.add(pki.root_cert);
  // A re-keyed root with the same DN.
  x509::CertificateAuthority rekeyed(pki.root_ca.name(), "rekeyed-root");
  store.add(rekeyed.make_root(test_validity()));
  const auto found = store.find_by_subject(pki.root_ca.name());
  EXPECT_EQ(found.size(), 2u);
  EXPECT_TRUE(store.find_by_subject(dn("CN=Unknown")).empty());
}

TEST(Ccadb, EligibilityRequiresChainAndAuditOrConstraint) {
  CcadbRecord record;
  record.chains_to_participating_root = true;
  record.publicly_audited = true;
  EXPECT_TRUE(record.eligible());

  record.publicly_audited = false;
  record.technically_constrained = true;
  EXPECT_TRUE(record.eligible());

  record.technically_constrained = false;
  EXPECT_FALSE(record.eligible());  // chains but neither constrained nor audited

  record.publicly_audited = true;
  record.chains_to_participating_root = false;
  EXPECT_FALSE(record.eligible());  // audited but does not chain
}

TEST(Ccadb, IneligibleRecordsDoNotClassify) {
  TestPki pki;
  Ccadb ccadb;
  CcadbRecord record;
  record.certificate = pki.intermediate_cert;
  record.chains_to_participating_root = true;  // not audited/constrained
  ccadb.add(record);
  EXPECT_EQ(ccadb.record_count(), 1u);
  EXPECT_EQ(ccadb.eligible_count(), 0u);
  EXPECT_FALSE(ccadb.contains_subject(pki.intermediate_cert.subject));

  record.publicly_audited = true;
  ccadb.add(record);
  EXPECT_TRUE(ccadb.contains_subject(pki.intermediate_cert.subject));
  EXPECT_EQ(ccadb.find_by_subject(pki.intermediate_cert.subject).size(), 1u);
}

TEST(TrustStoreSet, ClassifiesIssuersPerPaperRule) {
  TestPki pki;
  const TrustStoreSet stores = pki.trusted_stores();

  // Leaf issued by the CCADB-disclosed intermediate -> public-DB.
  TestPki mutable_pki = pki;
  const x509::Certificate leaf = mutable_pki.leaf("classify.example");
  EXPECT_EQ(stores.classify_certificate(leaf), IssuerClass::kPublicDb);

  // Intermediate issued by the stored root -> public-DB.
  EXPECT_EQ(stores.classify_certificate(pki.intermediate_cert),
            IssuerClass::kPublicDb);

  // Self-signed stranger -> non-public-DB.
  EXPECT_EQ(stores.classify_certificate(self_signed("stranger")),
            IssuerClass::kNonPublicDb);
}

TEST(TrustStoreSet, MembershipInAnySingleStoreSuffices) {
  TestPki pki;
  TrustStoreSet stores;
  // Root only in the Microsoft store (the FPKI pattern).
  stores.store(RootProgram::kMicrosoft).add(pki.root_cert);
  EXPECT_EQ(stores.classify_issuer(pki.root_ca.name()), IssuerClass::kPublicDb);
  EXPECT_TRUE(stores.is_known_subject(pki.root_ca.name()));
  EXPECT_TRUE(stores.is_trust_anchor(pki.root_cert));

  TrustStoreSet empty;
  EXPECT_EQ(empty.classify_issuer(pki.root_ca.name()), IssuerClass::kNonPublicDb);
  EXPECT_FALSE(empty.is_trust_anchor(pki.root_cert));
}

TEST(TrustStoreSet, FindIssuerCandidatesSpansStoresAndCcadb) {
  TestPki pki;
  const TrustStoreSet stores = pki.trusted_stores();
  // Root present in all three program stores -> three candidates.
  EXPECT_EQ(stores.find_issuer_candidates(pki.root_ca.name()).size(), 3u);
  // Intermediate only in CCADB -> one candidate.
  EXPECT_EQ(stores.find_issuer_candidates(pki.intermediate_ca.name()).size(), 1u);
  EXPECT_TRUE(stores.find_issuer_candidates(dn("CN=Nobody")).empty());
}

TEST(TrustStoreSet, Names) {
  EXPECT_EQ(root_program_name(RootProgram::kMozillaNss), "Mozilla NSS");
  EXPECT_EQ(issuer_class_name(IssuerClass::kPublicDb), "public-DB");
  EXPECT_EQ(issuer_class_name(IssuerClass::kNonPublicDb), "non-public-DB");
}

}  // namespace
}  // namespace certchain::truststore
