// Tests for hashing, strings, time, stats, base64 and table rendering.
#include <gtest/gtest.h>

#include <set>

#include "util/base64.hpp"
#include "util/hash.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace certchain::util {

// Local splitmix used by the base64 property test.
std::uint64_t splitmix_step(std::uint64_t& state);

namespace {

// --- hash -------------------------------------------------------------------

TEST(Digest256, DeterministicAndDistinct) {
  EXPECT_EQ(digest256("hello"), digest256("hello"));
  EXPECT_NE(digest256("hello"), digest256("hellp"));
  EXPECT_NE(digest256(""), digest256(std::string_view("\0", 1)));
}

TEST(Digest256, HexRoundTrip) {
  const Digest256 digest = digest256("round trip me");
  Digest256 parsed;
  ASSERT_TRUE(Digest256::from_hex(digest.to_hex(), parsed));
  EXPECT_EQ(parsed, digest);
}

TEST(Digest256, FromHexRejectsMalformed) {
  Digest256 out;
  EXPECT_FALSE(Digest256::from_hex("zz", out));
  EXPECT_FALSE(Digest256::from_hex(std::string(63, 'a'), out));
  EXPECT_FALSE(Digest256::from_hex(std::string(63, 'a') + "g", out));
  EXPECT_TRUE(Digest256::from_hex(std::string(64, 'A'), out));  // upper ok
}

TEST(Digest256, PrefixOfSimilarStringsDoesNotCollide) {
  // Regression: the first output word must depend on every input byte (see
  // the lane-diffusion fix in hash.cpp).
  std::set<std::string> prefixes;
  for (int i = 0; i < 4000; ++i) {
    prefixes.insert(digest256_hex("serial/np-" + std::to_string(i)).substr(0, 16));
  }
  EXPECT_EQ(prefixes.size(), 4000u);
}

TEST(Digest256, LengthExtensionDistinct) {
  EXPECT_NE(digest256("ab"), digest256("abc"));
  EXPECT_NE(digest256("a\0b"), digest256("ab"));
}

TEST(Fnv1a64, KnownVector) {
  // FNV-1a("") = offset basis.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), (0xCBF29CE484222325ULL ^ 'a') * 0x100000001B3ULL);
}

TEST(ZeekIds, ShapeAndDeterminism) {
  const std::string fuid = zeek_style_fuid("cert-content");
  EXPECT_EQ(fuid.size(), 18u);
  EXPECT_EQ(fuid[0], 'F');
  EXPECT_EQ(fuid, zeek_style_fuid("cert-content"));
  EXPECT_NE(fuid, zeek_style_fuid("other-content"));

  const std::string uid = zeek_style_conn_uid(1, 2);
  EXPECT_EQ(uid.size(), 18u);
  EXPECT_EQ(uid[0], 'C');
  EXPECT_NE(uid, zeek_style_conn_uid(2, 2));
  EXPECT_NE(uid, zeek_style_conn_uid(1, 3));
}

// --- strings ----------------------------------------------------------------

TEST(Strings, SplitBasics) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split_nonempty("a,,c,", ','), (std::vector<std::string>{"a", "c"}));
}

TEST(Strings, JoinInvertsSplit) {
  const std::string text = "x|yy|zzz";
  EXPECT_EQ(join(split(text, '|'), "|"), text);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a"), "a");
}

TEST(Strings, CaseAndAffixes) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_TRUE(ends_with("hello", "lo"));
  EXPECT_FALSE(ends_with("lo", "hello"));
  EXPECT_TRUE(contains("abcdef", "cde"));
  EXPECT_FALSE(contains("abcdef", "xyz"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("none", "xyz", "!"), "none");
  EXPECT_EQ(replace_all("abab", "ab", "ab"), "abab");
  EXPECT_EQ(replace_all("x", "", "!"), "x");  // empty needle is a no-op
}

TEST(Strings, Formatting) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567890), "1,234,567,890");
  EXPECT_EQ(percent(97, 100), "97.00");
  EXPECT_EQ(percent(1, 3, 1), "33.3");
  EXPECT_EQ(percent(5, 0), "0.00");  // divide-by-zero guard
}

// --- time -------------------------------------------------------------------

TEST(Time, EpochConstants) {
  EXPECT_EQ(make_time(1970, 1, 1), 0);
  EXPECT_EQ(make_time(1970, 1, 2), kSecondsPerDay);
  EXPECT_EQ(make_time(2020, 9, 1), 1598918400);  // paper collection start
}

struct CivilCase {
  int year, month, day;
};

class TimeRoundTrip : public ::testing::TestWithParam<CivilCase> {};

TEST_P(TimeRoundTrip, CivilConversionRoundTrips) {
  const auto& c = GetParam();
  const SimTime t = make_time(c.year, c.month, c.day, 13, 45, 59);
  const CivilTime back = to_civil(t);
  EXPECT_EQ(back.year, c.year);
  EXPECT_EQ(back.month, c.month);
  EXPECT_EQ(back.day, c.day);
  EXPECT_EQ(back.hour, 13);
  EXPECT_EQ(back.minute, 45);
  EXPECT_EQ(back.second, 59);
}

INSTANTIATE_TEST_SUITE_P(
    Dates, TimeRoundTrip,
    ::testing::Values(CivilCase{1970, 1, 1}, CivilCase{2000, 2, 29},
                      CivilCase{2020, 9, 1}, CivilCase{2021, 8, 31},
                      CivilCase{2024, 11, 30}, CivilCase{2038, 1, 19},
                      CivilCase{1999, 12, 31}, CivilCase{2100, 3, 1}));

TEST(Time, Formatting) {
  EXPECT_EQ(format_iso8601(make_time(2020, 9, 1, 6, 5, 4)), "2020-09-01T06:05:04Z");
  EXPECT_EQ(format_date(make_time(2024, 11, 15)), "2024-11-15");
}

TEST(Time, RangeSemantics) {
  const TimeRange range{100, 200};
  EXPECT_TRUE(range.contains(100));
  EXPECT_TRUE(range.contains(199));
  EXPECT_FALSE(range.contains(200));  // half-open
  EXPECT_FALSE(range.contains(99));
  EXPECT_EQ(range.duration(), 100);

  EXPECT_TRUE((TimeRange{0, 10}.overlaps(TimeRange{9, 20})));
  EXPECT_FALSE((TimeRange{0, 10}.overlaps(TimeRange{10, 20})));  // touching
  EXPECT_TRUE((TimeRange{5, 6}.overlaps(TimeRange{0, 100})));
}

TEST(Time, StudyWindows) {
  const TimeRange collection = study::collection_window();
  EXPECT_EQ(format_date(collection.begin), "2020-09-01");
  EXPECT_EQ(format_date(collection.end), "2021-09-01");
  const TimeRange revisit = study::revisit_window();
  EXPECT_EQ(format_date(revisit.begin), "2024-11-01");
  EXPECT_FALSE(collection.overlaps(revisit));
}

// --- stats ------------------------------------------------------------------

TEST(Counter, CountsAndOrdering) {
  Counter<std::string> counter;
  counter.add("b");
  counter.add("a", 3);
  counter.add("b", 2);
  EXPECT_EQ(counter.count("a"), 3u);
  EXPECT_EQ(counter.count("b"), 3u);
  EXPECT_EQ(counter.count("missing"), 0u);
  EXPECT_EQ(counter.total(), 6u);
  EXPECT_EQ(counter.distinct(), 2u);
  const auto sorted = counter.by_count_desc();
  // Ties broken by key order: "a" before "b".
  EXPECT_EQ(sorted[0].first, "a");
}

TEST(EmpiricalCdf, QuantilesAndEvaluation) {
  EmpiricalCdf cdf;
  for (const double v : {1.0, 2.0, 2.0, 3.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
}

TEST(EmpiricalCdf, EmptyIsSafe) {
  const EmpiricalCdf cdf;
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.empty());
}

TEST(Histogram, BinningAndClamping) {
  Histogram hist(0.0, 1.0, 10);
  hist.add(0.05);        // bin 0
  hist.add(0.999);       // bin 9
  hist.add(1.5);         // clamps into bin 9
  hist.add(-3.0);        // clamps into bin 0
  hist.add(0.55, 4);     // bin 5, weighted
  EXPECT_EQ(hist.bin(0), 2u);
  EXPECT_EQ(hist.bin(9), 2u);
  EXPECT_EQ(hist.bin(5), 4u);
  EXPECT_EQ(hist.total(), 8u);
  EXPECT_NEAR(hist.bin_center(0), 0.05, 1e-9);
}

TEST(Histogram, RejectsDegenerateConfig) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Summary, RunningMoments) {
  Summary summary;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) summary.add(v);
  EXPECT_EQ(summary.count(), 8u);
  EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
  EXPECT_DOUBLE_EQ(summary.min(), 2.0);
  EXPECT_DOUBLE_EQ(summary.max(), 9.0);
  EXPECT_NEAR(summary.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(Summary, EmptyAndSingle) {
  Summary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
  summary.add(3.0);
  EXPECT_DOUBLE_EQ(summary.mean(), 3.0);
  EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
}

// --- base64 -----------------------------------------------------------------

TEST(Base64, KnownVectors) {
  EXPECT_EQ(base64_encode(""), "");
  EXPECT_EQ(base64_encode("f"), "Zg==");
  EXPECT_EQ(base64_encode("fo"), "Zm8=");
  EXPECT_EQ(base64_encode("foo"), "Zm9v");
  EXPECT_EQ(base64_encode("foobar"), "Zm9vYmFy");
}

class Base64RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Base64RoundTrip, EncodeDecodeIdentity) {
  // Pseudo-random binary payload of the parameterized length.
  std::string payload;
  std::uint64_t state = GetParam() * 0x9E3779B97F4A7C15ULL + 1;
  for (int i = 0; i < GetParam(); ++i) {
    payload.push_back(static_cast<char>(splitmix_step(state)));
  }
  const auto decoded = base64_decode(base64_encode(payload));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, payload);
}

INSTANTIATE_TEST_SUITE_P(Lengths, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 63, 64, 65, 255,
                                           1000));

TEST(Base64, DecodeSkipsWhitespace) {
  EXPECT_EQ(base64_decode("Zm9v\nYmFy\n"), "foobar");
  EXPECT_EQ(base64_decode("  Z m 9 v "), "foo");
}

TEST(Base64, DecodeRejectsGarbage) {
  EXPECT_FALSE(base64_decode("Zm9v!").has_value());
  EXPECT_FALSE(base64_decode("Zg=A").has_value());   // data after padding
  EXPECT_FALSE(base64_decode("Zg===").has_value());  // too much padding
  EXPECT_FALSE(base64_decode("Z").has_value());      // dangling 6 bits
}

// --- table ------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"Port", "%"});
  table.add_row({"443", "97.21"});
  table.add_row({"8443", "1.36"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Port"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("443"), std::string::npos);
  // Numeric column right-aligned: " 1.36" under "97.21".
  EXPECT_NE(out.find(" 1.36"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(table.set_alignments({Align::kLeft}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, SeparatorRows) {
  TextTable table({"k", "v"});
  table.add_row({"x", "1"});
  table.add_separator();
  table.add_row({"total", "1"});
  const std::string out = table.render();
  // Three rules: under the header, the separator, and none trailing.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("-\n"); pos != std::string::npos;
       pos = out.find("-\n", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 2u);
}

}  // namespace

// Local splitmix used by the base64 property test (kept out of the anonymous
// namespace so the name in the test reads clearly).
std::uint64_t splitmix_step(std::uint64_t& state) { return splitmix64(state); }

}  // namespace certchain::util
