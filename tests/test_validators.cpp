// Validation: issuer–subject vs key–signature (Appendix D / Table 5) and the
// Chrome-like vs OpenSSL-like client disagreement (§5).
#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "validation/client_validators.hpp"
#include "validation/pairwise_validators.hpp"

namespace certchain::validation {
namespace {

using certchain::testing::TestPki;
using certchain::testing::dn;
using certchain::testing::make_chain;
using certchain::testing::self_signed;
using certchain::testing::test_validity;

const util::SimTime kNow = util::make_time(2021, 3, 1);

// --- pairwise validators -------------------------------------------------------

TEST(PairwiseValidators, AgreeOnSingleCertificateChains) {
  TestPki pki;
  const auto chain = make_chain({pki.leaf("single.example")});
  EXPECT_EQ(IssuerSubjectValidator().validate(chain).verdict,
            ChainVerdict::kSingleCertificate);
  EXPECT_EQ(KeySignatureValidator().validate(chain).verdict,
            ChainVerdict::kSingleCertificate);
}

TEST(PairwiseValidators, AgreeOnValidChains) {
  TestPki pki;
  const auto chain = pki.chain_for("valid.example", true);
  EXPECT_TRUE(IssuerSubjectValidator().validate(chain).valid());
  EXPECT_TRUE(KeySignatureValidator().validate(chain).valid());
}

TEST(PairwiseValidators, AgreeOnBrokenChainsAndPositions) {
  TestPki pki;
  const auto chain = make_chain({pki.leaf("broken.example"), self_signed("stray"),
                                 pki.intermediate_cert});
  const auto issuer_subject = IssuerSubjectValidator().validate(chain);
  const auto key_signature = KeySignatureValidator().validate(chain);
  EXPECT_EQ(issuer_subject.verdict, ChainVerdict::kBroken);
  EXPECT_EQ(key_signature.verdict, ChainVerdict::kBroken);
  // The paper found the mismatch positions align between the two methods.
  EXPECT_EQ(issuer_subject.failure_positions, key_signature.failure_positions);
}

TEST(PairwiseValidators, DisagreeOnUnrecognizedKeys) {
  // The Table 5 corner: a chain whose issuer key the strict verifier cannot
  // process. issuer-subject says valid; key-signature says unrecognized.
  x509::CertificateAuthority gost_root(dn("CN=Gost Root,O=Gost"), "gost-root",
                                       crypto::KeyAlgorithm::kGostR3410);
  const x509::Certificate root_cert = gost_root.make_root(test_validity());
  x509::DistinguishedName subject;
  subject.add("CN", "gost.example");
  const x509::Certificate leaf =
      gost_root.issue_leaf(subject, "gost.example", test_validity());
  const auto chain = make_chain({leaf, root_cert});

  EXPECT_TRUE(IssuerSubjectValidator().validate(chain).valid());
  EXPECT_EQ(KeySignatureValidator().validate(chain).verdict,
            ChainVerdict::kUnrecognizedKey);
  // A tolerant verifier accepts it.
  KeySignatureValidator::Options tolerant;
  tolerant.accept_all_algorithms = true;
  EXPECT_TRUE(KeySignatureValidator(tolerant).validate(chain).valid());
}

TEST(PairwiseValidators, DisagreeOnMalformedEncoding) {
  // The other Table 5 corner: an ASN.1-damaged certificate. Names still
  // compare fine; the strict parser aborts.
  TestPki pki;
  auto certs = pki.chain_for("asn1.example", true).certs();
  certs[1].malformed_encoding = true;
  const auto chain = make_chain(std::move(certs));
  EXPECT_TRUE(IssuerSubjectValidator().validate(chain).valid());
  const auto key_signature = KeySignatureValidator().validate(chain);
  EXPECT_EQ(key_signature.verdict, ChainVerdict::kBroken);
  EXPECT_NE(key_signature.detail.find("ASN.1"), std::string::npos);
}

TEST(PairwiseValidators, KeySignatureCatchesForgedLink) {
  // Names match but the signature was never made by the claimed issuer: the
  // impersonation case issuer-subject provably cannot catch (App. D limits).
  TestPki pki;
  x509::CertificateAuthority imposter(pki.intermediate_ca.name(), "imposter-key");
  x509::DistinguishedName subject;
  subject.add("CN", "forged.example");
  const x509::Certificate forged_leaf =
      imposter.issue_leaf(subject, "forged.example", test_validity());
  const auto chain = make_chain({forged_leaf, pki.intermediate_cert});
  EXPECT_TRUE(IssuerSubjectValidator().validate(chain).valid());
  EXPECT_EQ(KeySignatureValidator().validate(chain).verdict, ChainVerdict::kBroken);
}

TEST(PairwiseValidators, CrossSignRegistryFeedsIssuerSubject) {
  TestPki pki;
  x509::CertificateAuthority cross(dn("CN=Cross Root"), "cross2");
  const auto chain =
      make_chain({pki.leaf("cs2.example"), cross.make_root(test_validity())});
  EXPECT_EQ(IssuerSubjectValidator().validate(chain).verdict, ChainVerdict::kBroken);
  chain::CrossSignRegistry registry;
  registry.add_equivalence(pki.intermediate_ca.name(), cross.name());
  EXPECT_TRUE(IssuerSubjectValidator(&registry).validate(chain).valid());
}

// --- client validators ----------------------------------------------------------

class ClientValidatorTest : public ::testing::Test {
 protected:
  TestPki pki_;
  truststore::TrustStoreSet stores_ = pki_.trusted_stores();
  truststore::TrustStore host_store_{truststore::RootProgram::kMozillaNss};

  void SetUp() override { host_store_.add(pki_.root_cert); }
};

TEST_F(ClientValidatorTest, BothAcceptWellFormedChain) {
  const auto chain = pki_.chain_for("good.example");
  EXPECT_TRUE(ChromeLikeValidator(stores_).validate(chain, kNow).accepted());
  EXPECT_TRUE(OpenSslLikeValidator(host_store_).validate(chain, kNow).accepted());
}

TEST_F(ClientValidatorTest, ChromeIgnoresUnnecessaryCertificates) {
  auto chain = pki_.chain_for("extras.example", true);
  chain.push_back(self_signed("staging-leftover"));
  EXPECT_TRUE(ChromeLikeValidator(stores_).validate(chain, kNow).accepted());
}

TEST_F(ClientValidatorTest, OpenSslSurvivesTrailingExtrasViaStoreLookup) {
  // Extras *after* the anchor are never walked: the store lookup resolves
  // the intermediate's issuer first.
  auto chain = pki_.chain_for("trailing.example");
  chain.push_back(self_signed("trailing-extra"));
  EXPECT_TRUE(OpenSslLikeValidator(host_store_).validate(chain, kNow).accepted());
}

TEST_F(ClientValidatorTest, DisagreementOnBrokenOrder) {
  // §5: a foreign certificate spliced between leaf and intermediate. Chrome
  // path-builds around it; OpenSSL's ordered walk fails.
  auto certs = pki_.chain_for("order.example", true).certs();
  std::vector<x509::Certificate> shuffled{certs[0], self_signed("splice"), certs[1],
                                          certs[2]};
  const auto chain = make_chain(std::move(shuffled));
  EXPECT_TRUE(ChromeLikeValidator(stores_).validate(chain, kNow).accepted());
  const auto openssl = OpenSslLikeValidator(host_store_).validate(chain, kNow);
  EXPECT_EQ(openssl.verdict, ClientVerdict::kBrokenOrder);
}

TEST_F(ClientValidatorTest, DisagreementOnMissingIntermediate) {
  // Chrome completes the path from its intermediate preload (CCADB); the
  // host store has roots only, so OpenSSL cannot find the issuer.
  const auto chain = make_chain({pki_.leaf("missing-int.example")});
  EXPECT_TRUE(ChromeLikeValidator(stores_).validate(chain, kNow).accepted());
  const auto openssl = OpenSslLikeValidator(host_store_).validate(chain, kNow);
  EXPECT_EQ(openssl.verdict, ClientVerdict::kNoTrustAnchor);
  EXPECT_NE(openssl.detail.find("unable to get local issuer"), std::string::npos);
}

TEST_F(ClientValidatorTest, DisagreementOnHostStoreContents) {
  // The anchor exists in the browser databases but not on the host (the
  // §5 "trust anchors maintained by the host" factor).
  const truststore::TrustStore empty_host(truststore::RootProgram::kMozillaNss);
  const auto chain = pki_.chain_for("storegap.example", true);
  EXPECT_TRUE(ChromeLikeValidator(stores_).validate(chain, kNow).accepted());
  EXPECT_EQ(OpenSslLikeValidator(empty_host).validate(chain, kNow).verdict,
            ClientVerdict::kNoTrustAnchor);
}

TEST_F(ClientValidatorTest, BothRejectSelfSignedStranger) {
  const auto chain = make_chain({self_signed("stranger.example")});
  EXPECT_FALSE(ChromeLikeValidator(stores_).validate(chain, kNow).accepted());
  const auto openssl = OpenSslLikeValidator(host_store_).validate(chain, kNow);
  EXPECT_EQ(openssl.verdict, ClientVerdict::kNoTrustAnchor);
  EXPECT_EQ(openssl.detail, "self-signed certificate");
}

TEST_F(ClientValidatorTest, ExpiredLeafRejectedByBoth) {
  x509::DistinguishedName subject;
  subject.add("CN", "expired.example");
  const x509::Certificate leaf = pki_.intermediate_ca.issue_leaf(
      subject, "expired.example",
      {util::make_time(2015, 1, 1), util::make_time(2016, 1, 1)});
  const auto chain = make_chain({leaf, pki_.intermediate_cert});
  EXPECT_EQ(ChromeLikeValidator(stores_).validate(chain, kNow).verdict,
            ClientVerdict::kExpired);
  EXPECT_EQ(OpenSslLikeValidator(host_store_).validate(chain, kNow).verdict,
            ClientVerdict::kExpired);
}

TEST_F(ClientValidatorTest, ForgedSignatureRejected) {
  x509::CertificateAuthority imposter(pki_.intermediate_ca.name(), "imposter2");
  x509::DistinguishedName subject;
  subject.add("CN", "forged2.example");
  const x509::Certificate forged =
      imposter.issue_leaf(subject, "forged2.example", test_validity());
  const auto chain = make_chain({forged, pki_.intermediate_cert});
  EXPECT_FALSE(ChromeLikeValidator(stores_).validate(chain, kNow).accepted());
  EXPECT_EQ(OpenSslLikeValidator(host_store_).validate(chain, kNow).verdict,
            ClientVerdict::kBadSignature);
}

TEST_F(ClientValidatorTest, ChromeBacktracksPastDecoyIssuer) {
  // A decoy with the right subject but wrong key sits in the presented pool;
  // the path builder must back out and use the genuine store copy.
  x509::CertificateAuthority decoy_ca(pki_.intermediate_ca.name(), "decoy-key");
  x509::Certificate decoy = pki_.root_ca.issue_intermediate(decoy_ca, test_validity());
  // decoy has the intermediate's DN but a different key and serial.
  auto chain = make_chain({pki_.leaf("decoy.example"), decoy});
  const auto result = ChromeLikeValidator(stores_).validate(chain, kNow);
  EXPECT_TRUE(result.accepted());
}

TEST_F(ClientValidatorTest, PartialChainOptionAcceptsIntermediateAnchor) {
  truststore::TrustStore intermediate_store(truststore::RootProgram::kMozillaNss);
  intermediate_store.add(pki_.intermediate_cert);
  const auto chain = pki_.chain_for("partial.example");

  OpenSslLikeValidator::Options strict;
  EXPECT_FALSE(
      OpenSslLikeValidator(intermediate_store, strict).validate(chain, kNow).accepted());

  OpenSslLikeValidator::Options partial;
  partial.partial_chain = true;
  EXPECT_TRUE(
      OpenSslLikeValidator(intermediate_store, partial).validate(chain, kNow).accepted());
}

TEST_F(ClientValidatorTest, EmptyChains) {
  const chain::CertificateChain empty;
  EXPECT_EQ(ChromeLikeValidator(stores_).validate(empty, kNow).verdict,
            ClientVerdict::kEmptyChain);
  EXPECT_EQ(OpenSslLikeValidator(host_store_).validate(empty, kNow).verdict,
            ClientVerdict::kEmptyChain);
}

TEST_F(ClientValidatorTest, ChromePathContainsLeafToRoot) {
  const auto chain = pki_.chain_for("pathy.example");
  const auto result = ChromeLikeValidator(stores_).validate(chain, kNow);
  ASSERT_TRUE(result.accepted());
  ASSERT_GE(result.path.size(), 2u);
  EXPECT_TRUE(result.path.front().subject.matches(chain.first().subject));
  EXPECT_TRUE(result.path.back().is_self_signed());
}

TEST(VerdictNames, Defined) {
  EXPECT_EQ(chain_verdict_name(ChainVerdict::kValid), "valid");
  EXPECT_EQ(client_verdict_name(ClientVerdict::kAccepted), "accepted");
  EXPECT_EQ(client_verdict_name(ClientVerdict::kBrokenOrder), "broken-order");
}

}  // namespace
}  // namespace certchain::validation
