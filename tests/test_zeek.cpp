// Zeek substrate: TSV log format round trips, damage handling, the
// SSL x X509 join, and content-based protocol detection.
#include <gtest/gtest.h>

#include "../tests/helpers.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"
#include "zeek/dpd.hpp"
#include "zeek/joiner.hpp"
#include "zeek/log_io.hpp"

namespace certchain::zeek {
namespace {

using certchain::testing::TestPki;

SslLogRecord sample_ssl() {
  SslLogRecord record;
  record.ts = util::make_time(2020, 10, 5, 12, 0, 0);
  record.uid = "CAbCdEf123456789ab";
  record.id_orig_h = "10.1.2.3";
  record.id_orig_p = 51515;
  record.id_resp_h = "198.51.100.7";
  record.id_resp_p = 443;
  record.version = "TLSv12";
  record.cipher = "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256";
  record.server_name = "www.example.org";
  record.resumed = false;
  record.established = true;
  record.cert_chain_fuids = {"FaAaAaAaAaAaAaAaAa", "FbBbBbBbBbBbBbBbBb"};
  record.subject = "CN=www.example.org,O=Example, Inc.";
  record.issuer = "CN=Issuing CA,O=Example";
  record.validation_status = "ok";
  return record;
}

X509LogRecord sample_x509() {
  X509LogRecord record;
  record.ts = util::make_time(2020, 10, 5, 12, 0, 1);
  record.fuid = "FaAaAaAaAaAaAaAaAa";
  record.version = 3;
  record.serial = "0a1b2c";
  record.subject = "CN=www.example.org";
  record.issuer = "CN=Issuing CA,O=Example";
  record.not_before = util::make_time(2020, 7, 1);
  record.not_after = util::make_time(2021, 7, 1);
  record.key_alg = "rsa2048";
  record.sig_alg = "sha256WithRSAEncryption";
  record.key_length = 2048;
  record.basic_constraints_ca = false;
  record.san_dns = {"www.example.org", "example.org"};
  return record;
}

TEST(ZeekTsv, FieldHelpers) {
  EXPECT_EQ(tsv::render_time(1598918400), "1598918400.000000");
  EXPECT_EQ(tsv::parse_time("1598918400.123456"), 1598918400);
  EXPECT_FALSE(tsv::parse_time("not-a-time").has_value());
  EXPECT_EQ(tsv::render_bool(true), "T");
  EXPECT_EQ(tsv::parse_bool("F"), false);
  EXPECT_FALSE(tsv::parse_bool("x").has_value());
  EXPECT_EQ(tsv::render_vector({}), "(empty)");
  EXPECT_TRUE(tsv::parse_vector("(empty)").empty());
  EXPECT_TRUE(tsv::parse_vector("-").empty());
  EXPECT_EQ(tsv::parse_vector("a,b"), (std::vector<std::string>{"a", "b"}));
}

TEST(ZeekTsv, EscapingRoundTripsSeparatorBytes) {
  const std::string nasty = "CN=Acme, Inc.\tweird\nline\\slash";
  EXPECT_EQ(tsv::unescape_field(tsv::escape_field(nasty)), nasty);
  // Escaped form must contain no raw separator bytes.
  const std::string escaped = tsv::escape_field(nasty);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find(','), std::string::npos);
}

TEST(ZeekLogs, SslRoundTrip) {
  SslLogWriter writer;
  SslLogRecord with_sni = sample_ssl();
  SslLogRecord without_chain = sample_ssl();
  without_chain.version = "TLSv13";
  without_chain.server_name.clear();
  without_chain.cert_chain_fuids.clear();
  without_chain.subject.clear();
  without_chain.issuer.clear();
  without_chain.validation_status.clear();
  without_chain.established = false;
  writer.add(with_sni);
  writer.add(without_chain);
  EXPECT_EQ(writer.count(), 2u);

  ParseDiagnostics diagnostics;
  const auto parsed = parse_ssl_log(writer.finish(), &diagnostics);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], with_sni);
  EXPECT_EQ(parsed[1], without_chain);
  EXPECT_EQ(diagnostics.skipped_lines, 0u);
}

TEST(ZeekLogs, X509RoundTrip) {
  X509LogWriter writer;
  X509LogRecord full = sample_x509();
  X509LogRecord bare = sample_x509();
  bare.fuid = "FcCcCcCcCcCcCcCcCc";
  bare.basic_constraints_ca.reset();  // extension absent
  bare.basic_constraints_path_len.reset();
  bare.san_dns.clear();
  writer.add(full);
  writer.add(bare);

  const auto parsed = parse_x509_log(writer.finish());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], full);
  EXPECT_EQ(parsed[1], bare);
  EXPECT_FALSE(parsed[1].basic_constraints_ca.has_value());
}

TEST(ZeekLogs, HeaderShape) {
  SslLogWriter writer;
  writer.add(sample_ssl());
  const std::string text = writer.finish();
  EXPECT_TRUE(text.starts_with("#separator \\x09\n"));
  EXPECT_NE(text.find("#fields\tts\tuid\t"), std::string::npos);
  EXPECT_NE(text.find("#types\ttime\tstring\t"), std::string::npos);
  EXPECT_TRUE(text.ends_with("#close\n"));
}

TEST(ZeekLogs, ParserSkipsDamagedRowsAndReports) {
  SslLogWriter writer;
  writer.add(sample_ssl());
  std::string text = writer.finish();
  // Inject damage: a short row and a full-width row with a bad timestamp.
  const std::size_t close = text.find("#close");
  std::string bad_ts = "BAD";
  for (int i = 0; i < 14; ++i) bad_ts += "\tx";
  text.insert(close, "1598918400.000000\tonly\tthree\n" + bad_ts + "\n");

  ParseDiagnostics diagnostics;
  const auto parsed = parse_ssl_log(text, &diagnostics);
  EXPECT_EQ(parsed.size(), 1u);  // only the intact row survives
  EXPECT_GE(diagnostics.skipped_lines, 2u);
  EXPECT_FALSE(diagnostics.errors.empty());
}

TEST(ZeekLogs, ParserRejectsUnknownFieldLayouts) {
  const std::string text =
      "#fields\tts\tmystery\n1598918400.000000\tx\n";
  ParseDiagnostics diagnostics;
  EXPECT_TRUE(parse_ssl_log(text, &diagnostics).empty());
  EXPECT_GE(diagnostics.skipped_lines, 1u);
}

TEST(ZeekLogs, DnWithCommaSurvivesVectorEncoding) {
  // DN strings contain commas; the vector separator must not split them.
  X509LogWriter writer;
  X509LogRecord record = sample_x509();
  record.subject = "CN=Acme, Inc.,O=Acme";
  writer.add(record);
  const auto parsed = parse_x509_log(writer.finish());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].subject, "CN=Acme, Inc.,O=Acme");
}

// --- joiner -------------------------------------------------------------------

TEST(Joiner, CertificateProjectionRoundTrips) {
  TestPki pki;
  const x509::Certificate original = pki.leaf("join.example");
  const X509LogRecord record = record_from_certificate(original, 123, "Fx");
  const x509::Certificate reconstructed = certificate_from_record(record);
  // Key material is gone (Zeek does not log it)...
  EXPECT_TRUE(reconstructed.public_key.material.empty());
  EXPECT_TRUE(reconstructed.signature.value.empty());
  // ...but every analysis-relevant field survives.
  EXPECT_TRUE(reconstructed.issuer.matches(original.issuer));
  EXPECT_TRUE(reconstructed.subject.matches(original.subject));
  EXPECT_EQ(reconstructed.serial, original.serial);
  EXPECT_EQ(reconstructed.validity, original.validity);
  EXPECT_EQ(reconstructed.basic_constraints, original.basic_constraints);
  EXPECT_EQ(reconstructed.subject_alt_names, original.subject_alt_names);
}

TEST(Joiner, LenientDnParsingKeepsRawString) {
  X509LogRecord record = sample_x509();
  record.subject = "no equals sign at all";  // unparseable as a DN
  const x509::Certificate cert = certificate_from_record(record);
  EXPECT_EQ(cert.subject.common_name(), "no equals sign at all");
}

TEST(Joiner, JoinsChainInDeliveryOrder) {
  TestPki pki;
  const auto chain = pki.chain_for("ordered.example", true);
  std::vector<X509LogRecord> x509_records;
  std::vector<std::string> fuids;
  for (const auto& cert : chain) {
    const std::string fuid = util::zeek_style_fuid(cert.fingerprint());
    fuids.push_back(fuid);
    x509_records.push_back(record_from_certificate(cert, 1, fuid));
  }
  SslLogRecord ssl = sample_ssl();
  ssl.cert_chain_fuids = fuids;

  const LogJoiner joiner(x509_records);
  const JoinedConnection joined = joiner.join(ssl);
  EXPECT_TRUE(joined.complete());
  ASSERT_EQ(joined.chain.length(), 3u);
  EXPECT_TRUE(joined.chain.at(0).subject.matches(chain.at(0).subject));
  EXPECT_TRUE(joined.chain.at(2).is_self_signed());
}

TEST(Joiner, ReportsMissingFuids) {
  const LogJoiner joiner({sample_x509()});
  SslLogRecord ssl = sample_ssl();
  ssl.cert_chain_fuids = {"FaAaAaAaAaAaAaAaAa", "Fmissing"};
  const JoinedConnection joined = joiner.join(ssl);
  EXPECT_FALSE(joined.complete());
  EXPECT_EQ(joined.chain.length(), 1u);
  EXPECT_EQ(joined.missing_fuids, (std::vector<std::string>{"Fmissing"}));
}

// --- DPD ----------------------------------------------------------------------

TEST(Dpd, DetectsTlsOnAnyPortByContent) {
  const std::string hello = make_client_hello(3, "svc.example");
  EXPECT_TRUE(looks_like_tls(hello));
  EXPECT_EQ(extract_sni(hello), "svc.example");
  EXPECT_FALSE(looks_like_tls(make_plaintext_preamble("GET / HTTP/1.1")));
  EXPECT_FALSE(looks_like_tls(make_plaintext_preamble("SSH-2.0-OpenSSH")));
  EXPECT_FALSE(looks_like_tls(""));
  EXPECT_FALSE(looks_like_tls("\x16"));
}

TEST(Dpd, VersionBounds) {
  EXPECT_TRUE(looks_like_tls(make_client_hello(1, "")));   // TLS 1.0
  EXPECT_TRUE(looks_like_tls(make_client_hello(4, "")));   // TLS 1.3
  EXPECT_FALSE(looks_like_tls(make_client_hello(9, "")));  // nonsense
}

TEST(Dpd, EmptySni) {
  const std::string hello = make_client_hello(3, "");
  EXPECT_TRUE(looks_like_tls(hello));
  EXPECT_EQ(extract_sni(hello), "");
}

}  // namespace
}  // namespace certchain::zeek
