// certchain-analyze: command-line front-end for the study pipeline.
//
// Analyzes Zeek logs from disk:
//
//   certchain-analyze [--strict] [--metrics <path>] [--trace] <ssl.log> <x509.log>
//   certchain-analyze --demo [--strict] [--metrics <path>] [--trace]
//
// Ingestion is lenient by default: damaged lines are counted, reported in
// the "Data quality" section and skipped. --strict aborts on the first
// damaged line instead (for curated inputs where damage means a bug).
//
// Telemetry: every run carries a full obs::RunContext. --metrics writes the
// schema-versioned JSON export (counters, per-stage manifest, wall times) to
// the given path; --trace appends the span tree to the report's Telemetry
// section. --demo synthesizes a small deterministic study corpus in memory
// (no input files needed) and analyzes its serialized logs — the CI uses it
// to exercise the whole ingest -> analyze -> export path.
//
// The trust stores / CT view / vendor directory default to the simulated
// study universe (they parameterize the pipeline; swap in your own by using
// the library API). Prints the condensed study report.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "datagen/scenario.hpp"
#include "netsim/pki_world.hpp"
#include "obs/export.hpp"
#include "obs/run_context.hpp"
#include "util/strings.hpp"
#include "zeek/log_io.hpp"

namespace {

void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--strict] [--threads <n>] [--metrics <path>] "
               "[--trace] <ssl.log> <x509.log>\n"
               "       %s --demo [--strict] [--threads <n>] [--metrics <path>] "
               "[--trace]\n"
               "  --threads <n>  shard the run across n workers (0 = all "
               "hardware threads);\n"
               "                 output is byte-identical to the serial run\n",
               argv0, argv0);
}

/// Serializes a small deterministic scenario into Zeek log text.
void build_demo_logs(certchain::obs::RunContext& context, std::string& ssl_text,
                     std::string& x509_text) {
  using namespace certchain;
  datagen::ScenarioConfig config;
  config.seed = 20200901;
  config.chain_scale = 1.0 / 4000.0;
  config.total_connections = 4000;
  config.client_count = 300;
  config.include_length_outliers = false;
  const auto scenario = datagen::build_study_scenario(config, &context);
  const netsim::GeneratedLogs logs = scenario->generate_logs(&context);

  zeek::SslLogWriter ssl_writer;
  for (const auto& record : logs.ssl) ssl_writer.add(record);
  ssl_text = ssl_writer.finish();
  zeek::X509LogWriter x509_writer;
  for (const auto& record : logs.x509) x509_writer.add(record);
  x509_text = x509_writer.finish();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace certchain;
  core::RunOptions run_options;
  core::IngestOptions& ingest = run_options.ingest;
  std::string metrics_path;
  bool trace = false;
  bool demo = false;
  int arg = 1;
  for (; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    if (flag == "--strict") {
      ingest.mode = core::IngestMode::kStrict;
    } else if (flag == "--trace") {
      trace = true;
    } else if (flag == "--demo") {
      demo = true;
    } else if (flag == "--metrics") {
      if (arg + 1 >= argc) {
        print_usage(argv[0]);
        return 2;
      }
      metrics_path = argv[++arg];
    } else if (flag == "--threads") {
      if (arg + 1 >= argc) {
        print_usage(argv[0]);
        return 2;
      }
      char* end = nullptr;
      const unsigned long value = std::strtoul(argv[++arg], &end, 10);
      if (end == nullptr || *end != '\0') {
        print_usage(argv[0]);
        return 2;
      }
      run_options.threads = static_cast<std::size_t>(value);
    } else {
      break;
    }
  }
  if ((demo && argc - arg != 0) || (!demo && argc - arg != 2)) {
    print_usage(argv[0]);
    return 2;
  }

  obs::RunContext telemetry;
  telemetry.set_config("tool", "certchain-analyze");
  telemetry.set_config("ingest.mode", core::ingest_mode_name(ingest.mode));

  std::string ssl_text;
  std::string x509_text;
  if (demo) {
    telemetry.set_config("input", "demo");
    build_demo_logs(telemetry, ssl_text, x509_text);
  } else {
    const auto slurp = [](const char* path) -> std::optional<std::string> {
      std::ifstream in(path);
      if (!in) return std::nullopt;
      std::ostringstream buffer;
      buffer << in.rdbuf();
      return buffer.str();
    };
    auto ssl_file = slurp(argv[arg]);
    auto x509_file = slurp(argv[arg + 1]);
    if (!ssl_file || !x509_file) {
      std::fprintf(stderr, "certchain-analyze: cannot read input logs\n");
      return 1;
    }
    ssl_text = *std::move(ssl_file);
    x509_text = *std::move(x509_file);
    telemetry.set_config("input.ssl", argv[arg]);
    telemetry.set_config("input.x509", argv[arg + 1]);
  }

  netsim::PkiWorld world;  // databases the classification runs against
  core::VendorDirectory vendors;
  for (auto& deployment : world.interception()) {
    const core::VendorInfo info{
        deployment.vendor.name,
        std::string(interception_category_name(deployment.vendor.category))};
    vendors[deployment.intermediate_ca.name().canonical()] = info;
    vendors[deployment.root_ca.name().canonical()] = info;
  }
  const core::StudyPipeline pipeline(world.stores(), world.ct_logs(), vendors,
                                     &world.cross_signs());
  core::StudyReport report;
  try {
    report = pipeline.run_from_text(ssl_text, x509_text, run_options, &telemetry);
  } catch (const core::IngestError& error) {
    std::fprintf(stderr, "certchain-analyze: %s (rerun without --strict to "
                 "skip damaged lines)\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "parsed %zu SSL rows (%zu skipped), %zu X509 rows (%zu skipped)\n",
               report.ingest.ssl.records, report.ingest.ssl.skipped_lines,
               report.ingest.x509.records, report.ingest.x509.skipped_lines);

  core::ReportTextOptions options;
  options.graphs = true;
  options.telemetry = &telemetry;
  options.telemetry_trace = trace;
  std::fputs(core::render_report_text(report, options).c_str(), stdout);

  if (!metrics_path.empty()) {
    if (!obs::write_metrics_json(telemetry, metrics_path)) {
      std::fprintf(stderr, "certchain-analyze: cannot write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: wrote %s (schema %s v%d)\n",
                 metrics_path.c_str(), std::string(obs::kMetricsSchemaName).c_str(),
                 obs::kMetricsSchemaVersion);
  }

  // The §3.2.1 interception attribution needs a CT view of the genuine
  // certificates. A fresh simulated world has empty CT logs, so forged
  // chains cannot be distinguished from ordinary non-public deployments —
  // exactly the limitation the paper notes for unlogged originals (App. B).
  bool ct_empty = true;
  for (std::size_t i = 0; i < world.ct_logs().log_count(); ++i) {
    ct_empty = ct_empty && world.ct_logs().log(i).size() == 0;
  }
  if (ct_empty) {
    std::fprintf(stderr,
                 "note: the CT view is empty; TLS interception cannot be "
                 "attributed and such chains appear as non-public-DB-only. "
                 "Drive the pipeline with a populated CtLogSet (see "
                 "examples/campus_study.cpp) for full attribution.\n");
  }
  return 0;
}
