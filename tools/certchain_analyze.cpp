// certchain-analyze: command-line front-end for the study pipeline.
//
// Analyzes Zeek logs from disk:
//
//   certchain-analyze [--strict] <ssl.log> <x509.log>
//
// Ingestion is lenient by default: damaged lines are counted, reported in
// the "Data quality" section and skipped. --strict aborts on the first
// damaged line instead (for curated inputs where damage means a bug).
//
// The trust stores / CT view / vendor directory default to the simulated
// study universe (they parameterize the pipeline; swap in your own by using
// the library API). Prints the condensed study report.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "netsim/pki_world.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace certchain;
  core::IngestOptions ingest;
  int arg = 1;
  if (arg < argc && std::string_view(argv[arg]) == "--strict") {
    ingest.mode = core::IngestMode::kStrict;
    ++arg;
  }
  if (argc - arg != 2) {
    std::fprintf(stderr, "usage: %s [--strict] <ssl.log> <x509.log>\n", argv[0]);
    return 2;
  }
  const auto slurp = [](const char* path) -> std::optional<std::string> {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const auto ssl_text = slurp(argv[arg]);
  const auto x509_text = slurp(argv[arg + 1]);
  if (!ssl_text || !x509_text) {
    std::fprintf(stderr, "certchain-analyze: cannot read input logs\n");
    return 1;
  }

  netsim::PkiWorld world;  // databases the classification runs against
  core::VendorDirectory vendors;
  for (auto& deployment : world.interception()) {
    const core::VendorInfo info{
        deployment.vendor.name,
        std::string(interception_category_name(deployment.vendor.category))};
    vendors[deployment.intermediate_ca.name().canonical()] = info;
    vendors[deployment.root_ca.name().canonical()] = info;
  }
  const core::StudyPipeline pipeline(world.stores(), world.ct_logs(), vendors,
                                     &world.cross_signs());
  core::StudyReport report;
  try {
    report = pipeline.run_from_text(*ssl_text, *x509_text, ingest);
  } catch (const core::IngestError& error) {
    std::fprintf(stderr, "certchain-analyze: %s (rerun without --strict to "
                 "skip damaged lines)\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "parsed %zu SSL rows (%zu skipped), %zu X509 rows (%zu skipped)\n",
               report.ingest.ssl.records, report.ingest.ssl.skipped_lines,
               report.ingest.x509.records, report.ingest.x509.skipped_lines);

  core::ReportTextOptions options;
  options.graphs = true;
  std::fputs(core::render_report_text(report, options).c_str(), stdout);

  // The §3.2.1 interception attribution needs a CT view of the genuine
  // certificates. A fresh simulated world has empty CT logs, so forged
  // chains cannot be distinguished from ordinary non-public deployments —
  // exactly the limitation the paper notes for unlogged originals (App. B).
  bool ct_empty = true;
  for (std::size_t i = 0; i < world.ct_logs().log_count(); ++i) {
    ct_empty = ct_empty && world.ct_logs().log(i).size() == 0;
  }
  if (ct_empty) {
    std::fprintf(stderr,
                 "note: the CT view is empty; TLS interception cannot be "
                 "attributed and such chains appear as non-public-DB-only. "
                 "Drive the pipeline with a populated CtLogSet (see "
                 "examples/campus_study.cpp) for full attribution.\n");
  }
  return 0;
}
