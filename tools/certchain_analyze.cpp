// certchain-analyze: command-line front-end for the study pipeline.
//
// Analyzes Zeek logs from disk:
//
//   certchain-analyze <ssl.log> <x509.log>
//
// The trust stores / CT view / vendor directory default to the simulated
// study universe (they parameterize the pipeline; swap in your own by using
// the library API). Prints the condensed study report.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "netsim/pki_world.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace certchain;
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <ssl.log> <x509.log>\n", argv[0]);
    return 2;
  }
  const auto slurp = [](const char* path) -> std::optional<std::string> {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const auto ssl_text = slurp(argv[1]);
  const auto x509_text = slurp(argv[2]);
  if (!ssl_text || !x509_text) {
    std::fprintf(stderr, "certchain-analyze: cannot read input logs\n");
    return 1;
  }

  zeek::ParseDiagnostics ssl_diag;
  zeek::ParseDiagnostics x509_diag;
  const auto ssl = zeek::parse_ssl_log(*ssl_text, &ssl_diag);
  const auto x509 = zeek::parse_x509_log(*x509_text, &x509_diag);
  std::fprintf(stderr, "parsed %zu SSL rows (%zu skipped), %zu X509 rows (%zu skipped)\n",
               ssl.size(), ssl_diag.skipped_lines, x509.size(),
               x509_diag.skipped_lines);
  for (const auto& error : ssl_diag.errors) {
    std::fprintf(stderr, "  ssl.log: %s\n", error.c_str());
  }
  for (const auto& error : x509_diag.errors) {
    std::fprintf(stderr, "  x509.log: %s\n", error.c_str());
  }

  netsim::PkiWorld world;  // databases the classification runs against
  core::VendorDirectory vendors;
  for (auto& deployment : world.interception()) {
    const core::VendorInfo info{
        deployment.vendor.name,
        std::string(interception_category_name(deployment.vendor.category))};
    vendors[deployment.intermediate_ca.name().canonical()] = info;
    vendors[deployment.root_ca.name().canonical()] = info;
  }
  const core::StudyPipeline pipeline(world.stores(), world.ct_logs(), vendors,
                                     &world.cross_signs());
  const core::StudyReport report = pipeline.run(ssl, x509);

  core::ReportTextOptions options;
  options.graphs = true;
  std::fputs(core::render_report_text(report, options).c_str(), stdout);

  // The §3.2.1 interception attribution needs a CT view of the genuine
  // certificates. A fresh simulated world has empty CT logs, so forged
  // chains cannot be distinguished from ordinary non-public deployments —
  // exactly the limitation the paper notes for unlogged originals (App. B).
  bool ct_empty = true;
  for (std::size_t i = 0; i < world.ct_logs().log_count(); ++i) {
    ct_empty = ct_empty && world.ct_logs().log(i).size() == 0;
  }
  if (ct_empty) {
    std::fprintf(stderr,
                 "note: the CT view is empty; TLS interception cannot be "
                 "attributed and such chains appear as non-public-DB-only. "
                 "Drive the pipeline with a populated CtLogSet (see "
                 "examples/campus_study.cpp) for full attribution.\n");
  }
  return 0;
}
