// certchain-analyze: command-line front-end for the study pipeline.
//
// Analyzes Zeek logs from disk:
//
//   certchain-analyze [options] <ssl.log> <x509.log>
//   certchain-analyze --demo [options]
//
// By default input files are slurped into memory. --input-file switches to
// the bounded-memory streaming engine: the logs are consumed through
// LogSources in --chunk-bytes chunks (peak residency O(chunk) + the
// deduplicated corpus, not O(log bytes)), with an optional --checkpoint file
// that lets a killed run resume from the last chunk boundary. The report is
// byte-identical either way.
//
// Ingestion is lenient by default: damaged lines are counted, reported in
// the "Data quality" section and skipped. --strict aborts on the first
// damaged line instead (for curated inputs where damage means a bug).
//
// Telemetry: every run carries a full obs::RunContext. --metrics writes the
// schema-versioned JSON export (counters, per-stage manifest, wall times) to
// the given path; --trace appends the span tree to the report's Telemetry
// section. --demo synthesizes a small deterministic study corpus in memory
// (no input files needed) and analyzes its serialized logs — the CI uses it
// to exercise the whole ingest -> analyze -> export path.
// --demo-connections scales the demo corpus; --demo --write-logs <prefix>
// writes the demo logs to <prefix>ssl.log / <prefix>x509.log and exits,
// which is how the CI streaming smoke lane generates its input.
//
// The trust stores / CT view / vendor directory default to the simulated
// study universe (they parameterize the pipeline; swap in your own by using
// the library API). Prints the condensed study report.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "datagen/scenario.hpp"
#include "netsim/pki_world.hpp"
#include "obs/export.hpp"
#include "obs/run_context.hpp"
#include "util/strings.hpp"
#include "zeek/log_io.hpp"

namespace {

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <ssl.log> <x509.log>\n"
      "       %s --demo [options]\n"
      "options:\n"
      "  --strict              abort on the first damaged input line\n"
      "  --threads <n>         shard the run across n workers (0 = all\n"
      "                        hardware threads); output is byte-identical\n"
      "  --input-file          stream the input files chunk by chunk instead\n"
      "                        of loading them into memory (same report)\n"
      "  --chunk-bytes <n>     streaming chunk size; K/M/G suffixes accepted\n"
      "  --checkpoint <path>   write a resumable fold snapshot after every\n"
      "                        chunk; resume from it if present\n"
      "  --metrics <path>      write the JSON metrics export\n"
      "  --trace               append the span tree to the report\n"
      "  --demo                analyze a synthesized demo corpus\n"
      "  --demo-connections <n> demo corpus size (default 4000)\n"
      "  --write-logs <prefix> with --demo: write <prefix>ssl.log and\n"
      "                        <prefix>x509.log, then exit\n",
      argv0, argv0);
}

/// Parses "4194304", "64K", "4M", "1G" (case-insensitive suffixes).
bool parse_byte_size(const char* text, std::size_t& out) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text) return false;
  unsigned long long multiplier = 1;
  switch (*end) {
    case 'K': case 'k': multiplier = 1024ULL; ++end; break;
    case 'M': case 'm': multiplier = 1024ULL * 1024; ++end; break;
    case 'G': case 'g': multiplier = 1024ULL * 1024 * 1024; ++end; break;
    default: break;
  }
  if (*end != '\0') return false;
  out = static_cast<std::size_t>(value * multiplier);
  return true;
}

/// Serializes a deterministic scenario into Zeek log text.
void build_demo_logs(certchain::obs::RunContext& context,
                     std::size_t connections, std::string& ssl_text,
                     std::string& x509_text) {
  using namespace certchain;
  datagen::ScenarioConfig config;
  config.seed = 20200901;
  config.chain_scale = 1.0 / static_cast<double>(connections);
  config.total_connections = connections;
  config.client_count = 300;
  config.include_length_outliers = false;
  const auto scenario = datagen::build_study_scenario(config, &context);
  const netsim::GeneratedLogs logs = scenario->generate_logs(&context);

  zeek::SslLogWriter ssl_writer;
  for (const auto& record : logs.ssl) ssl_writer.add(record);
  ssl_text = ssl_writer.finish();
  zeek::X509LogWriter x509_writer;
  for (const auto& record : logs.x509) x509_writer.add(record);
  x509_text = x509_writer.finish();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace certchain;
  core::RunOptions run_options;
  core::IngestOptions& ingest = run_options.ingest;
  std::string metrics_path;
  std::string write_logs_prefix;
  std::size_t demo_connections = 4000;
  bool trace = false;
  bool demo = false;
  bool stream_files = false;
  int arg = 1;
  for (; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    if (flag == "--strict") {
      ingest.mode = core::IngestMode::kStrict;
    } else if (flag == "--trace") {
      trace = true;
    } else if (flag == "--demo") {
      demo = true;
    } else if (flag == "--input-file") {
      stream_files = true;
    } else if (flag == "--metrics" || flag == "--checkpoint" ||
               flag == "--write-logs" || flag == "--chunk-bytes" ||
               flag == "--threads" || flag == "--demo-connections") {
      if (arg + 1 >= argc) {
        print_usage(argv[0]);
        return 2;
      }
      const char* value = argv[++arg];
      if (flag == "--metrics") {
        metrics_path = value;
      } else if (flag == "--checkpoint") {
        run_options.checkpoint_path = value;
      } else if (flag == "--write-logs") {
        write_logs_prefix = value;
      } else if (flag == "--chunk-bytes") {
        if (!parse_byte_size(value, run_options.chunk_bytes) ||
            run_options.chunk_bytes == 0) {
          print_usage(argv[0]);
          return 2;
        }
      } else {
        char* end = nullptr;
        const unsigned long number = std::strtoul(value, &end, 10);
        if (end == nullptr || *end != '\0') {
          print_usage(argv[0]);
          return 2;
        }
        if (flag == "--threads") {
          run_options.threads = static_cast<std::size_t>(number);
        } else if (number == 0) {
          print_usage(argv[0]);
          return 2;
        } else {
          demo_connections = static_cast<std::size_t>(number);
        }
      }
    } else {
      break;
    }
  }
  if ((demo && argc - arg != 0) || (!demo && argc - arg != 2)) {
    print_usage(argv[0]);
    return 2;
  }

  obs::RunContext telemetry;
  telemetry.set_config("tool", "certchain-analyze");
  telemetry.set_config("ingest.mode", core::ingest_mode_name(ingest.mode));

  std::string ssl_text;
  std::string x509_text;
  std::optional<core::StudyInput> input;
  if (demo) {
    telemetry.set_config("input", "demo");
    build_demo_logs(telemetry, demo_connections, ssl_text, x509_text);
    if (!write_logs_prefix.empty()) {
      const std::string ssl_path = write_logs_prefix + "ssl.log";
      const std::string x509_path = write_logs_prefix + "x509.log";
      if (!write_file(ssl_path, ssl_text) || !write_file(x509_path, x509_text)) {
        std::fprintf(stderr, "certchain-analyze: cannot write demo logs to %s*\n",
                     write_logs_prefix.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s (%zu bytes) and %s (%zu bytes)\n",
                   ssl_path.c_str(), ssl_text.size(), x509_path.c_str(),
                   x509_text.size());
      return 0;
    }
    input = core::StudyInput::text(ssl_text, x509_text);
  } else if (stream_files) {
    // The streaming engine: the logs never become resident strings here.
    input = core::StudyInput::files(argv[arg], argv[arg + 1]);
    telemetry.set_config("input.ssl", argv[arg]);
    telemetry.set_config("input.x509", argv[arg + 1]);
  } else {
    const auto slurp = [](const char* path) -> std::optional<std::string> {
      std::ifstream in(path);
      if (!in) return std::nullopt;
      std::ostringstream buffer;
      buffer << in.rdbuf();
      return buffer.str();
    };
    auto ssl_file = slurp(argv[arg]);
    auto x509_file = slurp(argv[arg + 1]);
    if (!ssl_file || !x509_file) {
      std::fprintf(stderr, "certchain-analyze: cannot read input logs\n");
      return 1;
    }
    ssl_text = *std::move(ssl_file);
    x509_text = *std::move(x509_file);
    telemetry.set_config("input.ssl", argv[arg]);
    telemetry.set_config("input.x509", argv[arg + 1]);
    input = core::StudyInput::text(ssl_text, x509_text);
  }

  netsim::PkiWorld world;  // databases the classification runs against
  core::VendorDirectory vendors;
  for (auto& deployment : world.interception()) {
    const core::VendorInfo info{
        deployment.vendor.name,
        std::string(interception_category_name(deployment.vendor.category))};
    vendors[deployment.intermediate_ca.name().canonical()] = info;
    vendors[deployment.root_ca.name().canonical()] = info;
  }
  const core::StudyPipeline pipeline(world.stores(), world.ct_logs(), vendors,
                                     &world.cross_signs());
  core::StudyReport report;
  try {
    report = pipeline.run(*input, run_options, &telemetry);
  } catch (const core::IngestError& error) {
    std::fprintf(stderr, "certchain-analyze: %s (rerun without --strict to "
                 "skip damaged lines)\n", error.what());
    return 1;
  }
  std::fprintf(stderr, "parsed %zu SSL rows (%zu skipped), %zu X509 rows (%zu skipped)\n",
               report.ingest.ssl.records, report.ingest.ssl.skipped_lines,
               report.ingest.x509.records, report.ingest.x509.skipped_lines);
  if (stream_files) {
    std::fprintf(
        stderr,
        "streamed %llu ssl + %llu x509 chunks of <=%zu bytes, peak rss %.1f MiB\n",
        static_cast<unsigned long long>(
            telemetry.metrics.counter("stream.chunk.ssl")),
        static_cast<unsigned long long>(
            telemetry.metrics.counter("stream.chunk.x509")),
        run_options.chunk_bytes,
        telemetry.metrics.gauge("mem.peak_rss_bytes") / (1024.0 * 1024.0));
  }

  core::ReportTextOptions options;
  options.graphs = true;
  options.telemetry = &telemetry;
  options.telemetry_trace = trace;
  std::fputs(core::render_report_text(report, options).c_str(), stdout);

  if (!metrics_path.empty()) {
    if (!obs::write_metrics_json(telemetry, metrics_path)) {
      std::fprintf(stderr, "certchain-analyze: cannot write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics: wrote %s (schema %s v%d)\n",
                 metrics_path.c_str(), std::string(obs::kMetricsSchemaName).c_str(),
                 obs::kMetricsSchemaVersion);
  }

  // The §3.2.1 interception attribution needs a CT view of the genuine
  // certificates. A fresh simulated world has empty CT logs, so forged
  // chains cannot be distinguished from ordinary non-public deployments —
  // exactly the limitation the paper notes for unlogged originals (App. B).
  bool ct_empty = true;
  for (std::size_t i = 0; i < world.ct_logs().log_count(); ++i) {
    ct_empty = ct_empty && world.ct_logs().log(i).size() == 0;
  }
  if (ct_empty) {
    std::fprintf(stderr,
                 "note: the CT view is empty; TLS interception cannot be "
                 "attributed and such chains appear as non-public-DB-only. "
                 "Drive the pipeline with a populated CtLogSet (see "
                 "examples/campus_study.cpp) for full attribution.\n");
  }
  return 0;
}
