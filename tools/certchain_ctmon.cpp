// certchain-ctmon: standalone CT monitor/auditor (DESIGN.md §14.3, §14.6).
//
//   certchain-ctmon [options]
//
// Builds one or more deterministic million-entry-class CT logs through the
// bulk datagen population path, arms a ct::Monitor over them, and runs an
// audit loop: poll the tree heads, verify checkpoint->head consistency,
// sample inclusion proofs, append more entries, repeat. The logs keep
// growing between polls, so every round exercises the real consistency-proof
// path rather than the trivial same-head case.
//
// Exit status is the contract: 0 when every poll verified cleanly, 1 when
// the monitor flagged any append-only violation. --inject-violation wraps
// the last log in a client that tampers with the advertised root before the
// final poll — the self-test that the alarm actually fires (CI runs both
// directions). --json prints a certchain.ctmon.status v1 document; the
// default output is a human-readable summary per poll plus the final
// ct.monitor.* counters.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ct/ct_log.hpp"
#include "ct/monitor.hpp"
#include "datagen/ct_population.hpp"
#include "obs/json.hpp"
#include "obs/run_context.hpp"
#include "obs/stopwatch.hpp"

namespace {

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "options:\n"
      "  --entries <n>       entries populated per log before the first poll\n"
      "                      (default 200000)\n"
      "  --logs <n>          logs to build and watch (default 2)\n"
      "  --seed <n>          population + sampling seed (default 20200901)\n"
      "  --polls <n>         audit rounds (default 4)\n"
      "  --samples <n>       inclusion proofs sampled per log per poll\n"
      "                      (default 4)\n"
      "  --grow <n>          entries appended to every log between polls\n"
      "                      (default 4096)\n"
      "  --inject-violation  tamper with the last log's advertised root before\n"
      "                      the final poll (self-test: expect exit 1)\n"
      "  --json              print a certchain.ctmon.status v1 JSON document\n",
      argv0);
}

// Delegating LogClient that, once armed, advertises a corrupted root. The
// monitor must flag the mismatch between this head and the honest proofs.
class TamperingClient : public certchain::ct::LogClient {
 public:
  explicit TamperingClient(std::shared_ptr<certchain::ct::LogClient> inner)
      : inner_(std::move(inner)) {}

  void arm() { armed_ = true; }

  std::string log_id() const override { return inner_->log_id(); }
  certchain::ct::TreeHead tree_head() const override {
    certchain::ct::TreeHead head = inner_->tree_head();
    if (armed_) head.root.words[0] ^= 0xdecafbadULL;
    return head;
  }
  std::optional<std::vector<certchain::ct::Digest256>> consistency(
      std::size_t m, std::size_t n) const override {
    return inner_->consistency(m, n);
  }
  std::optional<InclusionAnswer> inclusion(std::size_t index,
                                           std::size_t n) const override {
    return inner_->inclusion(index, n);
  }

 private:
  std::shared_ptr<certchain::ct::LogClient> inner_;
  bool armed_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace certchain;

  std::size_t entries = 200000;
  std::size_t log_count = 2;
  std::uint64_t seed = 20200901;
  std::size_t polls = 4;
  std::size_t samples = 4;
  std::size_t grow = 4096;
  bool inject_violation = false;
  bool json_output = false;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    if (flag == "--inject-violation") {
      inject_violation = true;
    } else if (flag == "--json") {
      json_output = true;
    } else if (flag == "--entries" || flag == "--logs" || flag == "--seed" ||
               flag == "--polls" || flag == "--samples" || flag == "--grow") {
      if (arg + 1 >= argc) {
        print_usage(argv[0]);
        return 2;
      }
      char* end = nullptr;
      const unsigned long long number = std::strtoull(argv[++arg], &end, 10);
      if (end == nullptr || *end != '\0') {
        print_usage(argv[0]);
        return 2;
      }
      if (flag == "--entries") {
        entries = static_cast<std::size_t>(number);
      } else if (flag == "--logs") {
        log_count = static_cast<std::size_t>(number);
      } else if (flag == "--seed") {
        seed = static_cast<std::uint64_t>(number);
      } else if (flag == "--polls") {
        polls = static_cast<std::size_t>(number);
      } else if (flag == "--samples") {
        samples = static_cast<std::size_t>(number);
      } else {
        grow = static_cast<std::size_t>(number);
      }
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }
  if (log_count == 0 || polls == 0) {
    print_usage(argv[0]);
    return 2;
  }

  // Build the watched logs. The vector is reserved up front because
  // CtLogView holds a raw pointer into it.
  std::vector<ct::CtLog> logs;
  logs.reserve(log_count);
  const obs::Stopwatch populate_watch;
  for (std::size_t i = 0; i < log_count; ++i) {
    logs.emplace_back("mon-ct-log-" + std::to_string(i));
    datagen::CtPopulationConfig population;
    population.entries = entries;
    population.seed = seed + i;
    datagen::populate_ct_log(logs.back(), population);
  }
  std::fprintf(stderr, "populated %zu log(s) x %zu entries in %.1f ms\n",
               log_count, entries, populate_watch.elapsed_ms());

  obs::RunContext context;
  ct::MonitorConfig config;
  config.inclusion_samples = samples;
  config.seed = seed;
  ct::Monitor monitor(config, &context.metrics);

  std::shared_ptr<TamperingClient> tamper;
  for (std::size_t i = 0; i < log_count; ++i) {
    auto view = std::make_shared<ct::CtLogView>(logs[i]);
    if (inject_violation && i + 1 == log_count) {
      tamper = std::make_shared<TamperingClient>(std::move(view));
      monitor.watch(tamper);
    } else {
      monitor.watch(std::move(view));
    }
  }

  for (std::size_t round = 0; round < polls; ++round) {
    if (tamper != nullptr && round + 1 == polls) tamper->arm();
    const std::size_t fresh = monitor.poll_once();
    const ct::MonitorStatus status = monitor.status();
    std::fprintf(stderr,
                 "poll %zu/%zu: sth_verified=%llu inclusion_checks=%llu "
                 "new_violations=%zu\n",
                 round + 1, polls,
                 static_cast<unsigned long long>(status.sth_verified),
                 static_cast<unsigned long long>(status.inclusion_checks),
                 fresh);
    if (grow != 0 && round + 1 < polls) {
      for (std::size_t i = 0; i < log_count; ++i) {
        datagen::CtPopulationConfig delta;
        delta.entries = grow;
        delta.seed = seed + i + (round + 1) * 0x9e37;
        datagen::populate_ct_log(logs[i], delta);
      }
    }
  }

  const ct::MonitorStatus status = monitor.status();
  const std::vector<ct::Violation> violations = monitor.violations();

  if (json_output) {
    obs::json::Writer writer;
    writer.begin_object();
    writer.key("schema");
    writer.value_string("certchain.ctmon.status");
    writer.key("version");
    writer.value_uint(1);
    writer.key("polls");
    writer.value_uint(status.polls);
    writer.key("sth_verified");
    writer.value_uint(status.sth_verified);
    writer.key("inclusion_checks");
    writer.value_uint(status.inclusion_checks);
    writer.key("inclusion_failures");
    writer.value_uint(status.inclusion_failures);
    writer.key("violations");
    writer.begin_array();
    for (const ct::Violation& violation : violations) {
      writer.begin_object();
      writer.key("kind");
      writer.value_string(ct::violation_kind_name(violation.kind));
      writer.key("log_id");
      writer.value_string(violation.log_id);
      writer.key("checkpoint_size");
      writer.value_uint(violation.checkpoint_size);
      writer.key("observed_size");
      writer.value_uint(violation.observed_size);
      writer.key("detail");
      writer.value_string(violation.detail);
      writer.end_object();
    }
    writer.end_array();
    writer.key("checkpoints");
    writer.begin_array();
    for (const auto& checkpoint : status.checkpoints) {
      writer.begin_object();
      writer.key("log_id");
      writer.value_string(checkpoint.log_id);
      writer.key("tree_size");
      writer.value_uint(checkpoint.tree_size);
      writer.key("root");
      writer.value_string(checkpoint.root.to_hex());
      writer.end_object();
    }
    writer.end_array();
    writer.end_object();
    std::printf("%s\n", std::move(writer).str().c_str());
  } else {
    std::printf(
        "ctmon: polls=%llu sth_verified=%llu inclusion_checks=%llu "
        "inclusion_failures=%llu violations=%zu\n",
        static_cast<unsigned long long>(status.polls),
        static_cast<unsigned long long>(status.sth_verified),
        static_cast<unsigned long long>(status.inclusion_checks),
        static_cast<unsigned long long>(status.inclusion_failures),
        violations.size());
    for (const ct::Violation& violation : violations) {
      std::printf("violation: %s log=%s checkpoint=%zu observed=%zu %s\n",
                  ct::violation_kind_name(violation.kind),
                  violation.log_id.c_str(), violation.checkpoint_size,
                  violation.observed_size, violation.detail.c_str());
    }
  }
  return violations.empty() ? 0 : 1;
}
