// certchain-fleet: the continuous revisit driver (DESIGN.md §17).
//
//   certchain-fleet [options]
//
// Builds the calibrated study scenario, drifts its revisit population across
// N epochs (issuer-mix shift toward Let's Encrypt, re-keys, hierarchy
// upgrades, endpoint churn — datagen::EpochDrifter), and re-scans every
// epoch with the rate-limited ScanFleet under a seeded fault plan. Offline
// (the default) it prints the fleet report section — every epoch summary
// plus each consecutive epoch-over-epoch delta — to stdout; the output is
// byte-identical across reruns with the same options.
//
// With --serve-addr the fleet feeds a running certchain-serve instead: each
// completed epoch's Zeek rows and summary travel in one idempotent
// ingest_append (the fleet_epoch rider), and the closing fleet-status /
// epoch-delta queries answer from the server's RCU snapshot — byte-identical
// to the offline render, as the Fleet differential suite proves.
//
// options:
//   --epochs <n>        revisit epochs to run (default 3)
//   --interval-ms <n>   virtual spacing between epochs (default 60000)
//   --rate <t/s>        per-target token refill rate (default 20)
//   --burst <n>         per-target bucket burst (default 2)
//   --workers <n>       concurrent scan workers (default 4)
//   --seed <n>          fleet + drift + fault seed (default 20241101)
//   --connections <n>   scenario size knob (default 4000, as certchain-serve
//                       --demo; scales the drifting population)
//   --fault-rate <r>    uniform fault-plan rate (default 0.02)
//   --serve-addr <ip:port>  feed epochs to a live daemon and query it back
//
// Exit codes: 0 success, 1 runtime/server failure, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/epoch_delta.hpp"
#include "datagen/epoch_drift.hpp"
#include "datagen/scenario.hpp"
#include "fleet/fleet.hpp"
#include "netsim/faults.hpp"
#include "obs/metrics.hpp"
#include "svc/client.hpp"

namespace {

void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--epochs <n>] [--interval-ms <n>] [--rate <t/s>]\n"
               "       [--burst <n>] [--workers <n>] [--seed <n>]\n"
               "       [--connections <n>] [--fault-rate <r>]\n"
               "       [--serve-addr <ip:port>]\n",
               argv0);
}

bool parse_u64(const char* value, unsigned long long& out) {
  char* end = nullptr;
  out = std::strtoull(value, &end, 10);
  return end != nullptr && *end == '\0' && *value != '\0';
}

bool parse_double(const char* value, double& out) {
  char* end = nullptr;
  out = std::strtod(value, &end);
  return end != nullptr && *end == '\0' && *value != '\0';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace certchain;

  std::size_t epochs = 3;
  fleet::FleetConfig config;
  double fault_rate = 0.02;
  std::uint64_t connections = 4000;
  std::string serve_host;
  unsigned long serve_port = 0;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    if (arg + 1 >= argc) {
      print_usage(argv[0]);
      return 2;
    }
    const char* value = argv[++arg];
    unsigned long long number = 0;
    if (flag == "--epochs" && parse_u64(value, number)) {
      epochs = static_cast<std::size_t>(number);
    } else if (flag == "--interval-ms" && parse_u64(value, number)) {
      config.interval_ms = static_cast<std::uint32_t>(number);
    } else if (flag == "--rate" && parse_double(value, config.rate.tokens_per_second)) {
    } else if (flag == "--burst" && parse_double(value, config.rate.burst)) {
    } else if (flag == "--workers" && parse_u64(value, number)) {
      config.workers = static_cast<std::size_t>(number);
    } else if (flag == "--seed" && parse_u64(value, number)) {
      config.seed = number;
    } else if (flag == "--connections" && parse_u64(value, number)) {
      connections = number;
    } else if (flag == "--fault-rate" && parse_double(value, fault_rate)) {
    } else if (flag == "--serve-addr") {
      const std::string addr = value;
      const std::size_t colon = addr.rfind(':');
      if (colon == std::string::npos ||
          !parse_u64(addr.c_str() + colon + 1, number) || number == 0 ||
          number > 65535) {
        print_usage(argv[0]);
        return 2;
      }
      serve_host = addr.substr(0, colon);
      serve_port = static_cast<unsigned long>(number);
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }
  if (epochs == 0) {
    print_usage(argv[0]);
    return 2;
  }

  // The same demo-scale scenario certchain-serve --demo loads, so a fleet
  // pointed at a --demo daemon extends exactly the corpus it already serves.
  datagen::ScenarioConfig scenario_config;
  scenario_config.seed = 20200901;
  scenario_config.chain_scale = 1.0 / static_cast<double>(connections);
  scenario_config.total_connections = connections;
  scenario_config.client_count = 300;
  scenario_config.include_length_outliers = false;
  auto scenario = datagen::build_study_scenario(scenario_config);

  datagen::EpochDriftConfig drift;
  drift.seed = config.seed;
  const datagen::EpochDrifter drifter(*scenario, drift, epochs);
  std::fprintf(stderr, "population: %zu endpoints, %zu epochs\n",
               drifter.epoch(0).size(), drifter.epoch_count());

  netsim::FaultPlan plan(config.seed ^ 0xF1EE7,
                         netsim::FaultRates::uniform(fault_rate));

  svc::Client client;
  if (!serve_host.empty()) {
    std::string error;
    client.set_timeout_ms(10000);
    svc::RetryOptions retry;
    retry.max_attempts = 4;
    client.set_retry(retry);
    if (!client.connect(serve_host, static_cast<std::uint16_t>(serve_port),
                        &error)) {
      std::fprintf(stderr, "certchain-fleet: %s\n", error.c_str());
      return 1;
    }
  }

  obs::MetricsRegistry metrics;
  fleet::ScanFleet fleet(config, scenario->world.stores(), &metrics);
  for (std::size_t epoch = 0; epoch < drifter.epoch_count(); ++epoch) {
    const fleet::EpochOutcome outcome =
        fleet.run_epoch(drifter.epoch(epoch), plan);
    std::fprintf(stderr,
                 "epoch %zu: %zu reachable / %zu targets, %llu rate-limited "
                 "(%llu virtual ms), %zu ssl rows, %zu x509 rows\n",
                 epoch, outcome.summary.reachable,
                 outcome.summary.health.scanned,
                 static_cast<unsigned long long>(outcome.rate_limited),
                 static_cast<unsigned long long>(outcome.rate_wait_ms),
                 outcome.ssl_rows.size(), outcome.x509_rows.size());

    if (serve_host.empty()) continue;
    // One idempotent request carries the rows and the summary: a retry (or
    // a post-recovery re-feed) folds the batch exactly once and re-records
    // the epoch idempotently by index.
    obs::json::Writer summary_json;
    core::write_epoch_summary_json(summary_json, outcome.summary);
    const std::string key = "fleet-epoch-" + std::to_string(epoch) + "-" +
                            std::to_string(config.seed);
    const auto response = client.ingest_append_epoch(
        outcome.ssl_rows, outcome.x509_rows, key, std::move(summary_json).str());
    if (!response.has_value() || response->frame.type == svc::MessageType::kError) {
      std::fprintf(stderr, "certchain-fleet: epoch %zu append failed: %s\n",
                   epoch,
                   response.has_value() ? response->error_message.c_str()
                                        : "transport failure");
      return 1;
    }
  }

  if (serve_host.empty()) {
    // Offline: the fleet section (summaries + consecutive deltas) is the
    // deliverable; byte-identical across reruns with the same options.
    std::fputs(core::render_fleet_section(fleet.summaries()).c_str(), stdout);
    std::fputs(fleet.ledger().to_string().c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  // Served mode: ask the daemon back for what it just absorbed. The render
  // comes out of the server's RCU snapshot, not local state.
  const auto status = client.fleet_status();
  if (!status.has_value() || status->frame.type == svc::MessageType::kError) {
    std::fprintf(stderr, "certchain-fleet: fleet_status failed\n");
    return 1;
  }
  if (const auto* text = status->payload.find("text")) {
    std::fputs(text->string.c_str(), stdout);
  }
  return 0;
}
