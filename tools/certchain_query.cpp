// certchain-query: one-shot client for a running certchain-serve daemon.
//
//   certchain-query --port <n> [--host <ip>] [--timeout <ms>]
//                   [--retries <n>] [--idempotency-key <key>] <command> [args]
//
// --timeout bounds every socket operation; --retries arms bounded
// exponential backoff (OVERLOADED always retried; transport failures only
// for idempotent requests). --idempotency-key makes `ingest` safe to retry:
// the server folds the batch exactly once no matter how many times the
// request arrives (DESIGN.md §13.4).
//
// commands:
//   ping
//   classify <issuer-dn>           §3.2.1 issuer classification
//   categorize <pem-file|->        categorize a delivered chain (PEM bundle)
//   report [section]               totals|categories|interception|hybrid|
//                                  non_public|ct|graphs|full (default full)
//   ingest <ssl.log> <x509.log>    append log rows to the live corpus
//   metrics                        the server's certchain.obs.metrics JSON
//   ct-sth                         current signed tree heads of every CT log
//   ct-prove <fingerprint> [log-id] inclusion proof (NOT_FOUND if unlogged)
//   ct-status                      CT monitor counters and checkpoints
//   fleet-status                   completed revisit epochs (§17)
//   epoch-delta [epoch]            delta ending at <epoch> (default latest;
//                                  NOT_FOUND for unknown indices)
//   shutdown                       ask the daemon to drain and exit
//
// Prints the response payload (JSON; for `report` the rendered text) to
// stdout. Exit codes: 0 success, 1 typed server error, 2 usage, 3 transport
// failure.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "svc/client.hpp"

namespace {

void print_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port <n> [--host <ip>] [--timeout <ms>]\n"
               "       [--retries <n>] [--idempotency-key <key>] <command> "
               "[args]\n"
               "commands: ping | classify <dn> | categorize <pem-file|-> |\n"
               "          report [section] | ingest <ssl.log> <x509.log> |\n"
               "          metrics | ct-sth | ct-prove <fingerprint> [log-id] |\n"
               "          ct-status | fleet-status | epoch-delta [epoch] |\n"
               "          shutdown\n",
               argv0);
}

bool slurp(const std::string& path, std::string& out) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    out = buffer.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Splits a Zeek log text into its body rows ('#' headers dropped).
std::vector<std::string> body_rows(const std::string& text) {
  std::vector<std::string> rows;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin && text[begin] != '#') {
      rows.emplace_back(text.substr(begin, end - begin));
    }
    begin = end + 1;
  }
  return rows;
}

int render_response(const std::optional<certchain::svc::Response>& response,
                    bool report_text) {
  using certchain::svc::MessageType;
  if (!response.has_value()) {
    std::fprintf(stderr, "certchain-query: connection failed mid-request\n");
    return 3;
  }
  if (response->frame.type == MessageType::kError) {
    std::fprintf(stderr, "certchain-query: server error %s: %s\n",
                 certchain::svc::error_code_name(response->error).data(),
                 response->error_message.c_str());
    return 1;
  }
  if (report_text) {
    if (const auto* text = response->payload.find("text")) {
      std::fputs(text->string.c_str(), stdout);
      return 0;
    }
  }
  std::fputs(response->frame.payload.c_str(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace certchain;

  std::string host = "127.0.0.1";
  std::string idempotency_key;
  unsigned long port = 0;
  unsigned long timeout_ms = 0;
  unsigned long retries = 0;
  int arg = 1;
  for (; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    if (flag == "--port" || flag == "--host" || flag == "--timeout" ||
        flag == "--retries" || flag == "--idempotency-key") {
      if (arg + 1 >= argc) {
        print_usage(argv[0]);
        return 2;
      }
      const char* value = argv[++arg];
      if (flag == "--host") {
        host = value;
        continue;
      }
      if (flag == "--idempotency-key") {
        idempotency_key = value;
        continue;
      }
      char* end = nullptr;
      const unsigned long number = std::strtoul(value, &end, 10);
      if (end == nullptr || *end != '\0') {
        print_usage(argv[0]);
        return 2;
      }
      if (flag == "--port") {
        port = number;
        if (port == 0 || port > 65535) {
          print_usage(argv[0]);
          return 2;
        }
      } else if (flag == "--timeout") {
        timeout_ms = number;
      } else {
        retries = number;
      }
    } else {
      break;
    }
  }
  if (port == 0 || arg >= argc) {
    print_usage(argv[0]);
    return 2;
  }
  const std::string_view command = argv[arg];
  const int extra = argc - arg - 1;

  svc::Client client;
  client.set_timeout_ms(static_cast<std::uint32_t>(timeout_ms));
  if (retries > 0) {
    svc::RetryOptions retry;
    retry.max_attempts = static_cast<std::size_t>(retries) + 1;
    client.set_retry(retry);
  }
  std::string error;
  if (!client.connect(host, static_cast<std::uint16_t>(port), &error)) {
    std::fprintf(stderr, "certchain-query: %s\n", error.c_str());
    return 3;
  }

  if (command == "ping" && extra == 0) {
    return render_response(client.ping(), false);
  }
  if (command == "classify" && extra == 1) {
    return render_response(client.classify_issuer(argv[arg + 1]), false);
  }
  if (command == "categorize" && extra == 1) {
    std::string pem;
    if (!slurp(argv[arg + 1], pem)) {
      std::fprintf(stderr, "certchain-query: cannot read %s\n", argv[arg + 1]);
      return 2;
    }
    return render_response(client.categorize_chain_pem(pem), false);
  }
  if (command == "report" && extra <= 1) {
    const std::string section = extra == 1 ? argv[arg + 1] : "full";
    return render_response(client.report_section(section), true);
  }
  if (command == "ingest" && extra == 2) {
    std::string ssl_text;
    std::string x509_text;
    if (!slurp(argv[arg + 1], ssl_text) || !slurp(argv[arg + 2], x509_text)) {
      std::fprintf(stderr, "certchain-query: cannot read input logs\n");
      return 2;
    }
    return render_response(
        client.ingest_append(body_rows(ssl_text), body_rows(x509_text),
                             idempotency_key),
        false);
  }
  if (command == "metrics" && extra == 0) {
    return render_response(client.metrics(), false);
  }
  if (command == "ct-sth" && extra == 0) {
    return render_response(client.ct_sth(), false);
  }
  if (command == "ct-prove" && (extra == 1 || extra == 2)) {
    const std::string log_id = extra == 2 ? argv[arg + 2] : "";
    return render_response(client.ct_prove_inclusion(argv[arg + 1], log_id),
                           false);
  }
  if (command == "ct-status" && extra == 0) {
    return render_response(client.ct_monitor_status(), false);
  }
  if (command == "fleet-status" && extra == 0) {
    return render_response(client.fleet_status(), false);
  }
  if (command == "epoch-delta" && extra <= 1) {
    std::optional<std::size_t> epoch;
    if (extra == 1) {
      char* end = nullptr;
      const unsigned long number = std::strtoul(argv[arg + 1], &end, 10);
      if (end == nullptr || *end != '\0' || *argv[arg + 1] == '\0') {
        print_usage(argv[0]);
        return 2;
      }
      epoch = static_cast<std::size_t>(number);
    }
    return render_response(client.epoch_delta(epoch), false);
  }
  if (command == "shutdown" && extra == 0) {
    return render_response(client.shutdown(), false);
  }
  print_usage(argv[0]);
  return 2;
}
