// certchain-serve: the query-serving daemon over a live study corpus
// (DESIGN.md §12).
//
//   certchain-serve [options] <ssl.log> <x509.log>
//   certchain-serve --demo [options]
//
// Loads the corpus once, keeps the analyzed state warm as an immutable RCU
// snapshot (CorpusIndex fold, trust classification, interception verdicts,
// the full StudyReport — republished atomically on every append, DESIGN.md
// §15), then answers certchain.svc.wire queries on a loopback TCP socket:
// classify_issuer, categorize_chain, report_section, ingest_append, metrics,
// ping, shutdown. Reads take no lock — every query answers from one
// generation's snapshot — and all sockets are owned by a single epoll/poll
// event loop, so thousands of connections cost no extra threads. Query
// results are byte-identical to a batch certchain-analyze run over the same
// records — the server folds and analyzes through the very same pipeline
// code.
//
// With --wal the daemon is crash-recoverable: every ingest_append commits to
// a write-ahead log before folding, --snapshot-every bounds replay cost via
// compaction snapshots, and a restart restores snapshot + WAL tail to a
// corpus whose reports are byte-identical to a never-crashed run
// (DESIGN.md §13). --request-deadline-ms / --idle-timeout-ms bound every way
// a slow or stalled peer can pin a server thread.
//
// On success prints exactly one line to stdout:
//
//   listening on 127.0.0.1:<port>
//
// (--port 0, the default, binds an ephemeral port; --port-file additionally
// writes the bare port number to a file so scripts can pick it up). The
// daemon then serves until SIGTERM/SIGINT or a kShutdown request arrives,
// drains gracefully — in-flight requests finish, new ones get a typed
// SHUTTING_DOWN error — and exits 0.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "datagen/scenario.hpp"
#include "netsim/pki_world.hpp"
#include "obs/run_context.hpp"
#include "obs/stopwatch.hpp"
#include "svc/server.hpp"
#include "zeek/log_io.hpp"

namespace {

// Written by the signal handler, read by the watcher thread (self-pipe: the
// only async-signal-safe way to hand the event to ordinary thread code).
int g_signal_pipe_write = -1;

void handle_stop_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe_write, &byte, 1);
}

void print_usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] <ssl.log> <x509.log>\n"
      "       %s --demo [options]\n"
      "options:\n"
      "  --port <n>            listen port (default 0 = kernel-assigned)\n"
      "  --port-file <path>    write the bound port number to <path>\n"
      "  --threads <n>         request workers (0 = all hardware threads)\n"
      "  --queue <n>           admission queue capacity (default 64)\n"
      "  --max-connections <n> concurrent connection cap (default 64)\n"
      "  --wal <path>          write-ahead-log every ingest_append; on start,\n"
      "                        recover snapshot + WAL back into the corpus\n"
      "  --snapshot-every <n>  compact the WAL into a snapshot every n appends\n"
      "                        (0 = never; requires --wal)\n"
      "  --applied-ledger-max <n>  remember at most n idempotency keys,\n"
      "                        oldest evicted first (default 65536; 0 = all)\n"
      "  --request-deadline-ms <n>  per-request deadline: stalled frames,\n"
      "                        queued requests and response writes all time\n"
      "                        out with DEADLINE_EXCEEDED (0 = none)\n"
      "  --idle-timeout-ms <n> close idle connections after n ms (0 = never)\n"
      "  --ct-monitor          arm the continuous CT monitor over the served\n"
      "                        logs; ct_monitor_status reports its counters\n"
      "  --ct-poll-ms <n>      monitor poll interval (default 1000; needs\n"
      "                        --ct-monitor)\n"
      "  --demo                serve a synthesized demo corpus\n"
      "  --demo-connections <n> demo corpus size (default 4000)\n",
      argv0, argv0);
}

bool slurp(const char* path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace certchain;

  svc::ServerOptions server_options;
  svc::DurabilityOptions durability;
  std::string port_file;
  std::size_t demo_connections = 4000;
  bool demo = false;
  bool ct_monitor = false;
  std::uint32_t ct_poll_ms = 1000;
  int arg = 1;
  for (; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    if (flag == "--demo") {
      demo = true;
    } else if (flag == "--ct-monitor") {
      ct_monitor = true;
    } else if (flag == "--port" || flag == "--port-file" ||
               flag == "--threads" || flag == "--queue" ||
               flag == "--max-connections" || flag == "--demo-connections" ||
               flag == "--wal" || flag == "--snapshot-every" ||
               flag == "--applied-ledger-max" ||
               flag == "--request-deadline-ms" || flag == "--idle-timeout-ms" ||
               flag == "--ct-poll-ms") {
      if (arg + 1 >= argc) {
        print_usage(argv[0]);
        return 2;
      }
      const char* value = argv[++arg];
      if (flag == "--port-file") {
        port_file = value;
        continue;
      }
      if (flag == "--wal") {
        durability.wal_path = value;
        continue;
      }
      char* end = nullptr;
      const unsigned long number = std::strtoul(value, &end, 10);
      if (end == nullptr || *end != '\0') {
        print_usage(argv[0]);
        return 2;
      }
      if (flag == "--port") {
        server_options.port = static_cast<std::uint16_t>(number);
      } else if (flag == "--threads") {
        server_options.workers = static_cast<std::size_t>(number);
      } else if (flag == "--queue") {
        server_options.queue_capacity = static_cast<std::size_t>(number);
      } else if (flag == "--max-connections") {
        server_options.max_connections = static_cast<std::size_t>(number);
      } else if (flag == "--snapshot-every") {
        durability.snapshot_every = static_cast<std::size_t>(number);
      } else if (flag == "--applied-ledger-max") {
        durability.applied_ledger_max = static_cast<std::size_t>(number);
      } else if (flag == "--request-deadline-ms") {
        server_options.request_deadline_ms = static_cast<std::uint32_t>(number);
      } else if (flag == "--idle-timeout-ms") {
        server_options.idle_timeout_ms = static_cast<std::uint32_t>(number);
      } else if (flag == "--ct-poll-ms") {
        ct_poll_ms = static_cast<std::uint32_t>(number);
      } else {
        demo_connections = static_cast<std::size_t>(number);
      }
    } else {
      break;
    }
  }
  if (durability.wal_path.empty() && durability.snapshot_every != 0) {
    std::fprintf(stderr, "certchain-serve: --snapshot-every requires --wal\n");
    return 2;
  }
  if ((demo && argc - arg != 0) || (!demo && argc - arg != 2)) {
    print_usage(argv[0]);
    return 2;
  }

  // Load the corpus records.
  std::vector<zeek::SslLogRecord> ssl_records;
  std::vector<zeek::X509LogRecord> x509_records;
  if (demo) {
    obs::RunContext scratch;
    datagen::ScenarioConfig config;
    config.seed = 20200901;
    config.chain_scale = 1.0 / static_cast<double>(demo_connections);
    config.total_connections = demo_connections;
    config.client_count = 300;
    config.include_length_outliers = false;
    const auto scenario = datagen::build_study_scenario(config, &scratch);
    netsim::GeneratedLogs logs = scenario->generate_logs(&scratch);
    ssl_records = std::move(logs.ssl);
    x509_records = std::move(logs.x509);
  } else {
    std::string ssl_text;
    std::string x509_text;
    if (!slurp(argv[arg], ssl_text) || !slurp(argv[arg + 1], x509_text)) {
      std::fprintf(stderr, "certchain-serve: cannot read input logs\n");
      return 1;
    }
    zeek::ParseDiagnostics ssl_diag;
    zeek::ParseDiagnostics x509_diag;
    ssl_records = zeek::parse_ssl_log(ssl_text, &ssl_diag);
    x509_records = zeek::parse_x509_log(x509_text, &x509_diag);
    std::fprintf(stderr, "loaded %zu SSL rows (%zu skipped), %zu X509 rows (%zu skipped)\n",
                 ssl_records.size(), ssl_diag.skipped_lines,
                 x509_records.size(), x509_diag.skipped_lines);
  }

  // The classification universe; same construction as certchain-analyze so
  // the two front-ends answer identically for the same records.
  netsim::PkiWorld world;
  core::VendorDirectory vendors;
  for (auto& deployment : world.interception()) {
    const core::VendorInfo info{
        deployment.vendor.name,
        std::string(interception_category_name(deployment.vendor.category))};
    vendors[deployment.intermediate_ca.name().canonical()] = info;
    vendors[deployment.root_ca.name().canonical()] = info;
  }

  svc::ServiceState state(world.stores(), world.ct_logs(), vendors,
                          &world.cross_signs());
  state.load(ssl_records, x509_records);

  svc::SyncTelemetry telemetry;
  telemetry.set_config("tool", "certchain-serve");

  // Crash recovery: restore snapshot + WAL tail before taking traffic, so
  // the first answer already reflects every acknowledged pre-crash append.
  // A failed recovery refuses to serve — silently dropping acknowledged
  // appends would be worse than not starting.
  if (!durability.wal_path.empty()) {
    const obs::Stopwatch recovery_watch;
    svc::RecoveryStats recovery;
    std::string recovery_error;
    if (!state.recover_and_arm(durability, &recovery, &recovery_error)) {
      std::fprintf(stderr, "certchain-serve: recovery failed: %s\n",
                   recovery_error.c_str());
      return 1;
    }
    telemetry.observe_timing("svc.recovery.ms", recovery_watch.elapsed_ms());
    telemetry.set_config("svc.wal", durability.wal_path);
    telemetry.set_config("svc.snapshot_every",
                         std::to_string(durability.snapshot_every));
    // The replay triple reconciles like every other stage: every intact WAL
    // record either folded or was already absorbed (snapshot / duplicate).
    telemetry.count("stage.svc.wal.replay.in", recovery.wal_records_seen);
    telemetry.count("stage.svc.wal.replay.admitted",
                    recovery.wal_records_applied);
    telemetry.count("stage.svc.wal.replay.dropped",
                    recovery.wal_records_skipped);
    if (recovery.torn_bytes > 0) {
      telemetry.count("svc.wal.torn_bytes", recovery.torn_bytes);
    }
    std::fprintf(stderr,
                 "recovery: snapshot=%s wal_records=%llu applied=%llu "
                 "skipped=%llu torn_bytes=%llu generation=%llu\n",
                 recovery.snapshot_loaded ? "yes" : "no",
                 static_cast<unsigned long long>(recovery.wal_records_seen),
                 static_cast<unsigned long long>(recovery.wal_records_applied),
                 static_cast<unsigned long long>(recovery.wal_records_skipped),
                 static_cast<unsigned long long>(recovery.torn_bytes),
                 static_cast<unsigned long long>(recovery.generation));
  }

  std::fprintf(stderr, "corpus ready: %zu unique chains, generation %llu\n",
               state.unique_chains(),
               static_cast<unsigned long long>(state.generation()));

  // Continuous CT auditing (DESIGN.md §14.3): the monitor polls the served
  // logs on its own thread while requests flow. Arm before the server takes
  // traffic so ct_monitor_status never races the unique_ptr install; the
  // Monitor itself is internally locked, and the poll thread folds its
  // per-poll deltas through the thread-safe telemetry facade so the metrics
  // endpoint sees ct.monitor.* move.
  std::atomic<bool> monitor_stop{false};
  std::thread monitor_thread;
  if (ct_monitor) {
    ct::Monitor& monitor = state.arm_ct_monitor();
    telemetry.set_config("svc.ct_monitor", "on");
    telemetry.set_config("svc.ct_poll_ms", std::to_string(ct_poll_ms));
    monitor_thread = std::thread([&monitor, &telemetry, &monitor_stop,
                                  poll_ms = ct_poll_ms] {
      while (!monitor_stop.load(std::memory_order_relaxed)) {
        const std::size_t fresh = monitor.poll_once();
        telemetry.count("ct.monitor.polls");
        if (fresh > 0) telemetry.count("ct.monitor.violations", fresh);
        for (std::uint32_t waited = 0;
             waited < poll_ms && !monitor_stop.load(std::memory_order_relaxed);
             waited += 50) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min<std::uint32_t>(50, poll_ms - waited)));
        }
      }
    });
    std::fprintf(stderr, "ct monitor armed: polling every %u ms\n", ct_poll_ms);
  }

  const auto stop_monitor = [&monitor_stop, &monitor_thread] {
    monitor_stop.store(true, std::memory_order_relaxed);
    if (monitor_thread.joinable()) monitor_thread.join();
  };

  svc::Server server(state, telemetry, server_options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "certchain-serve: %s\n", error.c_str());
    stop_monitor();
    return 1;
  }

  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "certchain-serve: cannot write %s\n",
                   port_file.c_str());
      stop_monitor();
      return 1;
    }
  }
  std::printf("listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "event loop: %s backend, %zu request workers, "
               "%zu-connection cap\n",
               svc::Poller::backend(),
               par::resolve_threads(server_options.workers),
               server_options.max_connections);

  // SIGTERM/SIGINT start the same graceful drain a kShutdown request does.
  int signal_pipe[2];
  if (::pipe(signal_pipe) != 0) {
    std::fprintf(stderr, "certchain-serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  g_signal_pipe_write = signal_pipe[1];
  struct sigaction action{};
  action.sa_handler = handle_stop_signal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::thread signal_watcher([&server, read_fd = signal_pipe[0]] {
    char byte;
    if (::read(read_fd, &byte, 1) > 0) server.request_stop();
  });

  server.wait();  // returns once the drain (signal- or wire-initiated) is done
  stop_monitor();
  ::close(signal_pipe[1]);  // wakes the watcher if no signal ever arrived
  signal_watcher.join();
  ::close(signal_pipe[0]);
  std::fprintf(stderr, "certchain-serve: drained, exiting\n");
  return 0;
}
