#include <cstdio>
#include <map>
#include <set>
#include <string>
#include "datagen/scenario.hpp"
#include "zeek/joiner.hpp"
using namespace certchain;
int main() {
  auto scenario = datagen::build_study_scenario({});
  std::map<std::string, std::set<std::string>> orig, recon;
  for (auto& e : scenario->endpoints) {
    orig[e.label].insert(e.chain.id());
    chain::CertificateChain r;
    for (auto& c : e.chain.certs())
      r.push_back(zeek::certificate_from_record(zeek::record_from_certificate(c, 0, "F")));
    recon[e.label].insert(r.id());
  }
  for (auto& [label, ids] : orig)
    std::printf("%-40s orig=%zu recon=%zu\n", label.c_str(), ids.size(),
                recon[label].size());
  return 0;
}
