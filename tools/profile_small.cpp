#include <chrono>
#include <cstdio>
#include "datagen/scenario.hpp"
#include "core/pipeline.hpp"
using namespace certchain;
using Clock = std::chrono::steady_clock;
static double ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}
int main() {
  datagen::ScenarioConfig config;
  config.seed = 77;
  config.chain_scale = 1.0 / 2000.0;
  config.total_connections = 25000;
  config.client_count = 800;
  auto t0 = Clock::now();
  auto scenario = datagen::build_study_scenario(config);
  auto t1 = Clock::now();
  std::printf("scenario: %.0f ms (%zu endpoints)\n", ms(t0, t1), scenario->endpoints.size());
  auto logs = scenario->generate_logs();
  auto t2 = Clock::now();
  std::printf("simulate: %.0f ms (%zu ssl rows)\n", ms(t1, t2), logs.ssl.size());
  core::StudyPipeline pipeline(scenario->world.stores(), scenario->world.ct_logs(),
                               scenario->vendors, &scenario->world.cross_signs());
  auto report = pipeline.run(logs);
  auto t3 = Clock::now();
  std::printf("pipeline: %.0f ms (unique %zu)\n", ms(t2, t3), report.unique_chains);
  return 0;
}
