// Quick profiling harness: generates a small corpus, runs the pipeline, and
// prints the telemetry section (per-stage wall times, trace tree, counters).
// Stage timing comes from the obs:: spans the library itself records — this
// binary adds no clocks of its own.
#include <cstdio>

#include "core/pipeline.hpp"
#include "datagen/scenario.hpp"
#include "obs/export.hpp"
#include "obs/run_context.hpp"

using namespace certchain;

int main() {
  datagen::ScenarioConfig config;
  config.seed = 77;
  config.chain_scale = 1.0 / 2000.0;
  config.total_connections = 25000;
  config.client_count = 800;

  obs::RunContext telemetry;
  telemetry.set_config("tool", "profile-small");

  auto scenario = datagen::build_study_scenario(config, &telemetry);
  auto logs = scenario->generate_logs(&telemetry);
  core::StudyPipeline pipeline(scenario->world.stores(), scenario->world.ct_logs(),
                               scenario->vendors, &scenario->world.cross_signs());
  auto report = pipeline.run(core::StudyInput::records(logs.ssl, logs.x509), {},
                             &telemetry);

  std::printf("endpoints=%zu ssl_rows=%zu unique_chains=%zu\n\n",
              scenario->endpoints.size(), logs.ssl.size(), report.unique_chains);
  obs::TextExportOptions options;
  options.trace = true;
  std::fputs(obs::render_metrics_text(telemetry, options).c_str(), stdout);
  return 0;
}
