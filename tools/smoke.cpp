#include <cstdio>
#include "datagen/scenario.hpp"
#include "core/pipeline.hpp"
using namespace certchain;
int main() {
  datagen::ScenarioConfig config;
  auto scenario = datagen::build_study_scenario(config);
  std::printf("endpoints: %zu\n", scenario->endpoints.size());
  auto logs = scenario->generate_logs();
  std::printf("ssl rows: %zu x509 rows: %zu\n", logs.ssl.size(), logs.x509.size());
  core::StudyPipeline pipeline(scenario->world.stores(), scenario->world.ct_logs(),
                               scenario->vendors, &scenario->world.cross_signs());
  auto report = pipeline.run(core::StudyInput::records(logs.ssl, logs.x509));
  std::printf("unique chains: %zu distinct certs: %zu\n", report.unique_chains,
              report.totals.distinct_certificates);
  for (auto& [cat, usage] : report.categories) {
    std::printf("%-20s chains=%zu conns=%llu clients=%zu\n",
                std::string(chain::chain_category_name(cat)).c_str(), usage.chains,
                (unsigned long long)usage.connections, usage.client_ips);
  }
  std::printf("interception issuers: %zu (unconfirmed %zu)\n",
              report.interception.findings.size(),
              report.interception.unconfirmed_candidates.size());
  for (auto& row : report.interception.category_rows())
    std::printf("  %-28s issuers=%zu conns=%llu clients=%zu\n", row.category.c_str(),
                row.issuers, (unsigned long long)row.connections, row.client_ips);
  auto& h = report.hybrid;
  std::printf("hybrid: total=%zu nonpub->pub=%zu pub->prv=%zu contains=%zu nopath=%zu\n",
              h.total(), h.complete_nonpub_to_pub, h.complete_pub_to_private,
              h.contains_complete_path, h.no_complete_path);
  std::printf("  ct_logged=%zu expired=%zu fakele=%zu athenz=%zu leading=%zu publeaf56=%zu\n",
              h.anchored_ct_logged, h.anchored_expired_leaf, h.fake_le_chains,
              h.athenz_chains, h.leaf_before_path, h.public_leaf_without_issuer);
  std::printf("  est complete=%.4f contains=%.4f nopath=%.4f\n",
              h.usage_complete.establish_rate(), h.usage_contains.establish_rate(),
              h.usage_no_path.establish_rate());
  for (auto& [cat, n] : h.no_path_categories)
    std::printf("  nopath cat %d = %zu\n", (int)cat, n);
  auto& np = report.non_public;
  std::printf("nonpub: chains=%zu single=%zu self=%zu dga=%zu multi=%zu matched=%zu cont=%zu none=%zu\n",
              np.chains, np.single_chains, np.single_self_signed, np.dga_chains,
              np.multi_chains, np.is_matched_path, np.contains_matched_path,
              np.no_matched_path);
  std::printf("  bc omitted first=%.4f later=%.4f\n", np.bc_omitted_first_fraction(),
              np.bc_omitted_later_fraction());
  auto& ic = report.interception_chains;
  std::printf("int chains: chains=%zu single=%zu self=%zu multi=%zu matched=%zu cont=%zu none=%zu\n",
              ic.chains, ic.single_chains, ic.single_self_signed, ic.multi_chains,
              ic.is_matched_path, ic.contains_matched_path, ic.no_matched_path);
  std::printf("outliers excluded: %zu\n", report.excluded_outliers.size());
  std::printf("graphs: hybrid nodes=%zu nonpub nodes=%zu (complex=%zu) int nodes=%zu (complex=%zu)\n",
              report.hybrid_graph.node_count(), report.non_public_graph.node_count(),
              report.non_public_graph.complex_intermediates().size(),
              report.interception_graph.node_count(),
              report.interception_graph.complex_intermediates().size());
  return 0;
}
